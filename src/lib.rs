//! # kncube — hot-spot traffic in deterministically-routed k-ary n-cubes
//!
//! A from-scratch reproduction of *Loucif, Ould-Khaoua & Min, "Analytical
//! Modelling of Hot-Spot Traffic in Deterministically-Routed K-Ary
//! N-Cubes", IPDPS 2005*: the first analytical model of mean message
//! latency for dimension-order wormhole routing under Pfister–Norton
//! hot-spot traffic, together with the flit-level simulator used to
//! validate it — carried at full generality, with radix `k` *and*
//! dimension count `n` as first-class parameters.  The paper's 2-D
//! unidirectional torus is the `n = 2` specialization (bit-identical, by
//! test), and the binary hypercube of its reference \[12\] is the `k = 2`
//! instance (within `1e-9`, by test — see `tests/cross_validation.rs`).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`topology`] — k-ary n-cube geometry, dimension-order routing,
//!   Dally–Seitz virtual-channel classes, hot-spot geometry (Eqs. 4–5 and
//!   their product-over-rings generalization);
//! * [`traffic`] — Poisson sources and destination patterns (uniform,
//!   hot-spot, and the classic synthetic suites);
//! * [`queueing`] — M/G/1 waits, the blocking operator, Dally's
//!   virtual-channel multiplexing model, fixed-point machinery
//!   (Eqs. 26–30, 33–35);
//! * [`model`] — the generalized latency model (`NCubeModel`), the
//!   paper's 2-D API (`HotSpotModel`), the hypercube comparison model and
//!   the uniform-traffic baseline;
//! * [`sim`] — the cycle-accurate wormhole simulator (§4's validation
//!   vehicle), dimension-agnostic by construction.
//!
//! ## Reproduce the paper in three lines
//!
//! ```
//! use kncube::model::{HotSpotModel, ModelConfig};
//!
//! // Figure 1, h = 20%: N = 256 torus, V = 2, Lm = 32 flits.
//! let cfg = ModelConfig::paper_validation(16, 2, 32, 3e-4, 0.2);
//! let latency = HotSpotModel::new(cfg).unwrap().solve().unwrap().latency;
//! assert!(latency > 32.0 && latency < 200.0);
//! ```
//!
//! And the matching simulation:
//!
//! ```no_run
//! use kncube::sim::{SimConfig, Simulator};
//!
//! let cfg = SimConfig::paper_validation(16, 2, 32, 3e-4, 0.2, 42);
//! let report = Simulator::new(cfg).unwrap().run();
//! println!("simulated: {report}");
//! ```
//!
//! ## Beyond the paper: any `(k, n)`
//!
//! ```
//! use kncube::model::{NCubeConfig, NCubeModel};
//! use kncube::sim::SimConfig;
//!
//! // An 8-ary 3-cube (512 nodes) under 20% hot-spot traffic…
//! let model = NCubeModel::new(NCubeConfig::new(8, 3, 2, 16, 1e-4, 0.2)).unwrap();
//! assert!(model.solve().unwrap().latency > 16.0);
//! // …and the matching simulator configuration.
//! let sim_cfg = SimConfig::ncube(8, 3, 2, 16, 1e-4, 0.2, 42);
//! assert_eq!(sim_cfg.topology().unwrap().num_nodes(), 512);
//! ```
//!
//! See `DESIGN.md` for the system inventory and the reconstruction notes
//! (the paper's equations are OCR-damaged; every reconstruction decision
//! is documented and justified against the figures), and `EXPERIMENTS.md`
//! for the paper-vs-measured record of every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kncube_core as model;
pub use kncube_queueing as queueing;
pub use kncube_sim as sim;
pub use kncube_topology as topology;
pub use kncube_traffic as traffic;

/// The paper's validation network size (`N = 256` nodes, a 16×16 torus).
pub const PAPER_RADIX: u32 = 16;

/// The paper's virtual-channel count lower bound (`V >= 2`).
pub const PAPER_VIRTUAL_CHANNELS: u32 = 2;

/// The paper's two message lengths, in flits.
pub const PAPER_MESSAGE_LENGTHS: [u32; 2] = [32, 100];

/// The paper's three hot-spot fractions.
pub const PAPER_HOT_FRACTIONS: [f64; 3] = [0.2, 0.4, 0.7];

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compose() {
        // A request flowing through all the crates via the facade.
        let topo = crate::topology::KAryNCube::unidirectional(4, 2).unwrap();
        assert_eq!(topo.num_nodes(), 16);
        let probs = crate::model::RegularRouteProbs::new(4);
        assert!((probs.total() - 1.0).abs() < 1e-12);
        let w = crate::queueing::mg1::waiting_time(0.001, 33.0, 32.0).unwrap();
        assert!(w > 0.0);
    }

    #[test]
    fn facade_generalized_entry_points_compose() {
        // The generalized model and entry families through the facade.
        for (k, n) in [(4u32, 3u32), (8, 3), (4, 4), (16, 2)] {
            let cases = crate::model::entry_cases(k, n);
            let total: f64 = cases.iter().map(|c| c.probability).sum();
            assert!((total - 1.0).abs() < 1e-12, "k={k} n={n}");
            let cfg = crate::model::NCubeConfig::new(k, n, 2, 16, 1e-6, 0.2);
            let out = crate::model::NCubeModel::new(cfg).unwrap().solve().unwrap();
            assert!(out.latency > 16.0);
        }
    }
}
