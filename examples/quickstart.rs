//! Quickstart: evaluate the analytical model and validate one operating
//! point against the flit-level simulator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kncube::model::{HotSpotModel, ModelConfig};
use kncube::sim::{SimConfig, Simulator};

fn main() {
    // The paper's validation network: 16×16 unidirectional torus, V = 2
    // virtual channels, 32-flit messages, 20% of traffic aimed at one
    // hot-spot node, λ = 3·10⁻⁴ messages per node per cycle.
    let (k, v, lm, lambda, h) = (16, 2, 32, 3e-4, 0.2);

    println!("== analytical model (Eqs. 1-37) ==");
    let model = HotSpotModel::new(ModelConfig::paper_validation(k, v, lm, lambda, h))
        .expect("valid configuration");
    let out = model.solve().expect("below saturation");
    println!("mean message latency : {:8.1} cycles", out.latency);
    println!("  regular messages   : {:8.1} cycles", out.regular_latency);
    println!("  hot-spot messages  : {:8.1} cycles", out.hot_latency);
    println!(
        "  source-queue wait  : {:8.2} cycles",
        out.source_wait_regular
    );
    println!(
        "  multiplexing degree: hot ring {:.3}, x channels {:.3}",
        out.vbar_hot_ring, out.vbar_x
    );
    println!("  max utilization    : {:8.3}", out.max_utilization);
    println!("  fixed-point iters  : {:8}", out.iterations);

    println!("\n== flit-level simulation (same operating point) ==");
    let cfg = SimConfig::paper_validation(k, v, lm, lambda, h, 2024)
        .with_limits(1_500_000, 100_000, 30_000);
    let report = Simulator::new(cfg).expect("valid configuration").run();
    println!("mean message latency : {:8.1} cycles", report.mean_latency);
    if let Some(hw) = report.ci_half_width {
        println!("  95% half-width     : {:8.1} cycles", hw);
    }
    println!(
        "  regular messages   : {:8.1} cycles",
        report.mean_latency_regular
    );
    println!(
        "  hot-spot messages  : {:8.1} cycles",
        report.mean_latency_hot
    );
    println!("  messages measured  : {:8}", report.completed);
    println!("  cycles simulated   : {:8}", report.cycles);

    let err = (out.latency - report.mean_latency) / report.mean_latency * 100.0;
    println!("\nmodel vs simulation: {err:+.1}%");
}
