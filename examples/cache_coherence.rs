//! Write-invalidation acknowledgements — the paper's second motivating
//! scenario.
//!
//! "In some cache coherency protocols, to perform write-invalidation, a
//! message is sent to all nodes having a dirty copy of the block.  Those
//! nodes then send an acknowledgement back to the host node … if all nodes
//! have a dirty copy of the block, this results in hot-spot traffic" (§1).
//!
//! This example models the acknowledgement storm: the *sharers* of a
//! widely-shared cache line all send short acks to the *home node*.  We
//! compare the latency that regular traffic suffers as collateral damage —
//! the hot column is a shared resource, so even messages that never target
//! the home node slow down when they must cross its column.
//!
//! ```sh
//! cargo run --release --example cache_coherence
//! ```

use kncube::model::{HotSpotModel, ModelConfig};
use kncube::sim::{SimConfig, Simulator};

fn main() {
    let (k, v) = (16, 2);
    let ack_flits = 8; // invalidation acks are short control messages
    let lambda = 1.2e-3; // aggregate load per node, messages/cycle

    println!(
        "invalidation-ack storms on a {k}x{k} torus: home node absorbs a \
         fraction h of all traffic\n"
    );
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "h", "model regular", "model acks", "sim regular", "sim acks"
    );

    for h in [0.0, 0.1, 0.25, 0.5] {
        let model = HotSpotModel::new(ModelConfig::paper_validation(k, v, ack_flits, lambda, h))
            .unwrap()
            .solve();
        let sim = Simulator::new(
            SimConfig::paper_validation(k, v, ack_flits, lambda, h, 99)
                .with_limits(600_000, 50_000, 25_000),
        )
        .unwrap()
        .run();
        match model {
            Ok(m) => println!(
                "{h:>6.2} {:>14.1} {:>14.1} {:>14.1} {:>14.1}",
                m.regular_latency,
                if h > 0.0 { m.hot_latency } else { f64::NAN },
                sim.mean_latency_regular,
                if h > 0.0 {
                    sim.mean_latency_hot
                } else {
                    f64::NAN
                },
            ),
            Err(e) => println!("{h:>6.2} saturated ({e}); sim says {:.1}", sim.mean_latency),
        }
    }

    println!(
        "\nreading: the ack class pays the hot-column queueing, and the\n\
         regular class degrades with it — the collateral-damage effect the\n\
         paper's introduction warns about."
    );
}
