//! Saturation map: where does the network collapse as a function of the
//! hot-spot fraction and message length?
//!
//! The paper's six validation curves (Figures 1–2) each stop just past
//! the saturation point of their configuration; this example computes the
//! whole map with the analytical model (cheap — milliseconds per point)
//! and prints the flit-bound approximation `1/(h·k(k-1)·(Lm+1))` next to
//! it to show what governs the collapse.
//!
//! ```sh
//! cargo run --release --example saturation_sweep
//! ```

use kncube::model::{find_saturation, ModelConfig};

fn main() {
    let (k, v) = (16u32, 2u32);
    let lengths = [16u32, 32, 64, 100];
    let fractions = [0.05, 0.1, 0.2, 0.4, 0.7, 0.9];

    println!("model saturation rate λ* (messages/node/cycle), {k}x{k} torus, V={v}\n");
    print!("{:>6}", "h\\Lm");
    for lm in lengths {
        print!(" {lm:>11}");
    }
    println!();

    for h in fractions {
        print!("{h:>6.2}");
        for lm in lengths {
            let base = ModelConfig::paper_validation(k, v, lm, 0.0, h);
            let sat = find_saturation(base, 1e-8, 1e-2, 1e-3)
                .expect("swept configurations saturate inside the bracket");
            print!(" {sat:>11.3e}");
        }
        println!();
    }

    println!("\nhot-channel flit bound 1/(h·k(k-1)·(Lm+1)) for comparison:");
    print!("{:>6}", "h\\Lm");
    for lm in lengths {
        print!(" {lm:>11}");
    }
    println!();
    for h in fractions {
        print!("{h:>6.2}");
        for lm in lengths {
            let bound = 1.0 / (h * (k * (k - 1)) as f64 * (lm + 1) as f64);
            print!(" {bound:>11.3e}");
        }
        println!();
    }

    println!(
        "\nreading: λ* tracks the flit bound closely (the gap is the share\n\
         of the hot channel consumed by background regular traffic), and\n\
         scales as 1/h and 1/Lm — the paper's Figures 1-2 axis ranges are\n\
         exactly these numbers for h ∈ {{0.2, 0.4, 0.7}}, Lm ∈ {{32, 100}}."
    );
}
