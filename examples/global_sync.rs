//! Global synchronisation — the paper's first motivating scenario.
//!
//! "Global synchronisation, where each node in the system sends a
//! synchronisation message to a distinguished node, is a typical situation
//! that can produce hot-spots" (§1, after \[23\]).
//!
//! A barrier round is exactly that: every node fires one short message at
//! the coordinator.  This example simulates repeated software barriers on
//! top of background uniform traffic by sweeping the hot fraction `h`
//! (the share of traffic that is barrier-bound) and shows how quickly the
//! coordinator's column melts: the sustainable network load collapses
//! roughly as `1/(h·k(k-1)·Lm)` while the uniform-only network would
//! carry an order of magnitude more.
//!
//! ```sh
//! cargo run --release --example global_sync
//! ```

use kncube::model::{find_saturation, HotSpotModel, ModelConfig, UniformModel};
use kncube::sim::{SimConfig, Simulator};

fn main() {
    let (k, v, lm) = (16, 2, 16); // short 16-flit synchronisation messages

    println!("barrier coordinator on a {k}x{k} torus, {lm}-flit messages\n");
    println!(
        "{:>6} {:>14} {:>16} {:>18}",
        "h", "model λ* (sat)", "latency @ 0.5λ*", "sim latency @ 0.5λ*"
    );

    for h in [0.05, 0.1, 0.2, 0.4, 0.7] {
        let base = ModelConfig::paper_validation(k, v, lm, 0.0, h);
        let sat = find_saturation(base, 1e-7, 1e-2, 1e-3)
            .expect("barrier hot-spot configurations saturate inside the bracket");
        let lambda = 0.5 * sat;
        let model = HotSpotModel::new(ModelConfig { lambda, ..base })
            .unwrap()
            .solve()
            .expect("half of saturation is solvable");
        let sim = Simulator::new(
            SimConfig::paper_validation(k, v, lm, lambda, h, 7)
                .with_limits(800_000, 60_000, 20_000),
        )
        .unwrap()
        .run();
        println!(
            "{h:>6.2} {sat:>14.3e} {:>16.1} {:>15.1}±{:<4.1}",
            model.latency,
            sim.mean_latency,
            sim.ci_half_width.unwrap_or(f64::NAN)
        );
    }

    // The uniform-traffic reference: what the same network carries with no
    // barrier concentration at all.
    let uniform_sat = {
        let mut lo = 1e-5;
        let mut hi = 1e-2;
        while (hi - lo) / hi > 1e-3 {
            let mid = 0.5 * (lo + hi);
            if UniformModel::new(k, v, lm, mid).solve().is_ok() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };
    println!(
        "\nuniform traffic (h = 0) saturates at λ* ≈ {uniform_sat:.3e} — \
         a 5% barrier share already costs most of that headroom."
    );
}
