//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8-style surface), vendored so the workspace builds without
//! registry access.
//!
//! Only the pieces this workspace actually uses are provided:
//!
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::SmallRng`] — the same xoshiro256++ generator the real
//!   `rand 0.8` uses for `SmallRng` on 64-bit targets, seeded through
//!   SplitMix64 exactly like `rand_core`'s `seed_from_u64`,
//! * [`Rng::gen_range`] over integer and float ranges,
//! * [`Rng::gen_bool`].
//!
//! Swapping back to the real crate is a one-line change in the workspace
//! manifest; no call site needs to change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A random number generator core: the single source of entropy every
/// derived method draws from.
pub trait RngCore {
    /// The next 64 uniformly-distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable generator (subset: the `seed_from_u64` constructor).
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] like in the real crate.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// A sample from `T`'s standard distribution (full integer range,
    /// `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

/// Types samplable by [`Rng::gen`] (the real crate's `Standard`
/// distribution, folded into a trait on the sampled type).
pub trait Standard {
    /// Draw one standard-distributed sample.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to draw one uniform sample of `T` from itself.
pub trait SampleRange<T> {
    /// Draw a single uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u128;
                // Widening-multiply rejection-free mapping; the bias is
                // at most 2^-64 per value, far below test resolution.
                self.start + ((rng.next_u64() as u128 * span) >> 64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end - start) as u128 + 1;
                start + ((rng.next_u64() as u128 * span) >> 64) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Floating rounding may land exactly on `end`; fold it back in.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty gen_range");
        start + unit_f64(rng.next_u64()) * (end - start)
    }
}

/// SplitMix64: the stream `rand_core::SeedableRng::seed_from_u64` uses to
/// expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The small-footprint generator: xoshiro256++ (the algorithm behind
    /// `rand 0.8`'s `SmallRng` on 64-bit platforms).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }
}
