//! Offline, API-compatible subset of
//! [`proptest`](https://crates.io/crates/proptest), vendored so the
//! workspace's property tests build and run without registry access.
//!
//! Supported surface (exactly what this workspace's `tests/properties.rs`
//! files use):
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, implemented
//!   for numeric ranges, [`strategy::Just`], and tuples up to arity 8;
//! * [`collection::vec`] with range length specifications, and
//!   [`bool::ANY`];
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(...)]` header;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from the real crate: cases are drawn from a deterministic
//! per-test RNG (seeded from the test name) and failing inputs are *not*
//! shrunk — the failure message reports the case number instead.  Swapping
//! back to the real crate is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner configuration and plumbing used by the [`proptest!`] macro.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Runner configuration (subset: the number of cases to run).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// How many random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
        /// `prop_assert!`-family failure with its rendered message.
        Fail(String),
    }

    /// The deterministic source of case inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// A generator seeded from the test's name, so every run of a
        /// given test sees the same case sequence.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy applying `map` to every generated value.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, map }
        }

        /// A strategy generating from the strategy `flat` builds out of
        /// each base value (dependent generation).
        fn prop_flat_map<S, F>(self, flat: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, flat }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        base: S,
        map: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.map)(self.base.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        base: S,
        flat: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.flat)(self.base.sample(rng)).sample(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, f64);

    macro_rules! tuple_strategy {
        ($($S:ident => $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A => 0);
    tuple_strategy!(A => 0, B => 1);
    tuple_strategy!(A => 0, B => 1, C => 2);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Length specifications accepted by [`vec`]: a range, an inclusive
    /// range, or an exact length.
    pub trait SizeRange {
        /// Inclusive `(min, max)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end.saturating_sub(1))
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A strategy yielding `Vec`s of values from `element`, with a length
    /// drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// See [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// A strategy yielding `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen_range(0u32..2) == 1
        }
    }
}

/// Everything a property test conventionally imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` against `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr)
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(())
                        | ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "property {} failed at case {case}/{}: {msg}",
                            stringify!($name),
                            config.cases,
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @run ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Assert inside a [`proptest!`] body; failure fails only the current case
/// runner (by early-returning an error) rather than unwinding mid-case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    ::std::format!("assertion failed: {}", stringify!($cond)),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!(
                    "assertion failed: `{} == {}`: {:?} != {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right,
                )),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!(
                    "{}: {:?} != {:?}",
                    ::std::format!($($fmt)+),
                    left,
                    right,
                )),
            );
        }
    }};
}

/// Reject the current case's inputs (it is skipped, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_within_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        let s = (2u32..=9, 0.0f64..1.0).prop_map(|(k, f)| (k * 2, f));
        for _ in 0..1000 {
            let (k2, f) = s.sample(&mut rng);
            assert!((4..=18).contains(&k2) && k2 % 2 == 0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = crate::test_runner::TestRng::deterministic("flat");
        let s = (1u32..=5).prop_flat_map(|k| (Just(k), 0u32..k));
        for _ in 0..1000 {
            let (k, below) = s.sample(&mut rng);
            assert!(below < k);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_asserts(x in 0u32..100, y in 0u32..100) {
            prop_assume!(x != y);
            prop_assert!(x + y < 200, "sum out of range: {x} {y}");
            prop_assert_eq!(x + y, y + x);
        }
    }
}
