//! Offline, API-compatible subset of
//! [`criterion`](https://crates.io/crates/criterion), vendored so the
//! workspace's benches compile and run without registry access.
//!
//! It keeps criterion's bench-authoring surface (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `iter`/`iter_custom`,
//! `Throughput`) but replaces the statistical machinery with a simple
//! calibrated timing loop that prints one median-of-samples line per
//! benchmark.  Good enough to spot order-of-magnitude regressions and to
//! keep `cargo bench --no-run` compiling in CI; swap the workspace
//! manifest back to crates.io for publication-grade numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How long the calibrated measurement of one benchmark aims to run.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(40);

/// Samples per benchmark (medianed); kept small — this shim favours
/// fast smoke runs over tight confidence intervals.
const SAMPLES: usize = 5;

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Group-level throughput annotation: per-iteration work amount.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration (reported as elem/s).
    Elements(u64),
    /// Bytes processed per iteration (reported as MiB/s).
    Bytes(u64),
}

/// A named benchmark id, optionally parameterised (`name/param`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Report a throughput rate alongside the time per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, &mut f);
        self
    }

    /// Run one benchmark closure against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (printing is already done per-benchmark).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut samples: Vec<f64> = Vec::with_capacity(SAMPLES);
        let mut iters_used = 0u64;
        for _ in 0..SAMPLES {
            let mut bencher = Bencher {
                iters: iters_used.max(1),
                measured: None,
            };
            f(&mut bencher);
            let (iters, elapsed) = bencher
                .measured
                .expect("benchmark closure never called iter()/iter_custom()");
            samples.push(elapsed.as_secs_f64() / iters as f64);
            // Calibrate the next sample towards the target duration.
            let per_iter = (elapsed.as_secs_f64() / iters as f64).max(1e-9);
            iters_used = ((TARGET_SAMPLE_TIME.as_secs_f64() / per_iter) as u64).clamp(1, 1 << 24);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.3e} elem/s)", n as f64 / median)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.1} MiB/s)", n as f64 / median / (1 << 20) as f64)
            }
            None => String::new(),
        };
        println!(
            "{}/{id:<28} {:>12}/iter{rate}",
            self.name,
            format_time(median)
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Times the actual benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    /// Time `f`, called `iters` times back-to-back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.measured = Some((self.iters, start.elapsed()));
    }

    /// Let the closure time `iters` iterations itself and report the
    /// total elapsed time (criterion's escape hatch for setup-heavy
    /// bodies).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let elapsed = f(self.iters);
        self.measured = Some((self.iters, elapsed));
    }
}

/// Collect benchmark functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Generate `fn main` running every group (ignores harness CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards flags like `--bench`; the shim has no
            // filtering or baselines, so they are deliberately ignored.
            let _ = ::std::env::args();
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(10);
        let mut calls = 0u64;
        group.bench_function("noop", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_custom_reports_what_the_closure_measured() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &_n| {
            b.iter_custom(|iters| Duration::from_nanos(10 * iters))
        });
        group.finish();
    }
}
