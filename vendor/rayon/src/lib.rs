//! Offline, API-compatible subset of [`rayon`](https://crates.io/crates/rayon),
//! vendored so the workspace builds without registry access.
//!
//! It provides exactly what the sweep hot path needs — `slice.par_iter()
//! .map(f).collect()` — executed on a **bounded pool** of at most
//! `available_parallelism()` scoped worker threads that pull indices from a
//! shared atomic counter.  Wide sweeps (hundreds of λ points) therefore
//! cost `min(#cpus, #items)` OS threads per call, never one thread per
//! item.  Results are returned in input order.
//!
//! Swapping back to the real crate is a one-line change in the workspace
//! manifest; call sites (`use rayon::prelude::*`) are unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The traits a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Conversion of `&self` into a parallel iterator (subset: slices, and —
/// via auto-deref — `Vec`s and arrays).
pub trait IntoParallelRefIterator<'data> {
    /// The element type iterated over.
    type Item: Sync + 'data;

    /// A parallel iterator over borrowed elements.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over a borrowed slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Map every element through `map`, in parallel.
    pub fn map<R, F>(self, map: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            map,
        }
    }
}

/// The result of [`ParIter::map`]: a lazily-executed parallel map.
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    map: F,
}

impl<'data, T, F, R> ParMap<'data, T, F>
where
    T: Sync,
    F: Fn(&'data T) -> R + Sync,
    R: Send,
{
    /// Execute the map on the worker pool and collect the results in
    /// input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_pooled(self.items, &self.map).into_iter().collect()
    }
}

/// Chunk-free pooled execution: `min(#cpus, len)` scoped workers race on an
/// atomic index counter, so uneven per-item cost (cheap unsaturated points
/// next to slow fixed-point solves) still load-balances.
fn run_pooled<'data, T, R, F>(items: &'data [T], map: &F) -> Vec<R>
where
    T: Sync,
    F: Fn(&'data T) -> R + Sync,
    R: Send,
{
    let len = items.len();
    if len <= 1 {
        return items.iter().map(map).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(len);
    let next = AtomicUsize::new(0);
    let gathered: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(len));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    local.push((i, map(&items[i])));
                }
                gathered
                    .lock()
                    .expect("rayon shim: a sibling worker panicked")
                    .extend(local);
            });
        }
    });
    let mut pairs = gathered.into_inner().expect("worker panicked");
    pairs.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), len);
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..500).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * x).collect();
        assert_eq!(out.len(), 500);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn works_on_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn pool_is_bounded_not_per_item() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        use std::thread::ThreadId;
        let ids: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        let input: Vec<u32> = (0..4096).collect();
        let _: Vec<u32> = input
            .par_iter()
            .map(|&x| {
                ids.lock().unwrap().insert(std::thread::current().id());
                x
            })
            .collect();
        let max = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let used = ids.lock().unwrap().len();
        assert!(used <= max, "{used} worker threads for a {max}-wide pool");
    }
}
