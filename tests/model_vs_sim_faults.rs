//! The fault-regime cross-validation suite: the faulty-network
//! analytical model ([`FaultyNCubeModel`]) against the flit-level
//! simulator on bidirectional tori and meshes, across fault densities
//! {0, 2, 5, 10}% — the headline gate of the faulty-model extension.
//!
//! Protocol (mirroring `tests/model_vs_sim.rs`):
//!
//! * model and simulator draw the **same** fault set — same
//!   [`FaultSpec`], same seed, through the same [`sample_fault_set`] the
//!   engine calls internally — and their reachability censuses must
//!   agree exactly (they share the fault-aware router);
//! * the simulator's constant instrumentation offset (injection-port
//!   crossing plus end-of-cycle completion observation) is calibrated
//!   once per fault set at 5% of the model's saturation rate λ*, where
//!   the model is exact (delivered-weighted hops + Lm);
//! * each calibrated prediction is held to a stated load-dependent
//!   agreement factor — 1.2× at 0.45·λ*, 2× at 0.85·λ* — with the
//!   batch-means 95% CI band as an absolute override.  The widening
//!   mirrors the paper's own accuracy claim (§4: "light and moderate
//!   load regions"): near saturation the latency curve is steep, so a
//!   small λ* estimation error swings the ordinate far more than any
//!   matched-load disagreement;
//! * fault samples without the wormhole-deadlock-freedom certificate
//!   ([`FaultRouter::deadlock_free`]) are only driven through 0.7·λ* —
//!   near-saturation occupancy is what completes a paper dependency
//!   cycle, and a deadlocked run measures nothing.
//!
//! The empty-fault-set reduction (faulty model ≡ closed-form `NCubeModel`,
//! bitwise) is pinned here as well; `tests/degenerate_k2.rs` carries the
//! `k = 2` bidirectional↔unidirectional half.

use kncube::model::{FaultyNCubeConfig, FaultyNCubeModel, NCubeConfig, NCubeModel};
use kncube::sim::{SimConfig, SimReport, Simulator};
use kncube::topology::{Boundary, FaultRouter, FaultSet, KAryNCube, LinkKind};
use kncube::traffic::{sample_fault_set, FaultSpec};

const V: u32 = 2;
const LM: u32 = 16;
const H: f64 = 0.2;
const DENSITIES: [f64; 4] = [0.0, 0.02, 0.05, 0.10];
const FRACS: [f64; 2] = [0.45, 0.85];

/// Stated agreement factor at a load fraction of λ*.
fn agreement_factor(frac: f64) -> f64 {
    if frac <= 0.5 {
        1.2
    } else if frac <= 0.7 {
        1.35
    } else {
        2.0
    }
}

/// First connected fault sample at `density` from the scan window,
/// preferring one with the deadlock-freedom certificate.  Returns
/// `(faults, spec, seed, certified)`.
fn select_fault_set(
    topo: KAryNCube,
    density: f64,
    base: u64,
) -> (FaultSet, Option<FaultSpec>, u64, bool) {
    if density == 0.0 {
        return (FaultSet::none(topo), None, base, true);
    }
    let spec = FaultSpec {
        router_failure_prob: density,
        link_failure_prob: density,
    };
    let mut connected: Option<(FaultSet, u64)> = None;
    for seed in base..base + 64 {
        let faults = sample_fault_set(topo, spec, seed);
        let router = FaultRouter::new(faults.clone());
        if router.reachable_pairs() == 0 {
            continue;
        }
        if router.deadlock_free() {
            return (faults, Some(spec), seed, true);
        }
        if connected.is_none() {
            connected = Some((faults, seed));
        }
    }
    let (faults, seed) = connected.expect("a connected fault sample in 64 seeds");
    (faults, Some(spec), seed, false)
}

/// Run one simulation sized for ~`target` measured completions at the
/// model's delivered-traffic fraction.
#[allow(clippy::too_many_arguments)]
fn run_sim(
    k: u32,
    n: u32,
    link_kind: LinkKind,
    boundary: Boundary,
    spec: Option<FaultSpec>,
    seed: u64,
    lambda: f64,
    delivered: f64,
    target: u64,
) -> SimReport {
    let nodes = (k as u64).pow(n) as f64;
    let warmup = 15_000u64;
    let rate = (nodes * lambda * delivered.max(0.05)).max(1e-9);
    let max_cycles = warmup + (1.6 * target as f64 / rate) as u64;
    let mut cfg = SimConfig::ncube(k, n, V, LM, lambda, H, seed)
        .with_topology(link_kind, boundary)
        .with_limits(max_cycles, warmup, target);
    if let Some(spec) = spec {
        cfg = cfg.with_faults(spec);
    }
    Simulator::new(cfg).expect("valid sim config").run()
}

/// The cross-validation protocol for one geometry.
fn validate_geometry(name: &str, k: u32, n: u32, link_kind: LinkKind, boundary: Boundary) {
    let topo = KAryNCube::with_boundary(k, n, link_kind, boundary).expect("valid topology");
    for (idx, &density) in DENSITIES.iter().enumerate() {
        let (faults, spec, seed, certified) =
            select_fault_set(topo, density, 0x1AB0 + 100 * idx as u64);
        let model = FaultyNCubeModel::new(FaultyNCubeConfig::new(faults, V, LM, 0.0, H))
            .expect("valid faulty config");
        let sat = model
            .saturation(1e-9, 1e-1, 1e-3)
            .expect("hot-spot networks saturate")
            .lambda_star;
        let zero = model.solve_at(0.0).expect("zero load cannot saturate");

        // Calibrate the instrumentation offset where the model is exact.
        let cal_lambda = 0.05 * sat;
        let cal = run_sim(
            k,
            n,
            link_kind,
            boundary,
            spec,
            seed,
            cal_lambda,
            zero.delivered_fraction,
            1_500,
        );
        assert!(
            !cal.deadlocked,
            "{name} p={density}: calibration deadlocked"
        );
        let cal_model = model
            .solve_at(cal_lambda)
            .expect("calibration load is below saturation")
            .latency;
        let offset = cal.mean_latency - cal_model;
        assert!(
            (0.0..3.0).contains(&offset),
            "{name} p={density}: calibration offset {offset} outside the plausible \
             injection overhead"
        );
        let cal_ci = cal.ci_half_width.expect("batch means available");

        for &frac in &FRACS {
            if !certified && frac > 0.7 {
                // Near-saturation load without the acyclicity certificate
                // risks wormhole deadlock; stay in the validated region.
                continue;
            }
            let lambda = frac * sat;
            let out = model
                .solve_at(lambda)
                .expect("loads below λ* must be solvable");
            let sim = run_sim(
                k,
                n,
                link_kind,
                boundary,
                spec,
                seed,
                lambda,
                zero.delivered_fraction,
                2_500,
            );
            assert!(
                !sim.deadlocked,
                "{name} p={density} frac={frac}: deadlocked"
            );
            assert!(
                !sim.saturated,
                "{name} p={density} frac={frac}: saturated at λ={lambda}"
            );
            assert!(
                sim.completed >= 1_000,
                "{name} p={density} frac={frac}: too few samples ({})",
                sim.completed
            );
            // Shared router ⇒ identical reachability census.
            assert!(
                (out.reachable_fraction - sim.reachable_fraction).abs() < 1e-12,
                "{name} p={density}: reachability disagrees — model {} vs sim {}",
                out.reachable_fraction,
                sim.reachable_fraction
            );
            let predicted = out.latency + offset;
            let residual = (predicted - sim.mean_latency).abs();
            let ci = sim.ci_half_width.expect("batch means available") + cal_ci;
            let factor = agreement_factor(frac);
            let ratio = predicted / sim.mean_latency;
            assert!(
                residual <= ci || (ratio >= 1.0 / factor && ratio <= factor),
                "{name} p={density} frac={frac}: model {:.2}+{offset:.2} vs sim {:.2} — \
                 ratio {ratio:.3} outside [1/{factor}, {factor}] and residual \
                 {residual:.3} outside the CI band {ci:.3}",
                out.latency,
                sim.mean_latency
            );
        }
    }
}

#[test]
fn bitorus_8_2_model_tracks_the_simulator_across_fault_densities() {
    validate_geometry(
        "8x8 bi-torus",
        8,
        2,
        LinkKind::Bidirectional,
        Boundary::Torus,
    );
}

#[test]
fn mesh_8_2_model_tracks_the_simulator_across_fault_densities() {
    validate_geometry("8x8 mesh", 8, 2, LinkKind::Bidirectional, Boundary::Mesh);
}

#[test]
fn bitorus_4_3_model_tracks_the_simulator_across_fault_densities() {
    validate_geometry(
        "4-ary 3-cube bi-torus",
        4,
        3,
        LinkKind::Bidirectional,
        Boundary::Torus,
    );
}

#[test]
fn mesh_4_3_model_tracks_the_simulator_across_fault_densities() {
    validate_geometry(
        "4-ary 3-cube mesh",
        4,
        3,
        LinkKind::Bidirectional,
        Boundary::Mesh,
    );
}

#[test]
fn empty_fault_set_reduces_bitwise_to_the_closed_form_model() {
    // The tentpole's anchor: with no faults on the paper's unidirectional
    // torus, the faulty model delegates to the closed-form solver and
    // reproduces it bit for bit — same latency, same class split, same
    // bottleneck utilization.
    for (k, n) in [(8u32, 2u32), (4, 3), (16, 2)] {
        let topo = KAryNCube::unidirectional(k, n).unwrap();
        for lambda in [1e-5, 5e-4, 1e-3] {
            let faulty = FaultyNCubeModel::new(FaultyNCubeConfig::new(
                FaultSet::none(topo),
                V,
                LM,
                lambda,
                H,
            ))
            .unwrap();
            assert!(faulty.delegates_to_ncube());
            let a = faulty.solve().expect("light load solves");
            let b = NCubeModel::new(NCubeConfig::new(k, n, V, LM, lambda, H))
                .unwrap()
                .solve()
                .expect("light load solves");
            assert_eq!(a.latency.to_bits(), b.latency.to_bits(), "k={k} n={n}");
            assert_eq!(a.regular_latency.to_bits(), b.regular_latency.to_bits());
            assert_eq!(a.hot_latency.to_bits(), b.hot_latency.to_bits());
            assert_eq!(a.max_utilization.to_bits(), b.max_utilization.to_bits());
            assert_eq!(a.reachable_fraction, 1.0);
            assert_eq!(a.mean_detour_hops, 0.0);
            assert_eq!(a.delivered_fraction, 1.0);
            assert!(a.delegated);
        }
    }
}
