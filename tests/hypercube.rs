//! The hypercube baseline model (reference [12] rebuilt) against the
//! flit-level simulator running the binary cube as a 2-ary n-cube.

use kncube::model::HypercubeModel;
use kncube::sim::{SimConfig, Simulator};

fn simulate(n: u32, lm: u32, lambda: f64, h: f64) -> kncube::sim::SimReport {
    let mut cfg = SimConfig::paper_validation(2, 2, lm, lambda, h, 8_128);
    cfg.n = n;
    let cfg = cfg.with_limits(700_000, 40_000, 12_000);
    Simulator::new(cfg).unwrap().run()
}

#[test]
fn light_load_agreement() {
    let (n, lm, h) = (6u32, 16u32, 0.3);
    let model = HypercubeModel::new(n, 2, lm, 0.0, h).unwrap();
    let lambda = 0.25 * model.saturation_bound();
    let predicted = HypercubeModel::new(n, 2, lm, lambda, h)
        .unwrap()
        .solve()
        .unwrap();
    let sim = simulate(n, lm, lambda, h);
    assert!(!sim.saturated && !sim.deadlocked);
    let err = (predicted.latency - sim.mean_latency).abs() / sim.mean_latency;
    assert!(
        err < 0.15,
        "hypercube model {:.1} vs sim {:.1} ({:.0}%)",
        predicted.latency,
        sim.mean_latency,
        err * 100.0
    );
}

#[test]
fn zero_load_intercept_matches_simulator() {
    let (n, lm, h) = (5u32, 16u32, 0.2);
    let model = HypercubeModel::new(n, 2, lm, 1e-6, h).unwrap();
    let predicted = model.solve().unwrap();
    let sim = simulate(n, lm, 1e-6, h);
    // Allow the simulator's injection/observation offset (~2 cycles).
    assert!(
        (predicted.latency - sim.mean_latency).abs() < 3.0,
        "zero-load: model {:.2} vs sim {:.2}",
        predicted.latency,
        sim.mean_latency
    );
}

#[test]
fn simulator_saturates_near_the_models_bound() {
    let (n, lm, h) = (5u32, 16u32, 0.5);
    let bound = HypercubeModel::new(n, 2, lm, 0.0, h)
        .unwrap()
        .saturation_bound();
    // Below: deliverable.
    let below = simulate(n, lm, 0.7 * bound, h);
    assert!(!below.saturated);
    let deficit = (below.offered_load - below.throughput) / below.offered_load;
    assert!(
        deficit < 0.03,
        "throughput deficit {deficit:.3} below bound"
    );
    // Above: cannot keep up.
    let above = {
        let mut cfg = SimConfig::paper_validation(2, 2, lm, 1.5 * bound, h, 8_128);
        cfg.n = n;
        let cfg = cfg.with_limits(700_000, 40_000, 0);
        Simulator::new(cfg).unwrap().run()
    };
    let deficit = (above.offered_load - above.throughput) / above.offered_load;
    assert!(
        above.saturated || deficit > 0.05,
        "expected saturation past the bound (deficit {deficit:.3})"
    );
}

#[test]
fn hypercube_latency_beats_torus_at_equal_n_under_hot_load() {
    // 64 nodes, same Lm and h, same absolute λ: the hypercube's shorter
    // paths and lighter worst channel give lower latency.
    let lm = 16u32;
    let h = 0.3;
    let lambda = 4e-4;
    let hyper = HypercubeModel::new(6, 2, lm, lambda, h)
        .unwrap()
        .solve()
        .unwrap();
    let torus = kncube::model::HotSpotModel::new(kncube::model::ModelConfig::paper_validation(
        8, 2, lm, lambda, h,
    ))
    .unwrap()
    .solve()
    .unwrap();
    assert!(
        hyper.latency < torus.latency,
        "hypercube {:.1} !< torus {:.1}",
        hyper.latency,
        torus.latency
    );
}
