//! Workspace-level smoke test: the facade re-exports compose across every
//! crate, and one `ModelConfig::paper_validation` parameterisation
//! round-trips through both the analytical model and a short simulator
//! run with consistent answers.

use kncube::model::{latency_curve, HotSpotModel, ModelConfig};
use kncube::sim::{SimConfig, Simulator};

/// One modest operating point shared by every check below: an 8×8 torus
/// at roughly 40% of the hot-channel flit bound.
const K: u32 = 8;
const V: u32 = 2;
const LM: u32 = 16;
const H: f64 = 0.2;

fn lambda() -> f64 {
    0.4 / (H * (K * (K - 1)) as f64 * (LM + 1) as f64)
}

#[test]
fn facade_reexports_compose_across_all_crates() {
    // topology → traffic → queueing → model, all through the facade paths.
    let topo = kncube::topology::KAryNCube::unidirectional(K, 2).unwrap();
    assert_eq!(topo.num_nodes(), K * K);

    let pattern = kncube::traffic::TrafficPattern::HotSpot {
        hot: kncube::topology::NodeId(0),
        h: H,
    };
    let _ = pattern; // constructible through the facade

    let wait = kncube::queueing::mg1::waiting_time(1e-3, (LM + 1) as f64, LM as f64).unwrap();
    assert!(wait > 0.0);

    let probs = kncube::model::RegularRouteProbs::new(K);
    assert!((probs.total() - 1.0).abs() < 1e-12);

    assert_eq!(kncube::PAPER_RADIX, 16);
    assert!(kncube::PAPER_HOT_FRACTIONS.contains(&H));
}

#[test]
fn paper_validation_round_trips_model_and_simulator() {
    let lambda = lambda();

    // Model side.
    let model_cfg = ModelConfig::paper_validation(K, V, LM, lambda, H);
    let model = HotSpotModel::new(model_cfg).unwrap();
    let out = model.solve().expect("sub-saturation point must solve");
    assert!(out.latency >= model.zero_load_latency());
    assert!(out.max_utilization < 1.0);

    // Simulator side, same parameterisation, short but real run.
    let sim_cfg = SimConfig::paper_validation(K, V, LM, lambda, H, 20_050_408)
        .with_limits(80_000, 8_000, 4_000);
    let report = Simulator::new(sim_cfg).unwrap().run();
    assert!(!report.saturated, "sub-saturation run flagged saturated");
    assert!(report.completed > 0);

    // Round-trip consistency: model and measurement describe the same
    // network, so they must land in the same latency regime.  The bound
    // is loose on purpose — this is a smoke test, not a validation run
    // (the validation binary does that job on full-length runs).
    let rel = (out.latency - report.mean_latency).abs() / report.mean_latency;
    assert!(
        rel < 0.35,
        "model {:.1} vs simulated {:.1} ({:.0}% apart) at λ={lambda:.3e}",
        out.latency,
        report.mean_latency,
        rel * 100.0
    );
}

#[test]
fn sweep_entrypoint_is_reachable_through_the_facade() {
    let base = ModelConfig::paper_validation(K, V, LM, 0.0, H);
    let grid = [0.5 * lambda(), lambda()];
    let curve = latency_curve(base, &grid);
    assert_eq!(curve.len(), 2);
    assert!(curve.iter().all(|p| p.result.is_ok()));
    let sat = kncube::model::find_saturation(base, 1e-8, 1e-1, 1e-3)
        .expect("paper configurations saturate inside the bracket");
    assert!(sat > grid[1], "grid was supposed to sit below saturation");
}
