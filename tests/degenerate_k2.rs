//! The `k = 2` degeneracy, model side: a 2-ary ring has one other node,
//! one hop away in either direction, so unidirectional and bidirectional
//! 2-ary n-cubes are the *same hypercube*.  Every topology-level quantity
//! the analytical model consumes — hop counts, routes, mean hops,
//! hot-spot channel fractions — must agree **bitwise** between the two
//! link kinds, and the closed-form model (which takes only `(k, n, V, Lm,
//! λ, h)`) must solve to finite outputs that match the shared zero-load
//! geometry across a λ grid.
//!
//! The engine-level half of the equivalence (bit-identical simulation
//! reports) lives in `crates/sim/tests/degenerate_equivalence.rs`.

use kncube_core::{FaultyNCubeConfig, FaultyNCubeModel, NCubeConfig, NCubeModel};
use kncube_topology::{Channel, Direction, FaultSet, HotSpotGeometry, KAryNCube, NodeId};

#[test]
fn k2_topology_quantities_coincide_bitwise() {
    for n in 1..=6 {
        let uni = KAryNCube::unidirectional(2, n).unwrap();
        let bi = KAryNCube::bidirectional(2, n).unwrap();
        assert_eq!(uni.num_nodes(), bi.num_nodes());
        assert_eq!(uni.max_hops(), bi.max_hops(), "n={n}");
        // (k-1)/2 = 1/2 (unidirectional) and k/4 = 1/2 (bidirectional,
        // even k) are the same real number — and the same f64.
        assert_eq!(
            uni.mean_hops_per_dim().to_bits(),
            bi.mean_hops_per_dim().to_bits(),
            "n={n}"
        );
        assert_eq!(
            uni.mean_hops_total().to_bits(),
            bi.mean_hops_total().to_bits(),
            "n={n}"
        );
        for src in uni.nodes() {
            for dest in uni.nodes() {
                assert_eq!(uni.hop_count(src, dest), bi.hop_count(src, dest));
                // Same routes, hop for hop: channels *and* virtual-channel
                // classes (every hop is a Plus hop of a 2-ring).
                assert_eq!(
                    uni.dor_route(src, dest).hops,
                    bi.dor_route(src, dest).hops,
                    "n={n} {:?}→{:?}",
                    uni.coords(src),
                    uni.coords(dest)
                );
            }
        }
    }
}

#[test]
fn k2_hot_spot_fractions_coincide_and_minus_channels_carry_nothing() {
    for n in [1u32, 2, 3, 5] {
        let uni = KAryNCube::unidirectional(2, n).unwrap();
        let bi = KAryNCube::bidirectional(2, n).unwrap();
        let hot = NodeId(uni.num_nodes() / 3);
        let gu = HotSpotGeometry::new(uni, hot);
        let gb = HotSpotGeometry::new(bi, hot);
        for from in uni.nodes() {
            for dim in 0..n {
                let plus = Channel {
                    from,
                    dim,
                    direction: Direction::Plus,
                };
                assert_eq!(
                    gu.p_hot_channel(plus).to_bits(),
                    gb.p_hot_channel(plus).to_bits(),
                    "n={n} {:?} dim {dim}",
                    uni.coords(from)
                );
                // No k=2 route ever takes a Minus channel, so no hot-spot
                // traffic crosses one.
                let minus = Channel {
                    from,
                    dim,
                    direction: Direction::Minus,
                };
                assert_eq!(gb.p_hot_channel(minus), 0.0, "n={n}");
                assert_eq!(gb.count_hot_sources_crossing(minus), 0, "n={n}");
            }
        }
    }
}

#[test]
fn k2_faulty_model_coincides_bitwise_across_link_kinds() {
    // The faulty model consumes the route substrate directly, so the k=2
    // equivalence must survive it: identical enumeration order (the
    // lowest-channel-id tie-break picks Plus on both link kinds), hence
    // identical floating-point operation order, hence bitwise-equal
    // outputs — on the empty fault set AND under node faults (a failed
    // node kills the same routes in both cubes; link faults differ, as
    // bidirectional 2-rings have a second physical link).
    for n in [2u32, 3] {
        let uni = KAryNCube::unidirectional(2, n).unwrap();
        let bi = KAryNCube::bidirectional(2, n).unwrap();
        let fault_sets: Vec<(FaultSet, FaultSet)> = vec![
            (FaultSet::none(uni), FaultSet::none(bi)),
            {
                let mut fu = FaultSet::none(uni);
                let mut fb = FaultSet::none(bi);
                let node = NodeId(uni.num_nodes() - 1);
                fu.fail_node(node);
                fb.fail_node(node);
                (fu, fb)
            },
            {
                let mut fu = FaultSet::none(uni);
                let mut fb = FaultSet::none(bi);
                for node in [NodeId(1), NodeId(2)] {
                    fu.fail_node(node);
                    fb.fail_node(node);
                }
                (fu, fb)
            },
        ];
        for (fu, fb) in fault_sets {
            for &lambda in &[0.0, 1e-4, 1e-3] {
                let mu =
                    FaultyNCubeModel::new(FaultyNCubeConfig::new(fu.clone(), 2, 16, lambda, 0.2))
                        .unwrap();
                let mb =
                    FaultyNCubeModel::new(FaultyNCubeConfig::new(fb.clone(), 2, 16, lambda, 0.2))
                        .unwrap();
                // Same delegation decision on both link kinds…
                assert_eq!(mu.delegates_to_ncube(), mb.delegates_to_ncube(), "n={n}");
                let (a, b) = (mu.solve().unwrap(), mb.solve().unwrap());
                assert_eq!(
                    a.latency.to_bits(),
                    b.latency.to_bits(),
                    "n={n} λ={lambda} solve()"
                );
                assert_eq!(a.reachable_pairs, b.reachable_pairs);
                assert_eq!(
                    a.delivered_fraction.to_bits(),
                    b.delivered_fraction.to_bits()
                );
                // …and the forced general path agrees bitwise too, which
                // pins the enumeration-order argument itself.
                let (ga, gb) = (mu.solve_general().unwrap(), mb.solve_general().unwrap());
                assert_eq!(
                    ga.latency.to_bits(),
                    gb.latency.to_bits(),
                    "n={n} λ={lambda} solve_general()"
                );
                assert_eq!(ga.max_utilization.to_bits(), gb.max_utilization.to_bits());
                assert_eq!(ga.hot_latency.to_bits(), gb.hot_latency.to_bits());
            }
        }
    }
}

#[test]
fn k2_model_solves_on_the_shared_geometry_across_a_lambda_grid() {
    // The closed-form model has no link-kind knob — its inputs are the
    // quantities shown bitwise-equal above.  Tie the loop shut: its
    // zero-load latency must be reproducible from *either* topology's mean
    // hop count, and it must solve to finite, sane outputs on a λ grid.
    for n in [2u32, 3, 4] {
        let uni = KAryNCube::unidirectional(2, n).unwrap();
        let bi = KAryNCube::bidirectional(2, n).unwrap();
        for h in [0.0, 0.2] {
            for &lambda in &[1e-4, 5e-4, 1e-3] {
                let lm = 16;
                let model = NCubeModel::new(NCubeConfig::new(2, n, 4, lm, lambda, h)).unwrap();
                let out = model.solve().expect("light k=2 load must solve");
                assert!(out.latency.is_finite() && out.latency > lm as f64);
                // Zero-load floor from the shared geometry: at h = 0 the
                // model's uniform-traffic entry-case average equals
                // Lm + n·(k-1)/2 · N/(N-1) computed from either cube (the
                // model's destinations exclude the source itself).
                if h == 0.0 {
                    let nodes = uni.num_nodes() as f64;
                    let self_excluded = nodes / (nodes - 1.0);
                    let floor_uni = lm as f64 + uni.mean_hops_total() * self_excluded;
                    let floor_bi = lm as f64 + bi.mean_hops_total() * self_excluded;
                    assert_eq!(floor_uni.to_bits(), floor_bi.to_bits());
                    assert!(
                        (model.zero_load_latency() - floor_uni).abs() < 1e-9,
                        "n={n}: zero-load {} vs geometric floor {}",
                        model.zero_load_latency(),
                        floor_uni
                    );
                    assert!(out.latency >= floor_uni - 1e-9);
                }
            }
        }
    }
}
