//! Cross-validation of the two independently-implemented analytical
//! models: the hot-spot solver at `h → 0` must agree with the uniform
//! baseline, and both must agree with the simulator.

use kncube::model::{HotSpotModel, ModelConfig, UniformModel};

#[test]
fn h_zero_reduces_to_uniform_baseline() {
    for k in [4u32, 8, 16] {
        for lambda_frac in [0.1, 0.4, 0.7] {
            // Scale the load to each radix's uniform saturation.
            let sat = 1.0 / ((k as f64 - 1.0) / 2.0 * 33.0);
            let lambda = lambda_frac * sat;
            let hot = HotSpotModel::new(ModelConfig::paper_validation(k, 2, 32, lambda, 0.0))
                .unwrap()
                .solve()
                .unwrap_or_else(|e| panic!("hot-spot model failed at k={k}: {e}"));
            let uni = UniformModel::new(k, 2, 32, lambda)
                .solve()
                .unwrap_or_else(|e| panic!("uniform model failed at k={k}: {e}"));
            let rel = (hot.latency - uni.latency).abs() / uni.latency;
            assert!(
                rel < 0.05,
                "k={k} λ={lambda:.3e}: hot-spot(h=0) {:.2} vs uniform {:.2} ({:.1}%)",
                hot.latency,
                uni.latency,
                rel * 100.0
            );
        }
    }
}

#[test]
fn both_models_share_the_zero_load_intercept() {
    let hot = HotSpotModel::new(ModelConfig::paper_validation(16, 2, 32, 1e-9, 0.0))
        .unwrap()
        .solve()
        .unwrap();
    let uni = UniformModel::new(16, 2, 32, 1e-9).solve().unwrap();
    assert!(
        (hot.latency - uni.latency).abs() < 0.5,
        "zero-load intercepts differ: {} vs {}",
        hot.latency,
        uni.latency
    );
}

#[test]
fn hot_spot_fraction_only_hurts() {
    // For every load where both solve, latency(h) >= latency(0).
    for lambda in [5e-5, 1e-4, 1.5e-4] {
        let base = HotSpotModel::new(ModelConfig::paper_validation(16, 2, 32, lambda, 0.0))
            .unwrap()
            .solve()
            .unwrap();
        for h in [0.05, 0.2, 0.4] {
            let hot = HotSpotModel::new(ModelConfig::paper_validation(16, 2, 32, lambda, h))
                .unwrap()
                .solve()
                .unwrap();
            assert!(
                hot.latency >= base.latency - 1e-9,
                "λ={lambda} h={h}: {} < uniform {}",
                hot.latency,
                base.latency
            );
        }
    }
}

#[test]
fn virtual_channels_only_help_capacity() {
    // More VCs postpone saturation (multiplexing spreads the same flit
    // bandwidth, so latency can rise slightly, but the saturation rate
    // must not shrink).
    let sat = |v: u32| {
        kncube::model::find_saturation(
            ModelConfig::paper_validation(16, v, 32, 0.0, 0.4),
            1e-8,
            1e-2,
            1e-3,
        )
        .expect("paper configurations saturate inside the bracket")
    };
    let s2 = sat(2);
    let s4 = sat(4);
    assert!(
        s4 >= 0.95 * s2,
        "V=4 saturates earlier than V=2: {s4:.3e} vs {s2:.3e}"
    );
}
