//! Cross-validation of the generalized k-ary n-cube model against the two
//! independently-specified instances the workspace already trusts:
//!
//! * at `n = 2` the generalized solver must be **bit-identical** to the
//!   paper's 2-D solver ([`kncube::model::HotSpotModel`]) — the 2-D API is
//!   a thin specialization, and these tests pin that contract across λ
//!   grids, radices, hot fractions and model variants;
//! * at `k = 2` it must reproduce the closed-form binary-hypercube model
//!   ([`kncube::model::HypercubeModel`], the paper's reference \[12\]
//!   rebuilt) within `1e-9` relative — the two are derived separately
//!   (fixed-point recursion over per-dimension chains vs. closed-form
//!   per-level composition), so agreement is a genuine consistency check,
//!   not a tautology.

use kncube::model::{
    find_saturation, HotSpotModel, HypercubeModel, ModelConfig, ModelVariant, MultiplexingModel,
    NCubeConfig, NCubeModel, ServiceTimeModel,
};

/// A λ grid of `points` rates up to `top` times the 2-D model's
/// saturation rate.
fn lambda_grid_2d(base: ModelConfig, points: usize, top: f64) -> Vec<f64> {
    let sat = find_saturation(base, 1e-9, 1e-1, 1e-3).expect("2-D hot-spot configs saturate");
    (1..=points)
        .map(|i| sat * top * i as f64 / points as f64)
        .collect()
}

#[test]
fn n2_bit_identical_to_the_2d_solver_across_a_lambda_grid() {
    for (k, h) in [(4u32, 0.2f64), (8, 0.4), (16, 0.2), (5, 0.7)] {
        let base = ModelConfig::paper_validation(k, 2, 16, 0.0, h);
        for lambda in lambda_grid_2d(base, 6, 0.9) {
            let cfg = ModelConfig { lambda, ..base };
            let two_d = HotSpotModel::new(cfg).unwrap().solve();
            let general = NCubeModel::new(cfg.as_ncube()).unwrap().solve();
            match (two_d, general) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.latency.to_bits(),
                        b.latency.to_bits(),
                        "k={k} h={h} λ={lambda}: latency {} vs {}",
                        a.latency,
                        b.latency
                    );
                    assert_eq!(a.regular_latency.to_bits(), b.regular_latency.to_bits());
                    assert_eq!(a.hot_latency.to_bits(), b.hot_latency.to_bits());
                    assert_eq!(
                        a.source_wait_regular.to_bits(),
                        b.source_wait_regular.to_bits()
                    );
                }
                (Err(_), Err(_)) => {}
                (a, b) => panic!(
                    "k={k} h={h} λ={lambda}: solvability mismatch (2-D ok={}, n-cube ok={})",
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }
}

#[test]
fn n2_bit_identity_holds_for_every_model_variant() {
    let base = ModelConfig::paper_validation(8, 2, 32, 2e-4, 0.4);
    for variant in [ModelVariant::XRingService, ModelVariant::HotRingServiceEq25] {
        for service in [
            ServiceTimeModel::PipelinedTransfer,
            ServiceTimeModel::PathOccupancy,
        ] {
            for mux in [
                MultiplexingModel::DallyMarkov,
                MultiplexingModel::ClassAware,
            ] {
                let cfg = ModelConfig {
                    variant,
                    service_model: service,
                    multiplexing: mux,
                    ..base
                };
                let two_d = HotSpotModel::new(cfg).unwrap().solve();
                let general = NCubeModel::new(cfg.as_ncube()).unwrap().solve();
                match (two_d, general) {
                    (Ok(a), Ok(b)) => assert_eq!(
                        a.latency.to_bits(),
                        b.latency.to_bits(),
                        "{variant:?}/{service:?}/{mux:?}"
                    ),
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!(
                        "{variant:?}/{service:?}/{mux:?}: solvability mismatch ({}, {})",
                        a.is_ok(),
                        b.is_ok()
                    ),
                }
            }
        }
    }
}

#[test]
fn k2_reproduces_the_hypercube_model_within_1e9() {
    // λ grid per dimension count: fractions of the hypercube's flit bound
    // low enough that the source-queue term (the earliest-saturating
    // resource in both derivations) still admits a solution.
    for n in [3u32, 4, 5, 6, 8] {
        for h in [0.0f64, 0.2, 0.5] {
            let bound = HypercubeModel::new(n, 2, 16, 0.0, h)
                .unwrap()
                .saturation_bound();
            for frac in [0.05, 0.15, 0.3, 0.45] {
                let lambda = frac * bound;
                let hyper = HypercubeModel::new(n, 2, 16, lambda, h)
                    .unwrap()
                    .solve()
                    .unwrap_or_else(|e| panic!("hypercube n={n} h={h} frac={frac}: {e}"));
                let cube = NCubeModel::new(NCubeConfig::new(2, n, 2, 16, lambda, h))
                    .unwrap()
                    .solve()
                    .unwrap_or_else(|e| panic!("n-cube n={n} h={h} frac={frac}: {e}"));
                for (name, a, b) in [
                    ("latency", hyper.latency, cube.latency),
                    ("regular", hyper.regular_latency, cube.regular_latency),
                    ("hot", hyper.hot_latency, cube.hot_latency),
                ] {
                    assert!(
                        (a - b).abs() / b.abs().max(1e-300) < 1e-9,
                        "n={n} h={h} frac={frac}: {name} {a} vs {b}"
                    );
                }
            }
        }
    }
}

#[test]
fn k2_solvability_boundary_agrees_with_the_hypercube_model() {
    // Past twice the flit bound both derivations must refuse to produce a
    // number; the generalized model may not silently "solve" a saturated
    // hypercube.
    for (n, h) in [(3u32, 0.3f64), (6, 0.2)] {
        let bound = HypercubeModel::new(n, 2, 16, 0.0, h)
            .unwrap()
            .saturation_bound();
        let lambda = 2.0 * bound;
        assert!(HypercubeModel::new(n, 2, 16, lambda, h)
            .unwrap()
            .solve()
            .is_err());
        assert!(NCubeModel::new(NCubeConfig::new(2, n, 2, 16, lambda, h))
            .unwrap()
            .solve()
            .is_err());
    }
}

#[test]
fn zero_load_closed_forms_agree_across_the_family() {
    // The generalized model's closed-form zero-load latency must agree
    // with the solved model at vanishing λ for non-trivial (k, n), tying
    // the composition to first principles independently of either anchor.
    for (k, n, h) in [(2u32, 5u32, 0.3f64), (4, 3, 0.2), (8, 3, 0.0), (16, 2, 0.4)] {
        let model = NCubeModel::new(NCubeConfig::new(k, n, 2, 16, 1e-12, h)).unwrap();
        let solved = model.solve().unwrap().latency;
        let closed = model.zero_load_latency();
        assert!(
            (solved - closed).abs() / closed < 1e-6,
            "k={k} n={n} h={h}: {solved} vs {closed}"
        );
    }
}
