//! Saturation behaviour across the crates: the model's divergence point,
//! the simulator's queue blow-up, and the hot-channel flit bound must all
//! tell the same story.

use kncube::model::{find_saturation, ModelConfig};
use kncube::sim::{SimConfig, Simulator};

/// The hot channel into the hot-spot node carries `λ h k(k-1)` messages of
/// `Lm + 1` cycles each; it cannot absorb more than one flit per cycle.
fn flit_bound(k: u32, lm: u32, h: f64) -> f64 {
    1.0 / (h * (k * (k - 1)) as f64 * (lm + 1) as f64)
}

#[test]
fn model_saturation_tracks_flit_bound() {
    for (k, lm, h) in [
        (8u32, 16u32, 0.3f64),
        (8, 32, 0.5),
        (16, 32, 0.2),
        (16, 100, 0.7),
    ] {
        let base = ModelConfig::paper_validation(k, 2, lm, 0.0, h);
        let sat = find_saturation(base, 1e-8, 1e-1, 1e-3)
            .expect("paper configurations saturate inside the bracket");
        let bound = flit_bound(k, lm, h);
        assert!(
            sat < bound,
            "k={k} Lm={lm} h={h}: λ*={sat:.3e} must sit below the flit bound {bound:.3e}"
        );
        assert!(
            sat > 0.75 * bound,
            "k={k} Lm={lm} h={h}: λ*={sat:.3e} implausibly far below the bound {bound:.3e}"
        );
    }
}

#[test]
fn saturation_rate_decreases_with_h_and_lm() {
    let sat = |lm: u32, h: f64| {
        find_saturation(
            ModelConfig::paper_validation(8, 2, lm, 0.0, h),
            1e-8,
            1e-1,
            1e-3,
        )
        .expect("paper configurations saturate inside the bracket")
    };
    assert!(sat(16, 0.1) > sat(16, 0.3));
    assert!(sat(16, 0.3) > sat(16, 0.7));
    assert!(sat(16, 0.3) > sat(32, 0.3));
    assert!(sat(32, 0.3) > sat(100, 0.3));
}

#[test]
fn simulator_survives_below_and_collapses_above() {
    let (k, lm, h) = (8, 16, 0.5);
    let bound = flit_bound(k, lm, h);
    // 60% of the bound: healthy.
    let healthy = Simulator::new(
        SimConfig::paper_validation(k, 2, lm, 0.6 * bound, h, 5)
            .with_limits(400_000, 30_000, 10_000),
    )
    .unwrap()
    .run();
    assert!(!healthy.saturated, "unexpected saturation below the bound");
    // 160% of the bound: must blow up.
    let mut cfg =
        SimConfig::paper_validation(k, 2, lm, 1.6 * bound, h, 5).with_limits(400_000, 30_000, 0);
    cfg.max_source_queue = 300;
    let choked = Simulator::new(cfg).unwrap().run();
    assert!(choked.saturated, "expected saturation above the bound");
}

#[test]
fn throughput_below_saturation_matches_offered_load() {
    let (k, lm, h) = (8, 16, 0.3);
    let lambda = 0.5 * flit_bound(k, lm, h);
    let report = Simulator::new(
        SimConfig::paper_validation(k, 2, lm, lambda, h, 17).with_limits(900_000, 50_000, 0),
    )
    .unwrap()
    .run();
    assert!(!report.saturated);
    let rel = (report.throughput - lambda).abs() / lambda;
    assert!(
        rel < 0.05,
        "delivered {:.3e} vs offered {lambda:.3e} ({:.1}% off)",
        report.throughput,
        rel * 100.0
    );
}
