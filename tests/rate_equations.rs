//! Direct validation of the paper's traffic-rate equations (Eqs. 3–9)
//! against the simulator's per-channel flit counters.
//!
//! This is the strongest kind of cross-check the reproduction has: the
//! closed-form channel rates come from pure combinatorics (`kncube-core`),
//! while the flit counters come from the cycle-level machinery
//! (`kncube-sim`) with none of the queueing approximations in between —
//! at any load below saturation they must agree to statistical accuracy.

use kncube::model::Rates;
use kncube::sim::{SimConfig, Simulator};
use kncube::topology::hotspot::{DIM_X, DIM_Y};
use kncube::topology::{Channel, Direction, HotSpotGeometry, NodeId};

/// Run the simulator and return (cycles, per-channel flit counts keyed by
/// channel id).
fn measure(k: u32, lm: u32, lambda: f64, h: f64, cycles: u64) -> (Simulator, u64) {
    let cfg = SimConfig::paper_validation(k, 2, lm, lambda, h, 777).with_limits(cycles, 0, 0);
    let mut sim = Simulator::new(cfg).unwrap();
    while sim.cycle() < cycles {
        sim.step();
    }
    (sim, cycles)
}

#[test]
fn hot_ring_channel_rates_match_eq9() {
    let (k, lm, lambda, h) = (8u32, 16u32, 1e-3, 0.4);
    let cycles = 400_000u64;
    let (sim, cycles) = measure(k, lm, lambda, h, cycles);
    let topo = *sim.topology();
    let geom = HotSpotGeometry::new(topo, NodeId(0));
    let rates = Rates::new(k, lambda, h);

    for &from in &geom.hot_y_ring().nodes {
        let ch = Channel {
            from,
            dim: DIM_Y,
            direction: Direction::Plus,
        };
        let j = geom.y_channel_distance(ch).unwrap();
        // Flit rate = message rate × Lm (every message contributes Lm
        // flits to every channel it crosses).
        let expected = rates.total_rate_y(j) * lm as f64;
        let observed = sim.channel_flits(ch.id(&topo)) as f64 / cycles as f64;
        let tol = 0.12 * expected.max(0.002);
        assert!(
            (observed - expected).abs() < tol,
            "hot-ring channel j={j}: observed flit rate {observed:.5} vs Eq. 9 {expected:.5}"
        );
    }
}

#[test]
fn x_channel_rates_match_eq8() {
    let (k, lm, lambda, h) = (8u32, 16u32, 1e-3, 0.4);
    let (sim, cycles) = measure(k, lm, lambda, h, 400_000);
    let topo = *sim.topology();
    let geom = HotSpotGeometry::new(topo, NodeId(0));
    let rates = Rates::new(k, lambda, h);

    // Average the observed rate over the k rings at each distance j (the
    // closed form says position within the ring is all that matters).
    for j in 1..=k {
        let mut observed_sum = 0.0;
        let mut count = 0;
        for from in topo.nodes() {
            let ch = Channel {
                from,
                dim: DIM_X,
                direction: Direction::Plus,
            };
            if geom.x_channel_distance(ch) == Some(j) {
                observed_sum += sim.channel_flits(ch.id(&topo)) as f64 / cycles as f64;
                count += 1;
            }
        }
        assert_eq!(count, k, "one channel per ring at distance {j}");
        let observed = observed_sum / count as f64;
        let expected = rates.total_rate_x(j) * lm as f64;
        let tol = 0.10 * expected.max(0.002);
        assert!(
            (observed - expected).abs() < tol,
            "x channels at j={j}: observed {observed:.5} vs Eq. 8 {expected:.5}"
        );
    }
}

#[test]
fn non_hot_y_channels_carry_only_regular_traffic() {
    let (k, lm, lambda, h) = (8u32, 16u32, 1e-3, 0.5);
    let (sim, cycles) = measure(k, lm, lambda, h, 400_000);
    let topo = *sim.topology();
    let rates = Rates::new(k, lambda, h);
    let expected = rates.regular_channel_rate() * lm as f64;

    let mut observed_sum = 0.0;
    let mut count = 0;
    for from in topo.nodes() {
        if topo.coord(from, DIM_X) == 0 {
            continue; // hot column
        }
        let ch = Channel {
            from,
            dim: DIM_Y,
            direction: Direction::Plus,
        };
        observed_sum += sim.channel_flits(ch.id(&topo)) as f64 / cycles as f64;
        count += 1;
    }
    let observed = observed_sum / count as f64;
    assert!(
        (observed - expected).abs() < 0.10 * expected,
        "non-hot y channels: observed {observed:.5} vs Eq. 3 {expected:.5}"
    );
}

#[test]
fn uniform_traffic_loads_all_channels_equally_eq3() {
    let (k, lm, lambda) = (8u32, 16u32, 2e-3);
    let (sim, cycles) = measure(k, lm, lambda, 0.0, 300_000);
    let topo = *sim.topology();
    let expected = lambda * (k as f64 - 1.0) / 2.0 * lm as f64;

    let mut min_rate = f64::INFINITY;
    let mut max_rate: f64 = 0.0;
    for from in topo.nodes() {
        for dim in 0..2 {
            let ch = Channel {
                from,
                dim,
                direction: Direction::Plus,
            };
            let rate = sim.channel_flits(ch.id(&topo)) as f64 / cycles as f64;
            min_rate = min_rate.min(rate);
            max_rate = max_rate.max(rate);
        }
    }
    assert!(
        (min_rate - expected).abs() < 0.15 * expected,
        "min channel rate {min_rate:.5} vs Eq. 3 {expected:.5}"
    );
    assert!(
        (max_rate - expected).abs() < 0.15 * expected,
        "max channel rate {max_rate:.5} vs Eq. 3 {expected:.5}"
    );
}
