//! The paper's 2-D hot-spot latency model (Eqs. 10–37), as the `n = 2`
//! specialization of the generalized k-ary n-cube solver.
//!
//! # Unknowns
//!
//! The paper's seven interdependent families of per-channel mean *service
//! times* (`j` counts the channels left to visit, `1..k-1`; `t` names an
//! x-ring by its paper-distance from the hot node, `1..=k`):
//!
//! | symbol | meaning | equation |
//! |--------|---------|----------|
//! | `S^r_h̄y,j` | regular message crossing a non-hot y-ring | (16) |
//! | `S^r_hy,j` | regular message crossing the hot y-ring | (17) |
//! | `S^r_x,j` | regular message finishing in dimension x | (18) |
//! | `S^r_x→hy,j` | regular message, x then the hot y-ring | (19) |
//! | `S^r_x→h̄y,j` | regular message, x then a non-hot y-ring | (20) |
//! | `S^h_y,j` | hot-spot message starting in the hot y-ring | (23) |
//! | `S^h_x,j,t` | hot-spot message starting in x-ring `t` | (25) |
//!
//! Every recursion has the shape `S_j = 1 + B(channel) + S_{j-1}` — one
//! cycle for the header to cross the channel, the mean blocking delay at
//! that channel, then the service time of the rest of the path — with the
//! terminal `S_1 = 1 + B + Lm` (`Lm` cycles for the message body to drain
//! into the destination once the header lands).  Because the chains are
//! affine given the blocking terms, the whole system reduces to the
//! per-dimension data the generalized solver ([`crate::ncube`]) iterates:
//! the position-averaged blocking `B_nonhot`/`B_{d,hot}` and the
//! cumulative hot-path costs `C_{d,j}`.  [`HotSpotModel`] instantiates
//! that solver at `n = 2` and re-derives the paper's named families from
//! its output, so the 2-D API is *numerically identical* to the
//! generalized model (the cross-validation suite asserts bit equality).
//!
//! # Composition
//!
//! Once the service times converge, the source-queue waits (Eqs. 31–32,
//! M/G/1 at rate `λ/V`) and the virtual-channel multiplexing degrees
//! (Eqs. 33–37) are evaluated on the converged state and combined into
//!
//! ```text
//! Latency = (1-h)·S_r + h·S_h                                   (10)
//! ```
//!
//! with `S_r` the probability mix over the five regular route cases
//! (Eqs. 11–15) and `S_h` the uniform mix over the `N-1` hot-spot source
//! positions (Eqs. 21–24).  One notational fix relative to the paper: we
//! apply each case's probability to the *whole* bracket
//! `(S + Ws)·V̄` rather than to `S` alone, so that the source wait `Ws` is
//! counted exactly once in expectation (the paper's Eqs. 12–14 distribute
//! the probability over `S` but then add an unweighted `Ws`, which cannot
//! be literal — the probabilities would not marginalise).

use crate::ncube::{NCubeConfig, NCubeModel};
use crate::rates::Rates;
use kncube_queueing::fixed_point::FixedPointOptions;
use std::fmt;

/// Utilization cap used to keep intermediate fixed-point iterates finite.
pub(crate) const RHO_CAP: f64 = 1.0 - 1e-7;

/// Which mean service time competing *regular* messages present at an
/// x-ring channel in the hot-message recursion, Eq. (25).
///
/// The OCR of the paper prints `S^r_{hy,k}` (the hot-y-ring entrance
/// service) inside Eq. (25)'s blocking term, while the structurally
/// analogous regular-message recursions (Eqs. 18–20) use the x-channel
/// entrance service `S^r_{x,k}`.  The default follows physical consistency
/// (`XRingService`); the alternative reproduces the OCR reading, and the
/// `ablations` bench quantifies the (small) difference.  In the
/// generalized solver "x" reads as "the message's current dimension" and
/// "hot ring" as "the hot ring of the last dimension".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ModelVariant {
    /// Use `S^r_{x,k}` in Eq. (25)'s blocking term (default).
    #[default]
    XRingService,
    /// Use `S^r_{hy,k}` in Eq. (25)'s blocking term (literal OCR).
    HotRingServiceEq25,
}

/// What a message "costs" a channel while crossing it — the service time
/// competing messages present inside the blocking operator, and the
/// occupancy that drives utilization and virtual-channel multiplexing.
///
/// The OCR of Eqs. (17), (23) and (25) names the remaining-path service
/// times (`S^h_{y,j}` etc.) here, but that reading cannot be what the
/// authors computed: remaining-path services contain the downstream
/// blocking delays, so channel `j+1`'s load would inherit channel `j`'s
/// near-saturation waits and the model would diverge at roughly a third of
/// the load range plotted in Figures 1–2 (tree saturation is over-counted
/// because the distributed VC queue actually spreads that backlog over
/// many channels).  With the *pipelined transfer time* `Lm + 1` — exact
/// for the binding channel, the last hop into the hot node, whose
/// downstream is the ejection sink — the model's saturation points land
/// precisely on the axis ranges of all six subfigures
/// (`λ* ≈ 1/(h·k(k-1)·(Lm+1) + λ_r-share)`).  See DESIGN.md §
/// "Reconstruction notes".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ServiceTimeModel {
    /// Competitor service/occupancy = `Lm + 1` cycles (default; matches
    /// the paper's figures).
    #[default]
    PipelinedTransfer,
    /// Competitor service/occupancy = `1 + S_{j-1}` (header plus the full
    /// remaining-path service).  Over-counts tree saturation; kept as an
    /// ablation (`ABL-HOLD` in DESIGN.md).
    PathOccupancy,
}

/// How the virtual-channel multiplexing degree `V̄` is computed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum MultiplexingModel {
    /// Dally's Markov chain, Eqs. (33)–(35) — the published model.  It
    /// assumes a message can occupy any of the `V` virtual channels, which
    /// over-states multiplexing under Dally–Seitz class restrictions
    /// (hot-spot messages in the hot ring share a single class).
    #[default]
    DallyMarkov,
    /// Class-aware stretch: a flit stream is slowed by the occupancy of
    /// the *other* virtual channels of its physical channel, so
    /// `V̄ = 1 + min(ρ, V-1)`.  Matches the simulator's measured
    /// multiplexing more closely (ablation `ABL-VMUX`).
    ClassAware,
}

/// Configuration of one 2-D model evaluation.
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Radix `k` of the `k × k` unidirectional torus.
    pub k: u32,
    /// Virtual channels per physical channel (`V >= 2` in the paper;
    /// `V = 1` is accepted for the math but is not deadlock-free in the
    /// simulated network).
    pub virtual_channels: u32,
    /// Message length `Lm` in flits.
    pub message_length: u32,
    /// Per-node generation rate `λ` in messages/cycle.
    pub lambda: f64,
    /// Hot-spot fraction `h`.
    pub hot_fraction: f64,
    /// Eq. (25) blocking-term reading.
    pub variant: ModelVariant,
    /// Channel service-time model inside the blocking operator.
    pub service_model: ServiceTimeModel,
    /// Virtual-channel multiplexing model (Eqs. 33-35 or class-aware).
    pub multiplexing: MultiplexingModel,
    /// Fixed-point iteration controls.
    pub options: FixedPointOptions,
}

impl ModelConfig {
    /// The paper's validation configuration: a `k × k` unidirectional torus
    /// with `v` virtual channels, `lm`-flit messages, rate `lambda` and hot
    /// fraction `h` (§4 uses `k = 16`, `lm ∈ {32, 100}`,
    /// `h ∈ {0.2, 0.4, 0.7}`).
    pub fn paper_validation(k: u32, v: u32, lm: u32, lambda: f64, h: f64) -> Self {
        ModelConfig {
            k,
            virtual_channels: v,
            message_length: lm,
            lambda,
            hot_fraction: h,
            variant: ModelVariant::default(),
            service_model: ServiceTimeModel::default(),
            multiplexing: MultiplexingModel::default(),
            options: FixedPointOptions::default(),
        }
    }

    /// The same operating point as a generalized n-cube configuration with
    /// `n = 2`.
    pub fn as_ncube(&self) -> NCubeConfig {
        NCubeConfig {
            k: self.k,
            n: 2,
            virtual_channels: self.virtual_channels,
            message_length: self.message_length,
            lambda: self.lambda,
            hot_fraction: self.hot_fraction,
            variant: self.variant,
            service_model: self.service_model,
            multiplexing: self.multiplexing,
            options: self.options,
        }
    }
}

/// Why the model has no solution at this operating point.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// Invalid configuration.
    BadConfig(String),
    /// A channel or source queue is saturated (`ρ >= 1`): the network has
    /// no steady state at this load and the model diverges — this is how
    /// the saturation point manifests analytically.
    Saturated {
        /// The largest utilization encountered.
        max_utilization: f64,
    },
    /// The iteration failed to converge without an explicit `ρ >= 1`
    /// witness; treated as (just past) saturation in sweeps.
    NotConverged,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadConfig(msg) => write!(f, "bad model configuration: {msg}"),
            ModelError::Saturated { max_utilization } => {
                write!(
                    f,
                    "network saturated (max utilization {max_utilization:.4})"
                )
            }
            ModelError::NotConverged => write!(f, "model iteration did not converge"),
        }
    }
}

impl std::error::Error for ModelError {}

/// The solved model: latency and its decomposition under the paper's 2-D
/// naming.
#[derive(Clone, Debug)]
pub struct ModelOutput {
    /// Eq. (10): the headline mean message latency in cycles.
    pub latency: f64,
    /// `S_r`: mean latency of regular messages (probability-marginalised).
    pub regular_latency: f64,
    /// `S_h`: mean latency of hot-spot messages.
    pub hot_latency: f64,
    /// Eq. (31): mean network latency a regular message sees at any source.
    pub mean_network_latency_regular: f64,
    /// Eq. (32): mean source-queue wait of regular messages.
    pub source_wait_regular: f64,
    /// Eq. (36): average multiplexing degree over hot-y-ring channels.
    pub vbar_hot_ring: f64,
    /// Multiplexing degree at non-hot y channels.
    pub vbar_nonhot_ring: f64,
    /// Eq. (37): average multiplexing degree over x channels.
    pub vbar_x: f64,
    /// The largest channel/source utilization at the solution (a solution
    /// exists only when this is below 1).
    pub max_utilization: f64,
    /// Fixed-point iterations used.
    pub iterations: usize,
    /// Entrance (j-averaged) service times, useful for diagnostics:
    /// `[S^r_h̄y,k, S^r_hy,k, S^r_x,k, S^r_x→hy,k, S^r_x→h̄y,k]`.
    pub entrance_services: [f64; 5],
    /// Converged `S^h_y,j` for `j = 1..k-1` (index 0 is `j = 1`).
    pub hot_ring_services: Vec<f64>,
}

/// The analytical model for one 2-D configuration — a thin specialization
/// of [`NCubeModel`] at `n = 2`.
#[derive(Clone, Debug)]
pub struct HotSpotModel {
    config: ModelConfig,
    inner: NCubeModel,
    rates: Rates,
}

impl HotSpotModel {
    /// Validate the configuration and build the model.
    pub fn new(config: ModelConfig) -> Result<Self, ModelError> {
        let inner = NCubeModel::new(config.as_ncube())?;
        let rates = Rates::new(config.k, config.lambda, config.hot_fraction);
        Ok(HotSpotModel {
            config,
            inner,
            rates,
        })
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The traffic rates (Eqs. 1–9).
    pub fn rates(&self) -> &Rates {
        &self.rates
    }

    /// Solve the model.
    pub fn solve(&self) -> Result<ModelOutput, ModelError> {
        let out = self.inner.solve()?;
        // Re-derive the paper's named entrance services from the
        // generalized per-dimension blocking terms: each family chain is
        // affine, so its j-average is (k/2)(1+B) plus its tail.
        let kf = self.config.k as f64;
        let lm = self.config.message_length as f64;
        let x_leg = (kf / 2.0) * (1.0 + out.blocking_hot[0]);
        let sr_nonhot_k = lm + (kf / 2.0) * (1.0 + out.blocking_nonhot);
        let sr_hot_k = lm + (kf / 2.0) * (1.0 + out.blocking_hot[1]);
        let sr_x_k = lm + x_leg;
        let sr_x_hot_k = x_leg + sr_hot_k;
        let sr_x_nonhot_k = x_leg + sr_nonhot_k;
        Ok(ModelOutput {
            latency: out.latency,
            regular_latency: out.regular_latency,
            hot_latency: out.hot_latency,
            mean_network_latency_regular: out.mean_network_latency_regular,
            source_wait_regular: out.source_wait_regular,
            vbar_hot_ring: out.vbar_hot[1],
            vbar_nonhot_ring: out.vbar_nonhot,
            vbar_x: out.vbar_hot[0],
            max_utilization: out.max_utilization,
            iterations: out.iterations,
            entrance_services: [sr_nonhot_k, sr_hot_k, sr_x_k, sr_x_hot_k, sr_x_nonhot_k],
            hot_ring_services: out.hot_path_services[1].clone(),
        })
    }

    /// Closed-form zero-load latency (λ → 0): no blocking, no queueing,
    /// no multiplexing; every path costs `hops + Lm` cycles plus one cycle
    /// per channel for the header.  Used as a test oracle and as the
    /// y-intercept of the figures.
    pub fn zero_load_latency(&self) -> f64 {
        let k = self.config.k as f64;
        let m = self.config.k - 1;
        let lm = self.config.message_length as f64;
        let h = self.config.hot_fraction;
        let p = crate::probabilities::RegularRouteProbs::new(self.config.k);
        // Mean over j = 1..k-1 of (j + Lm) is (k/2 + Lm).
        let one_dim = k / 2.0 + lm;
        let two_dim = k + lm; // j-average + second-dimension entrance average
        let s_r = (p.y_only_hot_ring + p.y_only_nonhot_ring + p.x_only) * one_dim
            + (p.x_then_hot_ring + p.x_then_nonhot_ring) * two_dim;
        // Hot messages: source (j) in the hot ring costs j + Lm; source
        // (j, t) costs j + t + Lm for t < k and j + Lm for t = k.
        let n_minus_1 = k * k - 1.0;
        let mut s_h = 0.0;
        for j in 1..=m {
            s_h += j as f64 + lm;
        }
        for j in 1..=m {
            for t in 1..=self.config.k {
                let tail = if t == self.config.k { 0.0 } else { t as f64 };
                s_h += j as f64 + tail + lm;
            }
        }
        s_h /= n_minus_1;
        (1.0 - h) * s_r + h * s_h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(k: u32, v: u32, lm: u32, lambda: f64, h: f64) -> Result<ModelOutput, ModelError> {
        HotSpotModel::new(ModelConfig::paper_validation(k, v, lm, lambda, h))
            .unwrap()
            .solve()
    }

    #[test]
    fn rejects_bad_configs() {
        for cfg in [
            ModelConfig::paper_validation(1, 2, 32, 1e-4, 0.2),
            ModelConfig::paper_validation(16, 0, 32, 1e-4, 0.2),
            ModelConfig::paper_validation(16, 2, 0, 1e-4, 0.2),
            ModelConfig::paper_validation(16, 2, 32, 1e-4, 1.5),
            ModelConfig::paper_validation(16, 2, 32, -1.0, 0.2),
            ModelConfig::paper_validation(16, 2, 32, f64::NAN, 0.2),
        ] {
            assert!(HotSpotModel::new(cfg).is_err());
        }
    }

    #[test]
    fn vanishing_load_matches_zero_load_closed_form() {
        for (k, lm, h) in [
            (8u32, 32u32, 0.2f64),
            (16, 32, 0.4),
            (16, 100, 0.7),
            (4, 16, 0.0),
        ] {
            let model =
                HotSpotModel::new(ModelConfig::paper_validation(k, 2, lm, 1e-9, h)).unwrap();
            let out = model.solve().unwrap();
            let expected = model.zero_load_latency();
            assert!(
                (out.latency - expected).abs() / expected < 1e-3,
                "k={k} lm={lm} h={h}: solved {} vs closed form {expected}",
                out.latency
            );
            assert!(out.vbar_hot_ring < 1.0 + 1e-3);
            assert!(out.source_wait_regular < 1e-3);
        }
    }

    #[test]
    fn zero_load_closed_forms_agree_across_the_apis() {
        for (k, lm, h) in [(8u32, 32u32, 0.2f64), (16, 100, 0.7), (5, 16, 0.45)] {
            let cfg = ModelConfig::paper_validation(k, 2, lm, 1e-6, h);
            let wrapper = HotSpotModel::new(cfg).unwrap().zero_load_latency();
            let general = NCubeModel::new(cfg.as_ncube()).unwrap().zero_load_latency();
            assert!(
                (wrapper - general).abs() < 1e-9,
                "k={k}: 2-D {wrapper} vs generalized {general}"
            );
        }
    }

    #[test]
    fn latency_increases_with_load() {
        let mut prev = 0.0;
        for i in 1..=8 {
            let lambda = i as f64 * 5e-5;
            let out = solve(16, 2, 32, lambda, 0.2).unwrap();
            assert!(
                out.latency > prev,
                "λ={lambda}: latency {} not increasing (prev {prev})",
                out.latency
            );
            prev = out.latency;
        }
    }

    #[test]
    fn latency_increases_with_hot_fraction_at_fixed_load() {
        // Hot traffic concentrates load on the hot ring, so at a fixed λ
        // the latency grows with h (until saturation).
        let l20 = solve(16, 2, 32, 1.5e-4, 0.2).unwrap().latency;
        let l40 = solve(16, 2, 32, 1.5e-4, 0.4).unwrap().latency;
        let l70 = solve(16, 2, 32, 1.5e-4, 0.7).unwrap().latency;
        assert!(l20 < l40 && l40 < l70, "{l20} {l40} {l70}");
    }

    #[test]
    fn saturates_at_the_papers_operating_points() {
        // Figure 1 (Lm=32): the h=20% curve saturates near λ ≈ 6e-4.
        assert!(solve(16, 2, 32, 3e-4, 0.2).is_ok());
        assert!(solve(16, 2, 32, 9e-4, 0.2).is_err());
        // h=70% saturates near 2e-4.
        assert!(solve(16, 2, 32, 1e-4, 0.7).is_ok());
        assert!(solve(16, 2, 32, 3e-4, 0.7).is_err());
        // Figure 2 (Lm=100): h=20% saturates near 2e-4.
        assert!(solve(16, 2, 100, 1e-4, 0.2).is_ok());
        assert!(solve(16, 2, 100, 3e-4, 0.2).is_err());
    }

    #[test]
    fn hot_messages_slower_than_regular_under_hot_load() {
        let out = solve(16, 2, 32, 2e-4, 0.4).unwrap();
        assert!(
            out.hot_latency > out.regular_latency,
            "hot {} vs regular {}",
            out.hot_latency,
            out.regular_latency
        );
    }

    #[test]
    fn hot_ring_service_grows_towards_hot_node() {
        // S^h_y,j is cumulative along the path, so it grows with j; the
        // blocking per channel also peaks nearest the hot node (largest
        // rate), which this ordering inherits.
        let out = solve(16, 2, 32, 3e-4, 0.4).unwrap();
        for w in out.hot_ring_services.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn h_zero_hot_and_nonhot_rings_agree() {
        // With no hot traffic the hot ring is statistically identical to
        // every other ring.
        let out = solve(16, 2, 32, 4e-4, 0.0).unwrap();
        let [nonhot, hot, ..] = out.entrance_services;
        assert!(
            (nonhot - hot).abs() < 1e-6,
            "h=0 asymmetry: {nonhot} vs {hot}"
        );
        assert!((out.vbar_hot_ring - out.vbar_nonhot_ring).abs() < 1e-6);
    }

    #[test]
    fn more_virtual_channels_multiplex_more() {
        let v2 = solve(16, 2, 32, 4e-4, 0.2).unwrap();
        let v4 = solve(16, 4, 32, 4e-4, 0.2).unwrap();
        assert!(v4.vbar_x >= v2.vbar_x);
        assert!(v4.vbar_hot_ring >= v2.vbar_hot_ring);
    }

    #[test]
    fn variant_changes_little_below_saturation() {
        let base = ModelConfig::paper_validation(16, 2, 32, 2e-4, 0.4);
        let a = HotSpotModel::new(base).unwrap().solve().unwrap();
        let b = HotSpotModel::new(ModelConfig {
            variant: ModelVariant::HotRingServiceEq25,
            ..base
        })
        .unwrap()
        .solve()
        .unwrap();
        let rel = (a.latency - b.latency).abs() / a.latency;
        assert!(rel < 0.1, "variants diverge by {rel}");
    }

    #[test]
    fn longer_messages_cost_proportionally_at_zero_load() {
        let short = solve(16, 2, 32, 1e-9, 0.2).unwrap().latency;
        let long = solve(16, 2, 100, 1e-9, 0.2).unwrap().latency;
        assert!(
            (long - short - 68.0).abs() < 0.5,
            "short {short} long {long}"
        );
    }
}
