//! The fixed-point solution of the hot-spot latency model (Eqs. 10–37).
//!
//! # Unknowns
//!
//! The model's interdependent unknowns are seven families of per-channel
//! mean *service times* (`j` counts the channels left to visit, `1..k-1`;
//! `t` names an x-ring by its paper-distance from the hot node, `1..=k`):
//!
//! | symbol | meaning | equation |
//! |--------|---------|----------|
//! | `S^r_h̄y,j` | regular message crossing a non-hot y-ring | (16) |
//! | `S^r_hy,j` | regular message crossing the hot y-ring | (17) |
//! | `S^r_x,j` | regular message finishing in dimension x | (18) |
//! | `S^r_x→hy,j` | regular message, x then the hot y-ring | (19) |
//! | `S^r_x→h̄y,j` | regular message, x then a non-hot y-ring | (20) |
//! | `S^h_y,j` | hot-spot message starting in the hot y-ring | (23) |
//! | `S^h_x,j,t` | hot-spot message starting in x-ring `t` | (25) |
//!
//! Every recursion has the shape `S_j = 1 + B(channel) + S_{j-1}` — one
//! cycle for the header to cross the channel, the mean blocking delay at
//! that channel, then the service time of the rest of the path — with the
//! terminal `S_1 = 1 + B + Lm` (`Lm` cycles for the message body to drain
//! into the destination once the header lands).  The `k`-indexed *entrance*
//! quantities (`S^r_hy,k` etc.) are the averages over `j = 1..k-1`, which
//! double as the expected service time of a randomly-encountered competing
//! message inside the blocking operator.
//!
//! # Composition
//!
//! Once the service times converge, the source-queue waits (Eqs. 31–32,
//! M/G/1 at rate `λ/V`) and the virtual-channel multiplexing degrees
//! (Eqs. 33–37) are evaluated on the converged state and combined into
//!
//! ```text
//! Latency = (1-h)·S_r + h·S_h                                   (10)
//! ```
//!
//! with `S_r` the probability mix over the five regular route cases
//! (Eqs. 11–15) and `S_h` the uniform mix over the `N-1` hot-spot source
//! positions (Eqs. 21–24).  One notational fix relative to the paper: we
//! apply each case's probability to the *whole* bracket
//! `(S + Ws)·V̄` rather than to `S` alone, so that the source wait `Ws` is
//! counted exactly once in expectation (the paper's Eqs. 12–14 distribute
//! the probability over `S` but then add an unweighted `Ws`, which cannot
//! be literal — the probabilities would not marginalise).

use crate::probabilities::RegularRouteProbs;
use crate::rates::Rates;
use kncube_queueing::blocking::{blocking_delay, channel_utilization, TrafficClass};
use kncube_queueing::fixed_point::{self, FixedPointError, FixedPointOptions};
use kncube_queueing::mg1;
use kncube_queueing::vc_multiplex::multiplexing_factor;
use std::fmt;

/// Utilization cap used to keep intermediate fixed-point iterates finite.
const RHO_CAP: f64 = 1.0 - 1e-7;

/// Which mean service time competing *regular* messages present at an
/// x-ring channel in the hot-message recursion, Eq. (25).
///
/// The OCR of the paper prints `S^r_{hy,k}` (the hot-y-ring entrance
/// service) inside Eq. (25)'s blocking term, while the structurally
/// analogous regular-message recursions (Eqs. 18–20) use the x-channel
/// entrance service `S^r_{x,k}`.  The default follows physical consistency
/// (`XRingService`); the alternative reproduces the OCR reading, and the
/// `ablations` bench quantifies the (small) difference.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ModelVariant {
    /// Use `S^r_{x,k}` in Eq. (25)'s blocking term (default).
    #[default]
    XRingService,
    /// Use `S^r_{hy,k}` in Eq. (25)'s blocking term (literal OCR).
    HotRingServiceEq25,
}

/// What a message "costs" a channel while crossing it — the service time
/// competing messages present inside the blocking operator, and the
/// occupancy that drives utilization and virtual-channel multiplexing.
///
/// The OCR of Eqs. (17), (23) and (25) names the remaining-path service
/// times (`S^h_{y,j}` etc.) here, but that reading cannot be what the
/// authors computed: remaining-path services contain the downstream
/// blocking delays, so channel `j+1`'s load would inherit channel `j`'s
/// near-saturation waits and the model would diverge at roughly a third of
/// the load range plotted in Figures 1–2 (tree saturation is over-counted
/// because the distributed VC queue actually spreads that backlog over
/// many channels).  With the *pipelined transfer time* `Lm + 1` — exact
/// for the binding channel, the last hop into the hot node, whose
/// downstream is the ejection sink — the model's saturation points land
/// precisely on the axis ranges of all six subfigures
/// (`λ* ≈ 1/(h·k(k-1)·(Lm+1) + λ_r-share)`).  See DESIGN.md §
/// "Reconstruction notes".
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ServiceTimeModel {
    /// Competitor service/occupancy = `Lm + 1` cycles (default; matches
    /// the paper's figures).
    #[default]
    PipelinedTransfer,
    /// Competitor service/occupancy = `1 + S_{j-1}` (header plus the full
    /// remaining-path service).  Over-counts tree saturation; kept as an
    /// ablation (`ABL-HOLD` in DESIGN.md).
    PathOccupancy,
}

/// How the virtual-channel multiplexing degree `V̄` is computed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MultiplexingModel {
    /// Dally's Markov chain, Eqs. (33)–(35) — the published model.  It
    /// assumes a message can occupy any of the `V` virtual channels, which
    /// over-states multiplexing under Dally–Seitz class restrictions
    /// (hot-spot messages in the hot ring share a single class).
    #[default]
    DallyMarkov,
    /// Class-aware stretch: a flit stream is slowed by the occupancy of
    /// the *other* virtual channels of its physical channel, so
    /// `V̄ = 1 + min(ρ, V-1)`.  Matches the simulator's measured
    /// multiplexing more closely (ablation `ABL-VMUX`).
    ClassAware,
}

/// Configuration of one model evaluation.
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Radix `k` of the `k × k` unidirectional torus.
    pub k: u32,
    /// Virtual channels per physical channel (`V >= 2` in the paper;
    /// `V = 1` is accepted for the math but is not deadlock-free in the
    /// simulated network).
    pub virtual_channels: u32,
    /// Message length `Lm` in flits.
    pub message_length: u32,
    /// Per-node generation rate `λ` in messages/cycle.
    pub lambda: f64,
    /// Hot-spot fraction `h`.
    pub hot_fraction: f64,
    /// Eq. (25) blocking-term reading.
    pub variant: ModelVariant,
    /// Channel service-time model inside the blocking operator.
    pub service_model: ServiceTimeModel,
    /// Virtual-channel multiplexing model (Eqs. 33-35 or class-aware).
    pub multiplexing: MultiplexingModel,
    /// Fixed-point iteration controls.
    pub options: FixedPointOptions,
}

impl ModelConfig {
    /// The paper's validation configuration: a `k × k` unidirectional torus
    /// with `v` virtual channels, `lm`-flit messages, rate `lambda` and hot
    /// fraction `h` (§4 uses `k = 16`, `lm ∈ {32, 100}`,
    /// `h ∈ {0.2, 0.4, 0.7}`).
    pub fn paper_validation(k: u32, v: u32, lm: u32, lambda: f64, h: f64) -> Self {
        ModelConfig {
            k,
            virtual_channels: v,
            message_length: lm,
            lambda,
            hot_fraction: h,
            variant: ModelVariant::default(),
            service_model: ServiceTimeModel::default(),
            multiplexing: MultiplexingModel::default(),
            options: FixedPointOptions::default(),
        }
    }
}

/// Why the model has no solution at this operating point.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// Invalid configuration.
    BadConfig(String),
    /// A channel or source queue is saturated (`ρ >= 1`): the network has
    /// no steady state at this load and the model diverges — this is how
    /// the saturation point manifests analytically.
    Saturated {
        /// The largest utilization encountered.
        max_utilization: f64,
    },
    /// The iteration failed to converge without an explicit `ρ >= 1`
    /// witness; treated as (just past) saturation in sweeps.
    NotConverged,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadConfig(msg) => write!(f, "bad model configuration: {msg}"),
            ModelError::Saturated { max_utilization } => {
                write!(
                    f,
                    "network saturated (max utilization {max_utilization:.4})"
                )
            }
            ModelError::NotConverged => write!(f, "model iteration did not converge"),
        }
    }
}

impl std::error::Error for ModelError {}

/// The solved model: latency and its decomposition.
#[derive(Clone, Debug)]
pub struct ModelOutput {
    /// Eq. (10): the headline mean message latency in cycles.
    pub latency: f64,
    /// `S_r`: mean latency of regular messages (probability-marginalised).
    pub regular_latency: f64,
    /// `S_h`: mean latency of hot-spot messages.
    pub hot_latency: f64,
    /// Eq. (31): mean network latency a regular message sees at any source.
    pub mean_network_latency_regular: f64,
    /// Eq. (32): mean source-queue wait of regular messages.
    pub source_wait_regular: f64,
    /// Eq. (36): average multiplexing degree over hot-y-ring channels.
    pub vbar_hot_ring: f64,
    /// Multiplexing degree at non-hot y channels.
    pub vbar_nonhot_ring: f64,
    /// Eq. (37): average multiplexing degree over x channels.
    pub vbar_x: f64,
    /// The largest channel/source utilization at the solution (a solution
    /// exists only when this is below 1).
    pub max_utilization: f64,
    /// Fixed-point iterations used.
    pub iterations: usize,
    /// Entrance (j-averaged) service times, useful for diagnostics:
    /// `[S^r_h̄y,k, S^r_hy,k, S^r_x,k, S^r_x→hy,k, S^r_x→h̄y,k]`.
    pub entrance_services: [f64; 5],
    /// Converged `S^h_y,j` for `j = 1..k-1` (index 0 is `j = 1`).
    pub hot_ring_services: Vec<f64>,
}

/// The analytical model for one configuration.
#[derive(Clone, Debug)]
pub struct HotSpotModel {
    config: ModelConfig,
    rates: Rates,
    probs: RegularRouteProbs,
}

/// State-vector layout: seven families flattened into one `Vec<f64>`.
#[derive(Clone, Copy)]
struct Layout {
    /// `m = k - 1`: entries per `j`-indexed family.
    m: usize,
    /// radix as usize.
    k: usize,
}

impl Layout {
    fn new(k: u32) -> Self {
        Layout {
            m: (k - 1) as usize,
            k: k as usize,
        }
    }
    fn len(&self) -> usize {
        6 * self.m + self.m * self.k
    }
    /// `S^r_h̄y,j`, `j ∈ 1..=m`.
    fn sr_nonhot(&self, j: usize) -> usize {
        j - 1
    }
    /// `S^r_hy,j`.
    fn sr_hot(&self, j: usize) -> usize {
        self.m + j - 1
    }
    /// `S^r_x,j`.
    fn sr_x(&self, j: usize) -> usize {
        2 * self.m + j - 1
    }
    /// `S^r_x→hy,j`.
    fn sr_x_hot(&self, j: usize) -> usize {
        3 * self.m + j - 1
    }
    /// `S^r_x→h̄y,j`.
    fn sr_x_nonhot(&self, j: usize) -> usize {
        4 * self.m + j - 1
    }
    /// `S^h_y,j`.
    fn sh_y(&self, j: usize) -> usize {
        5 * self.m + j - 1
    }
    /// `S^h_x,j,t`, `t ∈ 1..=k`.
    fn sh_x(&self, j: usize, t: usize) -> usize {
        6 * self.m + (t - 1) * self.m + j - 1
    }
}

fn average(slice: &[f64]) -> f64 {
    slice.iter().sum::<f64>() / slice.len() as f64
}

/// Entrance-averaged channel *holding* times of the three regular-message
/// families (see [`HotSpotModel::holdings`] for the latency/holding
/// distinction).
#[derive(Clone, Copy, Debug)]
struct Holdings {
    /// Regular messages at non-hot y channels.
    reg_nonhot: f64,
    /// Regular messages at hot-y-ring channels.
    reg_hot: f64,
    /// Regular messages at x channels.
    reg_x: f64,
}

impl HotSpotModel {
    /// Validate the configuration and build the model.
    pub fn new(config: ModelConfig) -> Result<Self, ModelError> {
        if config.k < 2 {
            return Err(ModelError::BadConfig("radix k must be >= 2".into()));
        }
        if config.virtual_channels < 1 {
            return Err(ModelError::BadConfig(
                "need at least one virtual channel".into(),
            ));
        }
        if config.message_length < 1 {
            return Err(ModelError::BadConfig(
                "message length must be >= 1 flit".into(),
            ));
        }
        if !(0.0..=1.0).contains(&config.hot_fraction) {
            return Err(ModelError::BadConfig("h must be in [0, 1]".into()));
        }
        if !config.lambda.is_finite() || config.lambda < 0.0 {
            return Err(ModelError::BadConfig("λ must be finite and >= 0".into()));
        }
        let rates = Rates::new(config.k, config.lambda, config.hot_fraction);
        let probs = RegularRouteProbs::new(config.k);
        Ok(HotSpotModel {
            config,
            rates,
            probs,
        })
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The traffic rates (Eqs. 1–9).
    pub fn rates(&self) -> &Rates {
        &self.rates
    }

    /// Zero-load initial guess: service time = remaining hops + `Lm`.
    fn initial_state(&self, layout: Layout) -> Vec<f64> {
        let lm = self.config.message_length as f64;
        let mut state = vec![0.0; layout.len()];
        for j in 1..=layout.m {
            let jf = j as f64;
            state[layout.sr_nonhot(j)] = jf + lm;
            state[layout.sr_hot(j)] = jf + lm;
            state[layout.sr_x(j)] = jf + lm;
            // After x, an average of (k-1)/2-ish more hops follow; a rough
            // guess is fine — the iteration refines it.
            state[layout.sr_x_hot(j)] = jf + lm + layout.k as f64 / 2.0;
            state[layout.sr_x_nonhot(j)] = jf + lm + layout.k as f64 / 2.0;
            state[layout.sh_y(j)] = jf + lm;
            for t in 1..=layout.k {
                let tail = if t == layout.k { 0.0 } else { t as f64 };
                state[layout.sh_x(j, t)] = jf + tail + lm;
            }
        }
        state
    }

    /// Channel *holding* times derived from the latency state.
    ///
    /// A message holds a channel from the cycle its header crosses it until
    /// its tail does — that is `1 + S_{j-1}` (header transfer plus the
    /// service of the remaining path), **excluding** the message's own wait
    /// `B_j` to acquire the channel: while waiting it does not occupy the
    /// channel.  Feeding the full remaining *latency* `S_j` (which contains
    /// `B_j`) back as the channel's service time — a literal reading the
    /// OCR of Eqs. (17)/(23) permits — makes the blocking self-amplifying
    /// and saturates the model an order of magnitude below the paper's
    /// figure axes; with holding times the saturation points land exactly
    /// on the axis ranges of Figures 1–2 (see DESIGN.md).  Holding times
    /// are also what utilization and the multiplexing load (Eqs. 27, 33)
    /// physically mean.
    fn holdings(&self, layout: Layout, state: &[f64]) -> Holdings {
        let m = layout.m;
        let lm = self.config.message_length as f64;
        match self.config.service_model {
            ServiceTimeModel::PipelinedTransfer => {
                let t = lm + 1.0;
                Holdings {
                    reg_nonhot: t,
                    reg_hot: t,
                    reg_x: t,
                }
            }
            ServiceTimeModel::PathOccupancy => {
                // Average over entrance positions j = 1..m of (1 + S_{j-1}),
                // with S_0 = Lm: the expected occupancy by a randomly-
                // encountered competitor of the family.
                let family_hold = |base: usize| -> f64 {
                    let chain: f64 = (1..m).map(|j| state[base + j - 1]).sum();
                    1.0 + (lm + chain) / m as f64
                };
                Holdings {
                    reg_nonhot: family_hold(layout.sr_nonhot(1)),
                    reg_hot: family_hold(layout.sr_hot(1)),
                    reg_x: family_hold(layout.sr_x(1)),
                }
            }
        }
    }

    /// Holding time of the hot-ring channel `j` by a hot-spot message.
    fn hot_hold_y(&self, layout: Layout, state: &[f64], j: usize) -> f64 {
        let lm = self.config.message_length as f64;
        match self.config.service_model {
            ServiceTimeModel::PipelinedTransfer => lm + 1.0,
            ServiceTimeModel::PathOccupancy => {
                1.0 + if j == 1 {
                    lm
                } else {
                    state[layout.sh_y(j - 1)]
                }
            }
        }
    }

    /// Holding time of the x channel `(j, t)` by a hot-spot message.
    fn hot_hold_x(&self, layout: Layout, state: &[f64], j: usize, t: usize) -> f64 {
        let lm = self.config.message_length as f64;
        match self.config.service_model {
            ServiceTimeModel::PipelinedTransfer => lm + 1.0,
            ServiceTimeModel::PathOccupancy => {
                1.0 + if j == 1 {
                    if t == layout.k {
                        lm
                    } else {
                        state[layout.sh_y(t)]
                    }
                } else {
                    state[layout.sh_x(j - 1, t)]
                }
            }
        }
    }

    /// One application of the recursions (16)–(20), (23), (25).
    fn update(&self, layout: Layout, state: &[f64], next: &mut [f64]) {
        let k = layout.k;
        let m = layout.m;
        let lm = self.config.message_length as f64;
        let lr = self.rates.regular_channel_rate();
        let holds = self.holdings(layout, state);

        // Entrance (j-averaged) latencies, the tails of Eqs. (19)-(20).
        let sr_nonhot_k = average(&state[0..m]);
        let sr_hot_k = average(&state[m..2 * m]);

        // Eq. (16): blocking at a non-hot y channel (regular traffic only).
        let b_nonhot = blocking_delay(
            TrafficClass::new(lr, holds.reg_nonhot),
            TrafficClass::none(),
            lm,
            RHO_CAP,
        );

        // Eq. (17): blocking averaged over the k positions of the hot
        // y-ring (a competing channel is l hops from the hot node with
        // probability 1/k; position l = k carries no hot traffic).
        let b_hotring = (1..=k)
            .map(|l| {
                let hot = if l < k {
                    TrafficClass::new(
                        self.rates.hot_rate_y(l as u32),
                        self.hot_hold_y(layout, state, l),
                    )
                } else {
                    TrafficClass::none()
                };
                blocking_delay(TrafficClass::new(lr, holds.reg_hot), hot, lm, RHO_CAP)
            })
            .sum::<f64>()
            / k as f64;

        // Eqs. (18)-(20): blocking averaged over all k² x-channel positions
        // (ring t, in-ring position l).
        let b_x = {
            let mut sum = 0.0;
            for t in 1..=k {
                for l in 1..=k {
                    let hot = if l < k {
                        TrafficClass::new(
                            self.rates.hot_rate_x(l as u32),
                            self.hot_hold_x(layout, state, l, t),
                        )
                    } else {
                        TrafficClass::none()
                    };
                    sum += blocking_delay(TrafficClass::new(lr, holds.reg_x), hot, lm, RHO_CAP);
                }
            }
            sum / (k * k) as f64
        };

        // The chains below are evaluated Gauss-Seidel style: `S_j` uses the
        // *freshly computed* `S_{j-1}` of this sweep, not last iteration's.
        // Given the blocking terms, each chain is an exact linear recursion,
        // so only the scalar feedback loops (entrance averages ↔ blocking,
        // self-referential hot services) iterate — and those, starting from
        // the zero-load state, form a monotone-increasing sequence bounded
        // by the first (physical) fixed point whenever one exists.
        for j in 1..=m {
            // Eq. (16).
            next[layout.sr_nonhot(j)] = 1.0
                + b_nonhot
                + if j == 1 {
                    lm
                } else {
                    next[layout.sr_nonhot(j - 1)]
                };
            // Eq. (17).
            next[layout.sr_hot(j)] = 1.0
                + b_hotring
                + if j == 1 {
                    lm
                } else {
                    next[layout.sr_hot(j - 1)]
                };
            // Eq. (18).
            next[layout.sr_x(j)] = 1.0 + b_x + if j == 1 { lm } else { next[layout.sr_x(j - 1)] };
            // Eq. (19): after the last x channel the message enters the hot
            // y-ring and sees its entrance service time.
            next[layout.sr_x_hot(j)] = 1.0
                + b_x
                + if j == 1 {
                    sr_hot_k
                } else {
                    next[layout.sr_x_hot(j - 1)]
                };
            // Eq. (20): same, non-hot ring.
            next[layout.sr_x_nonhot(j)] = 1.0
                + b_x
                + if j == 1 {
                    sr_nonhot_k
                } else {
                    next[layout.sr_x_nonhot(j - 1)]
                };
            // Eq. (23): hot message in the hot y-ring competes with regular
            // traffic (holding of the regular hot-ring family) and the hot
            // traffic at its own channel position.
            next[layout.sh_y(j)] =
                1.0 + blocking_delay(
                    TrafficClass::new(lr, holds.reg_hot),
                    TrafficClass::new(
                        self.rates.hot_rate_y(j as u32),
                        self.hot_hold_y(layout, state, j),
                    ),
                    lm,
                    RHO_CAP,
                ) + if j == 1 { lm } else { next[layout.sh_y(j - 1)] };
        }
        // Eq. (25), after the complete `S^h_y` chain is available (a hot
        // message leaving dimension x enters the hot ring at position `t`).
        let reg_service_x = match self.config.variant {
            ModelVariant::XRingService => holds.reg_x,
            ModelVariant::HotRingServiceEq25 => holds.reg_hot,
        };
        for t in 1..=k {
            for j in 1..=m {
                let b = blocking_delay(
                    TrafficClass::new(lr, reg_service_x),
                    TrafficClass::new(
                        self.rates.hot_rate_x(j as u32),
                        self.hot_hold_x(layout, state, j, t),
                    ),
                    lm,
                    RHO_CAP,
                );
                let tail = if j == 1 {
                    if t == k {
                        // Last x channel of the hot node's own x-ring: the
                        // message drains into the hot node.
                        lm
                    } else {
                        // Enter the hot y-ring with t hops to go.
                        next[layout.sh_y(t)]
                    }
                } else {
                    next[layout.sh_x(j - 1, t)]
                };
                next[layout.sh_x(j, t)] = 1.0 + b + tail;
            }
        }
    }

    /// Solve the model.
    pub fn solve(&self) -> Result<ModelOutput, ModelError> {
        let layout = Layout::new(self.config.k);
        let initial = self.initial_state(layout);
        let report = fixed_point::solve(initial, self.config.options, |state, next| {
            self.update(layout, state, next)
        })
        .map_err(|e| match e {
            FixedPointError::NonFinite | FixedPointError::NotConverged => ModelError::NotConverged,
        })?;
        self.compose(layout, &report.state, report.iterations)
    }

    /// Eqs. (10)–(15), (21)–(24), (31)–(37) evaluated on the converged
    /// service times.
    #[allow(clippy::needless_range_loop)] // j/t are the paper's indices
    fn compose(
        &self,
        layout: Layout,
        state: &[f64],
        iterations: usize,
    ) -> Result<ModelOutput, ModelError> {
        let k = layout.k;
        let m = layout.m;
        let kf = k as f64;
        let n_nodes = kf * kf;
        let lm = self.config.message_length as f64;
        let v = self.config.virtual_channels;
        let h = self.config.hot_fraction;
        let lambda = self.config.lambda;
        let lr = self.rates.regular_channel_rate();

        let sr_nonhot_k = average(&state[0..m]);
        let sr_hot_k = average(&state[m..2 * m]);
        let sr_x_k = average(&state[2 * m..3 * m]);
        let sr_x_hot_k = average(&state[3 * m..4 * m]);
        let sr_x_nonhot_k = average(&state[4 * m..5 * m]);
        let holds = self.holdings(layout, state);

        // --- Saturation diagnosis: every physical channel must be stable.
        // A channel's load is its message rate times the *holding* time.
        let mut max_util: f64 = 0.0;
        max_util = max_util.max(channel_utilization(
            TrafficClass::new(lr, holds.reg_nonhot),
            TrafficClass::none(),
        ));
        for j in 1..=k {
            let hot = if j < k {
                TrafficClass::new(
                    self.rates.hot_rate_y(j as u32),
                    self.hot_hold_y(layout, state, j),
                )
            } else {
                TrafficClass::none()
            };
            max_util = max_util.max(channel_utilization(
                TrafficClass::new(lr, holds.reg_hot),
                hot,
            ));
        }
        for t in 1..=k {
            for j in 1..=k {
                let hot = if j < k {
                    TrafficClass::new(
                        self.rates.hot_rate_x(j as u32),
                        self.hot_hold_x(layout, state, j, t),
                    )
                } else {
                    TrafficClass::none()
                };
                max_util =
                    max_util.max(channel_utilization(TrafficClass::new(lr, holds.reg_x), hot));
            }
        }
        if max_util >= 1.0 {
            return Err(ModelError::Saturated {
                max_utilization: max_util,
            });
        }

        // --- Eq. (31): network latency a regular message expects at any
        // source: the probability mix of the five route cases.
        let p = &self.probs;
        let s_r_network = p.y_only_hot_ring * sr_hot_k
            + p.y_only_nonhot_ring * sr_nonhot_k
            + p.x_only * sr_x_k
            + p.x_then_hot_ring * sr_x_hot_k
            + p.x_then_nonhot_ring * sr_x_nonhot_k;

        // --- Eq. (32): source-queue waits, M/G/1 at rate λ/V.  The service
        // a node's queue offers is the mean network latency of the mix of
        // messages the node generates.
        let vc_rate = lambda / v as f64;
        let wait = |service: f64| -> Result<f64, ModelError> {
            mg1::waiting_time(vc_rate, service, lm).map_err(|sat| ModelError::Saturated {
                max_utilization: sat.rho,
            })
        };

        // Hot node: generates only regular traffic.
        let mut ws_r_sum = wait(s_r_network)?;
        // Hot-ring sources, one per j.
        let mut ws_hy = vec![0.0; m + 1];
        for j in 1..=m {
            let service = (1.0 - h) * s_r_network + h * state[layout.sh_y(j)];
            let w = wait(service)?;
            ws_hy[j] = w;
            ws_r_sum += w;
        }
        // All other sources, one per (j, t).
        let mut ws_x = vec![vec![0.0; k + 1]; m + 1];
        for j in 1..=m {
            for t in 1..=k {
                let service = (1.0 - h) * s_r_network + h * state[layout.sh_x(j, t)];
                let w = wait(service)?;
                ws_x[j][t] = w;
                ws_r_sum += w;
            }
        }
        let ws_r = ws_r_sum / n_nodes;

        // --- Eqs. (33)-(37): multiplexing degrees per channel family; the
        // occupancy the Markov chain tracks is rate × holding time.
        let vbar_of = |rho: f64| -> f64 {
            match self.config.multiplexing {
                MultiplexingModel::DallyMarkov => multiplexing_factor(rho, v),
                MultiplexingModel::ClassAware => 1.0 + rho.clamp(0.0, (v - 1).max(1) as f64),
            }
        };
        let vbar_nonhot = vbar_of(lr * holds.reg_nonhot);
        let mut vbar_hy = vec![1.0; k + 1];
        for j in 1..=k {
            let rho = if j < k {
                lr * holds.reg_hot
                    + self.rates.hot_rate_y(j as u32) * self.hot_hold_y(layout, state, j)
            } else {
                lr * holds.reg_hot
            };
            vbar_hy[j] = vbar_of(rho);
        }
        let vbar_hy_avg = vbar_hy[1..=k].iter().sum::<f64>() / kf;
        let mut vbar_x = vec![vec![1.0; k + 1]; k + 1];
        for j in 1..=k {
            for t in 1..=k {
                let rho = if j < k {
                    lr * holds.reg_x
                        + self.rates.hot_rate_x(j as u32) * self.hot_hold_x(layout, state, j, t)
                } else {
                    lr * holds.reg_x
                };
                vbar_x[j][t] = vbar_of(rho);
            }
        }
        let vbar_x_avg = vbar_x[1..=k]
            .iter()
            .flat_map(|row| &row[1..=k])
            .sum::<f64>()
            / (kf * kf);

        // --- Eqs. (11)-(15): regular-message latency, probability mix with
        // the source wait counted once per case.
        let s_r = p.y_only_hot_ring * (sr_hot_k + ws_r) * vbar_hy_avg
            + p.y_only_nonhot_ring * (sr_nonhot_k + ws_r) * vbar_nonhot
            + p.x_only * (sr_x_k + ws_r) * vbar_x_avg
            + p.x_then_hot_ring * (sr_x_hot_k + ws_r) * vbar_x_avg
            + p.x_then_nonhot_ring * (sr_x_nonhot_k + ws_r) * vbar_x_avg;

        // --- Eqs. (21)-(24): hot-message latency, uniform over the N-1
        // sources; each source's latency is scaled by the multiplexing
        // degree at its entry channel.
        let mut s_h_sum = 0.0;
        for j in 1..=m {
            s_h_sum += (state[layout.sh_y(j)] + ws_hy[j]) * vbar_hy[j];
        }
        for j in 1..=m {
            for t in 1..=k {
                s_h_sum += (state[layout.sh_x(j, t)] + ws_x[j][t]) * vbar_x[j][t];
            }
        }
        let s_h = s_h_sum / (n_nodes - 1.0);

        // --- Eq. (10).
        let latency = (1.0 - h) * s_r + h * s_h;

        Ok(ModelOutput {
            latency,
            regular_latency: s_r,
            hot_latency: s_h,
            mean_network_latency_regular: s_r_network,
            source_wait_regular: ws_r,
            vbar_hot_ring: vbar_hy_avg,
            vbar_nonhot_ring: vbar_nonhot,
            vbar_x: vbar_x_avg,
            max_utilization: max_util,
            iterations,
            entrance_services: [sr_nonhot_k, sr_hot_k, sr_x_k, sr_x_hot_k, sr_x_nonhot_k],
            hot_ring_services: (1..=m).map(|j| state[layout.sh_y(j)]).collect(),
        })
    }

    /// Closed-form zero-load latency (λ → 0): no blocking, no queueing,
    /// no multiplexing; every path costs `hops + Lm` cycles plus one cycle
    /// per channel for the header.  Used as a test oracle and as the
    /// y-intercept of the figures.
    pub fn zero_load_latency(&self) -> f64 {
        let k = self.config.k as f64;
        let m = self.config.k - 1;
        let lm = self.config.message_length as f64;
        let h = self.config.hot_fraction;
        let p = &self.probs;
        // Mean over j = 1..k-1 of (j + Lm) is (k/2 + Lm).
        let one_dim = k / 2.0 + lm;
        let two_dim = k + lm; // j-average + second-dimension entrance average
        let s_r = (p.y_only_hot_ring + p.y_only_nonhot_ring + p.x_only) * one_dim
            + (p.x_then_hot_ring + p.x_then_nonhot_ring) * two_dim;
        // Hot messages: source (j) in the hot ring costs j + Lm; source
        // (j, t) costs j + t + Lm for t < k and j + Lm for t = k.
        let n_minus_1 = k * k - 1.0;
        let mut s_h = 0.0;
        for j in 1..=m {
            s_h += j as f64 + lm;
        }
        for j in 1..=m {
            for t in 1..=self.config.k {
                let tail = if t == self.config.k { 0.0 } else { t as f64 };
                s_h += j as f64 + tail + lm;
            }
        }
        s_h /= n_minus_1;
        (1.0 - h) * s_r + h * s_h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(k: u32, v: u32, lm: u32, lambda: f64, h: f64) -> Result<ModelOutput, ModelError> {
        HotSpotModel::new(ModelConfig::paper_validation(k, v, lm, lambda, h))
            .unwrap()
            .solve()
    }

    #[test]
    fn rejects_bad_configs() {
        for cfg in [
            ModelConfig::paper_validation(1, 2, 32, 1e-4, 0.2),
            ModelConfig::paper_validation(16, 0, 32, 1e-4, 0.2),
            ModelConfig::paper_validation(16, 2, 0, 1e-4, 0.2),
            ModelConfig::paper_validation(16, 2, 32, 1e-4, 1.5),
            ModelConfig::paper_validation(16, 2, 32, -1.0, 0.2),
            ModelConfig::paper_validation(16, 2, 32, f64::NAN, 0.2),
        ] {
            assert!(HotSpotModel::new(cfg).is_err());
        }
    }

    #[test]
    fn vanishing_load_matches_zero_load_closed_form() {
        for (k, lm, h) in [
            (8u32, 32u32, 0.2f64),
            (16, 32, 0.4),
            (16, 100, 0.7),
            (4, 16, 0.0),
        ] {
            let model =
                HotSpotModel::new(ModelConfig::paper_validation(k, 2, lm, 1e-9, h)).unwrap();
            let out = model.solve().unwrap();
            let expected = model.zero_load_latency();
            assert!(
                (out.latency - expected).abs() / expected < 1e-3,
                "k={k} lm={lm} h={h}: solved {} vs closed form {expected}",
                out.latency
            );
            assert!(out.vbar_hot_ring < 1.0 + 1e-3);
            assert!(out.source_wait_regular < 1e-3);
        }
    }

    #[test]
    fn latency_increases_with_load() {
        let mut prev = 0.0;
        for i in 1..=8 {
            let lambda = i as f64 * 5e-5;
            let out = solve(16, 2, 32, lambda, 0.2).unwrap();
            assert!(
                out.latency > prev,
                "λ={lambda}: latency {} not increasing (prev {prev})",
                out.latency
            );
            prev = out.latency;
        }
    }

    #[test]
    fn latency_increases_with_hot_fraction_at_fixed_load() {
        // Hot traffic concentrates load on the hot ring, so at a fixed λ
        // the latency grows with h (until saturation).
        let l20 = solve(16, 2, 32, 1.5e-4, 0.2).unwrap().latency;
        let l40 = solve(16, 2, 32, 1.5e-4, 0.4).unwrap().latency;
        let l70 = solve(16, 2, 32, 1.5e-4, 0.7).unwrap().latency;
        assert!(l20 < l40 && l40 < l70, "{l20} {l40} {l70}");
    }

    #[test]
    fn saturates_at_the_papers_operating_points() {
        // Figure 1 (Lm=32): the h=20% curve saturates near λ ≈ 6e-4.
        assert!(solve(16, 2, 32, 3e-4, 0.2).is_ok());
        assert!(solve(16, 2, 32, 9e-4, 0.2).is_err());
        // h=70% saturates near 2e-4.
        assert!(solve(16, 2, 32, 1e-4, 0.7).is_ok());
        assert!(solve(16, 2, 32, 3e-4, 0.7).is_err());
        // Figure 2 (Lm=100): h=20% saturates near 2e-4.
        assert!(solve(16, 2, 100, 1e-4, 0.2).is_ok());
        assert!(solve(16, 2, 100, 3e-4, 0.2).is_err());
    }

    #[test]
    fn hot_messages_slower_than_regular_under_hot_load() {
        let out = solve(16, 2, 32, 2e-4, 0.4).unwrap();
        assert!(
            out.hot_latency > out.regular_latency,
            "hot {} vs regular {}",
            out.hot_latency,
            out.regular_latency
        );
    }

    #[test]
    fn hot_ring_service_grows_towards_hot_node() {
        // S^h_y,j is cumulative along the path, so it grows with j; the
        // blocking per channel also peaks nearest the hot node (largest
        // rate), which this ordering inherits.
        let out = solve(16, 2, 32, 3e-4, 0.4).unwrap();
        for w in out.hot_ring_services.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn h_zero_hot_and_nonhot_rings_agree() {
        // With no hot traffic the hot ring is statistically identical to
        // every other ring.
        let out = solve(16, 2, 32, 4e-4, 0.0).unwrap();
        let [nonhot, hot, ..] = out.entrance_services;
        assert!(
            (nonhot - hot).abs() < 1e-6,
            "h=0 asymmetry: {nonhot} vs {hot}"
        );
        assert!((out.vbar_hot_ring - out.vbar_nonhot_ring).abs() < 1e-6);
    }

    #[test]
    fn more_virtual_channels_multiplex_more() {
        let v2 = solve(16, 2, 32, 4e-4, 0.2).unwrap();
        let v4 = solve(16, 4, 32, 4e-4, 0.2).unwrap();
        assert!(v4.vbar_x >= v2.vbar_x);
        assert!(v4.vbar_hot_ring >= v2.vbar_hot_ring);
    }

    #[test]
    fn variant_changes_little_below_saturation() {
        let base = ModelConfig::paper_validation(16, 2, 32, 2e-4, 0.4);
        let a = HotSpotModel::new(base).unwrap().solve().unwrap();
        let b = HotSpotModel::new(ModelConfig {
            variant: ModelVariant::HotRingServiceEq25,
            ..base
        })
        .unwrap()
        .solve()
        .unwrap();
        let rel = (a.latency - b.latency).abs() / a.latency;
        assert!(rel < 0.1, "variants diverge by {rel}");
    }

    #[test]
    fn longer_messages_cost_proportionally_at_zero_load() {
        let short = solve(16, 2, 32, 1e-9, 0.2).unwrap().latency;
        let long = solve(16, 2, 100, 1e-9, 0.2).unwrap().latency;
        assert!(
            (long - short - 68.0).abs() < 0.5,
            "short {short} long {long}"
        );
    }
}
