//! Route-case probabilities for regular messages (Eqs. 11–15 and 31).
//!
//! A regular message picks a uniformly-random destination among the other
//! `N - 1 = k² - 1` nodes.  Under x-then-y dimension-order routing it falls
//! into exactly one of five cases, whose probabilities (averaged over
//! sources, exact `N-1` denominators) are:
//!
//! | case | destination constraint | probability |
//! |------|-------------------------|-------------|
//! | y-only, hot ring | `dx = 0`, source in hot column | `1/(k(k+1))` |
//! | y-only, non-hot ring | `dx = 0`, source elsewhere | `(k-1)/(k(k+1))` |
//! | x-only | `dy = 0` | `1/(k+1)` |
//! | x then hot y-ring | `dx ≠ 0`, `dy ≠ 0`, dest in hot column | `(k-1)/(k(k+1))` |
//! | x then non-hot y-ring | `dx ≠ 0`, `dy ≠ 0`, dest elsewhere | `(k-1)²/(k(k+1))` |
//!
//! The five probabilities sum to one; the x-entering cases sum to
//! `k/(k+1)`.  Each is verified against brute-force enumeration of all
//! `(src, dest)` pairs in the tests.

/// The five route-case probabilities for regular messages.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegularRouteProbs {
    /// P(message moves only in `y`, inside the hot y-ring).
    pub y_only_hot_ring: f64,
    /// P(message moves only in `y`, inside a non-hot y-ring).
    pub y_only_nonhot_ring: f64,
    /// P(message moves only in `x`).
    pub x_only: f64,
    /// P(message moves in `x` then down the hot y-ring).
    pub x_then_hot_ring: f64,
    /// P(message moves in `x` then down a non-hot y-ring).
    pub x_then_nonhot_ring: f64,
}

impl RegularRouteProbs {
    /// Probabilities for radix `k`.
    pub fn new(k: u32) -> Self {
        assert!(k >= 2);
        let kf = k as f64;
        RegularRouteProbs {
            y_only_hot_ring: 1.0 / (kf * (kf + 1.0)),
            y_only_nonhot_ring: (kf - 1.0) / (kf * (kf + 1.0)),
            x_only: 1.0 / (kf + 1.0),
            x_then_hot_ring: (kf - 1.0) / (kf * (kf + 1.0)),
            x_then_nonhot_ring: (kf - 1.0) * (kf - 1.0) / (kf * (kf + 1.0)),
        }
    }

    /// Probability of entering the network through dimension `x`
    /// (the factor in Eq. 14): `k/(k+1)`.
    pub fn enters_via_x(&self) -> f64 {
        self.x_only + self.x_then_hot_ring + self.x_then_nonhot_ring
    }

    /// Sum of all five cases (must be 1).
    pub fn total(&self) -> f64 {
        self.y_only_hot_ring
            + self.y_only_nonhot_ring
            + self.x_only
            + self.x_then_hot_ring
            + self.x_then_nonhot_ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kncube_topology::hotspot::{DIM_X, DIM_Y};
    use kncube_topology::KAryNCube;

    #[test]
    fn probabilities_sum_to_one() {
        for k in 2..=32 {
            let p = RegularRouteProbs::new(k);
            assert!((p.total() - 1.0).abs() < 1e-12, "k={k}");
            let kf = k as f64;
            assert!((p.enters_via_x() - kf / (kf + 1.0)).abs() < 1e-12);
        }
    }

    /// Brute-force oracle: enumerate every (src, dest) pair with dest ≠ src
    /// and classify its dimension-order route relative to a hot column.
    fn enumerate(k: u32) -> RegularRouteProbs {
        let t = KAryNCube::unidirectional(k, 2).unwrap();
        let hot = t.node_at(&[1 % k, 2 % k]);
        let hot_x = t.coord(hot, DIM_X);
        let mut counts = [0u64; 5];
        let mut total = 0u64;
        for src in t.nodes() {
            for dest in t.nodes() {
                if src == dest {
                    continue;
                }
                total += 1;
                let moves_x = t.coord(src, DIM_X) != t.coord(dest, DIM_X);
                let moves_y = t.coord(src, DIM_Y) != t.coord(dest, DIM_Y);
                let idx = match (moves_x, moves_y) {
                    (false, true) => {
                        if t.coord(src, DIM_X) == hot_x {
                            0
                        } else {
                            1
                        }
                    }
                    (true, false) => 2,
                    (true, true) => {
                        if t.coord(dest, DIM_X) == hot_x {
                            3
                        } else {
                            4
                        }
                    }
                    (false, false) => unreachable!("src == dest filtered"),
                };
                counts[idx] += 1;
            }
        }
        let f = |i: usize| counts[i] as f64 / total as f64;
        RegularRouteProbs {
            y_only_hot_ring: f(0),
            y_only_nonhot_ring: f(1),
            x_only: f(2),
            x_then_hot_ring: f(3),
            x_then_nonhot_ring: f(4),
        }
    }

    #[test]
    fn closed_forms_match_bruteforce() {
        for k in [2u32, 3, 4, 5, 8] {
            let exact = enumerate(k);
            let model = RegularRouteProbs::new(k);
            for (a, b, name) in [
                (exact.y_only_hot_ring, model.y_only_hot_ring, "y-hot"),
                (exact.y_only_nonhot_ring, model.y_only_nonhot_ring, "y-non"),
                (exact.x_only, model.x_only, "x-only"),
                (exact.x_then_hot_ring, model.x_then_hot_ring, "x-hot"),
                (exact.x_then_nonhot_ring, model.x_then_nonhot_ring, "x-non"),
            ] {
                assert!(
                    (a - b).abs() < 1e-12,
                    "k={k} case {name}: enumerated {a} vs closed form {b}"
                );
            }
        }
    }

    #[test]
    fn route_case_probabilities_are_ordered_sensibly() {
        // For k >= 3 the dominant case is x-then-non-hot-y (two random
        // coordinates both differ, non-hot column); the rarest is
        // y-only within the single hot ring.
        let p = RegularRouteProbs::new(16);
        assert!(p.x_then_nonhot_ring > p.x_only);
        assert!(p.x_only > p.x_then_hot_ring);
        assert!(p.x_then_hot_ring > p.y_only_hot_ring);
        assert!((p.x_then_hot_ring - p.y_only_nonhot_ring).abs() < 1e-15);
    }
}
