//! Route-case probabilities for regular messages (Eqs. 11–15 and 31),
//! plus their generalization to arbitrary dimension counts.
//!
//! A regular message picks a uniformly-random destination among the other
//! `N - 1 = k² - 1` nodes.  Under x-then-y dimension-order routing it falls
//! into exactly one of five cases, whose probabilities (averaged over
//! sources, exact `N-1` denominators) are:
//!
//! | case | destination constraint | probability |
//! |------|-------------------------|-------------|
//! | y-only, hot ring | `dx = 0`, source in hot column | `1/(k(k+1))` |
//! | y-only, non-hot ring | `dx = 0`, source elsewhere | `(k-1)/(k(k+1))` |
//! | x-only | `dy = 0` | `1/(k+1)` |
//! | x then hot y-ring | `dx ≠ 0`, `dy ≠ 0`, dest in hot column | `(k-1)/(k(k+1))` |
//! | x then non-hot y-ring | `dx ≠ 0`, `dy ≠ 0`, dest elsewhere | `(k-1)²/(k(k+1))` |
//!
//! The five probabilities sum to one; the x-entering cases sum to
//! `k/(k+1)`.  Each is verified against brute-force enumeration of all
//! `(src, dest)` pairs in the tests.

/// The five route-case probabilities for regular messages.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegularRouteProbs {
    /// P(message moves only in `y`, inside the hot y-ring).
    pub y_only_hot_ring: f64,
    /// P(message moves only in `y`, inside a non-hot y-ring).
    pub y_only_nonhot_ring: f64,
    /// P(message moves only in `x`).
    pub x_only: f64,
    /// P(message moves in `x` then down the hot y-ring).
    pub x_then_hot_ring: f64,
    /// P(message moves in `x` then down a non-hot y-ring).
    pub x_then_nonhot_ring: f64,
}

impl RegularRouteProbs {
    /// Probabilities for radix `k`.
    pub fn new(k: u32) -> Self {
        assert!(k >= 2);
        let kf = k as f64;
        RegularRouteProbs {
            y_only_hot_ring: 1.0 / (kf * (kf + 1.0)),
            y_only_nonhot_ring: (kf - 1.0) / (kf * (kf + 1.0)),
            x_only: 1.0 / (kf + 1.0),
            x_then_hot_ring: (kf - 1.0) / (kf * (kf + 1.0)),
            x_then_nonhot_ring: (kf - 1.0) * (kf - 1.0) / (kf * (kf + 1.0)),
        }
    }

    /// Probability of entering the network through dimension `x`
    /// (the factor in Eq. 14): `k/(k+1)`.
    pub fn enters_via_x(&self) -> f64 {
        self.x_only + self.x_then_hot_ring + self.x_then_nonhot_ring
    }

    /// Sum of all five cases (must be 1).
    pub fn total(&self) -> f64 {
        self.y_only_hot_ring
            + self.y_only_nonhot_ring
            + self.x_only
            + self.x_then_hot_ring
            + self.x_then_nonhot_ring
    }
}

/// One entry family of the generalized route-case decomposition: the first
/// dimension a regular message moves in, and whether the ring it enters
/// through carries hot-spot traffic.
///
/// The n-dimensional analogues of Eqs. (11)–(15) partition regular
/// messages by their *entry channel family* — finer case splits (which
/// later dimensions are visited, hot or not) only change the expected
/// remaining service, which the solver folds in by linearity of the
/// affine service chains.  With a uniform destination among the other
/// `N - 1` nodes:
///
/// ```text
/// P(entry at dim d)           = (k-1) k^{n-1-d} / (N-1)
/// P(entry ring is hot | d)    = k^{-d}
/// ```
///
/// (entry at `d` pins the `d` lower destination coordinates to the
/// source's, leaves `k-1` choices in `d` and `k` in each higher dimension;
/// the entry ring is hot iff the source — and hence destination — matches
/// the hot node on every dimension below `d`, which no dimension-0 ring
/// can fail).  At `n = 2` the families aggregate the five cases of
/// [`RegularRouteProbs`]: `(0, hot)` is the three x-entering cases,
/// `(1, hot)`/`(1, nonhot)` are the y-only cases.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EntryCase {
    /// The first dimension the message moves in.
    pub dim: u32,
    /// Whether the entry ring carries hot-spot traffic (always true for
    /// dimension 0).
    pub hot: bool,
    /// Probability of the family over uniform `(src, dest)` pairs with
    /// `dest != src`.
    pub probability: f64,
}

/// The generalized entry-family probabilities for a k-ary n-cube; the
/// families partition the regular messages, so the probabilities sum to 1.
pub fn entry_cases(k: u32, n: u32) -> Vec<EntryCase> {
    assert!(k >= 2);
    assert!(n >= 1);
    let kf = k as f64;
    let nodes = (k as u64).pow(n) as f64;
    let mut cases = Vec::with_capacity(2 * n as usize);
    for d in 0..n {
        let p_entry = (kf - 1.0) * kf.powi((n - 1 - d) as i32) / (nodes - 1.0);
        let hot_share = kf.powi(-(d as i32));
        cases.push(EntryCase {
            dim: d,
            hot: true,
            probability: p_entry * hot_share,
        });
        if d > 0 {
            cases.push(EntryCase {
                dim: d,
                hot: false,
                probability: p_entry * (1.0 - hot_share),
            });
        }
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use kncube_topology::hotspot::{DIM_X, DIM_Y};
    use kncube_topology::KAryNCube;

    #[test]
    fn probabilities_sum_to_one() {
        for k in 2..=32 {
            let p = RegularRouteProbs::new(k);
            assert!((p.total() - 1.0).abs() < 1e-12, "k={k}");
            let kf = k as f64;
            assert!((p.enters_via_x() - kf / (kf + 1.0)).abs() < 1e-12);
        }
    }

    /// Brute-force oracle: enumerate every (src, dest) pair with dest ≠ src
    /// and classify its dimension-order route relative to a hot column.
    fn enumerate(k: u32) -> RegularRouteProbs {
        let t = KAryNCube::unidirectional(k, 2).unwrap();
        let hot = t.node_at(&[1 % k, 2 % k]);
        let hot_x = t.coord(hot, DIM_X);
        let mut counts = [0u64; 5];
        let mut total = 0u64;
        for src in t.nodes() {
            for dest in t.nodes() {
                if src == dest {
                    continue;
                }
                total += 1;
                let moves_x = t.coord(src, DIM_X) != t.coord(dest, DIM_X);
                let moves_y = t.coord(src, DIM_Y) != t.coord(dest, DIM_Y);
                let idx = match (moves_x, moves_y) {
                    (false, true) => {
                        if t.coord(src, DIM_X) == hot_x {
                            0
                        } else {
                            1
                        }
                    }
                    (true, false) => 2,
                    (true, true) => {
                        if t.coord(dest, DIM_X) == hot_x {
                            3
                        } else {
                            4
                        }
                    }
                    (false, false) => unreachable!("src == dest filtered"),
                };
                counts[idx] += 1;
            }
        }
        let f = |i: usize| counts[i] as f64 / total as f64;
        RegularRouteProbs {
            y_only_hot_ring: f(0),
            y_only_nonhot_ring: f(1),
            x_only: f(2),
            x_then_hot_ring: f(3),
            x_then_nonhot_ring: f(4),
        }
    }

    #[test]
    fn closed_forms_match_bruteforce() {
        for k in [2u32, 3, 4, 5, 8] {
            let exact = enumerate(k);
            let model = RegularRouteProbs::new(k);
            for (a, b, name) in [
                (exact.y_only_hot_ring, model.y_only_hot_ring, "y-hot"),
                (exact.y_only_nonhot_ring, model.y_only_nonhot_ring, "y-non"),
                (exact.x_only, model.x_only, "x-only"),
                (exact.x_then_hot_ring, model.x_then_hot_ring, "x-hot"),
                (exact.x_then_nonhot_ring, model.x_then_nonhot_ring, "x-non"),
            ] {
                assert!(
                    (a - b).abs() < 1e-12,
                    "k={k} case {name}: enumerated {a} vs closed form {b}"
                );
            }
        }
    }

    #[test]
    fn entry_cases_aggregate_the_five_2d_cases() {
        for k in [2u32, 3, 4, 8, 16] {
            let five = RegularRouteProbs::new(k);
            let cases = entry_cases(k, 2);
            let find = |dim: u32, hot: bool| {
                cases
                    .iter()
                    .find(|c| c.dim == dim && c.hot == hot)
                    .map(|c| c.probability)
                    .unwrap_or(0.0)
            };
            assert!((find(0, true) - five.enters_via_x()).abs() < 1e-12, "k={k}");
            assert!((find(1, true) - five.y_only_hot_ring).abs() < 1e-12);
            assert!((find(1, false) - five.y_only_nonhot_ring).abs() < 1e-12);
            let total: f64 = cases.iter().map(|c| c.probability).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn entry_cases_match_bruteforce_in_3d() {
        // Enumerate (src, dest) pairs of a 3-D cube and classify by entry
        // dimension + hot-prefix, with the hot node pinned arbitrarily.
        for k in [2u32, 3, 4] {
            let t = KAryNCube::unidirectional(k, 3).unwrap();
            let hot = t.node_at(&[1 % k, 2 % k, 0]);
            let mut counts = std::collections::HashMap::new();
            let mut total = 0u64;
            for src in t.nodes() {
                for dest in t.nodes() {
                    if src == dest {
                        continue;
                    }
                    total += 1;
                    let entry = (0..3)
                        .find(|&d| t.coord(src, d) != t.coord(dest, d))
                        .unwrap();
                    let hot_ring = (0..entry).all(|d| t.coord(src, d) == t.coord(hot, d));
                    *counts.entry((entry, hot_ring)).or_insert(0u64) += 1;
                }
            }
            for case in entry_cases(k, 3) {
                let counted =
                    counts.get(&(case.dim, case.hot)).copied().unwrap_or(0) as f64 / total as f64;
                assert!(
                    (counted - case.probability).abs() < 1e-12,
                    "k={k} dim={} hot={}: enumerated {counted} vs closed {}",
                    case.dim,
                    case.hot,
                    case.probability
                );
            }
        }
    }

    #[test]
    fn route_case_probabilities_are_ordered_sensibly() {
        // For k >= 3 the dominant case is x-then-non-hot-y (two random
        // coordinates both differ, non-hot column); the rarest is
        // y-only within the single hot ring.
        let p = RegularRouteProbs::new(16);
        assert!(p.x_then_nonhot_ring > p.x_only);
        assert!(p.x_only > p.x_then_hot_ring);
        assert!(p.x_then_hot_ring > p.y_only_hot_ring);
        assert!((p.x_then_hot_ring - p.y_only_nonhot_ring).abs() < 1e-15);
    }
}
