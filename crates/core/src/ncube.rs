//! The hot-spot latency model generalized to arbitrary k-ary n-cubes.
//!
//! This is the paper's model (Eqs. 10–37) with the dimension count `n`
//! promoted to a first-class parameter.  The 2-D solver
//! ([`crate::HotSpotModel`]) is the `n = 2` specialization of this module,
//! and the binary-hypercube model ([`crate::HypercubeModel`]) is its
//! closed-form `k = 2` instance — both relationships are enforced by the
//! cross-validation tests in the facade crate.
//!
//! # How the 2-D machinery generalizes
//!
//! * **Channel rates.**  Dimension-order routing corrects dimensions in
//!   ascending order, so all hot-spot movement in dimension `d` happens in
//!   the *hot ring of dimension `d`* (matching the hot node below `d`).
//!   The hot dimension-`d` channel `j` hops from the hot coordinate
//!   funnels `k^d (k-j)` sources (generalized Eqs. 4–7,
//!   [`crate::rates::NCubeRates`]); the regular rate `λ_r = λ(1-h)(k-1)/2`
//!   (Eq. 3) is dimension-independent.
//!
//! * **Service-time recursions.**  Every per-channel recursion of
//!   Eqs. (16)–(25) has the affine shape `S_j = 1 + B_j + S_{j-1}`, so the
//!   seven hard-coded x/y families collapse into per-dimension data: the
//!   position-averaged regular blocking `B_{d,hot}` / `B_nonhot`, and the
//!   cumulative hot-path channel costs `C_{d,j} = Σ_{l<=j} (1 + B^h_{d,l})`
//!   — the network latency of a hot message with per-dimension distance
//!   profile `(t_0, …, t_{n-1})` is exactly `Lm + Σ_d C_{d,t_d}`, which at
//!   `n = 2` reproduces the chains `S^h_y,j` (Eq. 23) and `S^h_x,j,t`
//!   (Eq. 25) term for term.
//!
//! * **Route cases.**  The five 2-D cases of Eqs. (11)–(15) become the
//!   *entry families* of [`crate::probabilities::entry_cases`] (first
//!   dimension moved × hot/non-hot entry ring, exact `N-1` denominators);
//!   within a family the expected remaining latency follows from chain
//!   affinity: conditional on a later dimension `d > d0` being crossed the
//!   message spends `(k-1)/2` expected hops there, in a hot ring with
//!   probability `k^{-(d-d0)}` when the entry ring was hot (dimension-wise
//!   independence of a uniform destination) and never otherwise.
//!
//! * **Composition.**  Source-queue waits (Eqs. 31–32) are evaluated per
//!   source position — one node per distance profile — and the
//!   multiplexing degrees (Eqs. 33–37) per channel family, exactly as the
//!   2-D solver does over its `(j)` and `(j, t)` positions.
//!
//! Under the default [`ServiceTimeModel::PipelinedTransfer`] the blocking
//! terms are load-only, so the fixed point converges immediately; the
//! [`ServiceTimeModel::PathOccupancy`] ablation iterates the
//! `holds → blocking → chains` loop like the 2-D solver.  (One
//! approximation relative to the 2-D ablation code path: the hot chains
//! average their downstream holding time over the tail profiles instead of
//! keeping one chain per profile; the default model is unaffected.)

use crate::probabilities::{entry_cases, EntryCase};
use crate::rates::NCubeRates;
use crate::solver::{ModelError, ModelVariant, MultiplexingModel, ServiceTimeModel, RHO_CAP};
use kncube_queueing::blocking::{blocking_delay, channel_utilization, TrafficClass};
use kncube_queueing::fixed_point::{self, FixedPointError, FixedPointOptions};
use kncube_queueing::mg1;
use kncube_queueing::vc_multiplex::multiplexing_factor;

/// Largest supported node count: the latency composition enumerates one
/// source-queue wait per node (Eq. 32 is a per-source quantity), so the
/// model is practical up to about a million nodes.
pub const MAX_MODEL_NODES: u64 = 1 << 20;

/// Largest number of downstream tail profiles enumerated exactly when
/// position-averaging blocking under the path-occupancy ablation; beyond
/// it the mean tail cost is used instead.
const TAIL_ENUM_CAP: usize = 4096;

/// Configuration of one generalized model evaluation.
#[derive(Clone, Copy, Debug)]
pub struct NCubeConfig {
    /// Radix `k` (nodes per dimension).
    pub k: u32,
    /// Dimension count `n`.
    pub n: u32,
    /// Virtual channels per physical channel (`V >= 2` in the paper;
    /// `V = 1` is accepted for the math but is not deadlock-free in the
    /// simulated network).
    pub virtual_channels: u32,
    /// Message length `Lm` in flits.
    pub message_length: u32,
    /// Per-node generation rate `λ` in messages/cycle.
    pub lambda: f64,
    /// Hot-spot fraction `h`.
    pub hot_fraction: f64,
    /// Eq. (25) blocking-term reading.
    pub variant: ModelVariant,
    /// Channel service-time model inside the blocking operator.
    pub service_model: ServiceTimeModel,
    /// Virtual-channel multiplexing model (Eqs. 33-35 or class-aware).
    pub multiplexing: MultiplexingModel,
    /// Fixed-point iteration controls.
    pub options: FixedPointOptions,
}

impl NCubeConfig {
    /// A configuration with the reconstruction defaults (the choices that
    /// reproduce the paper's figures at `n = 2`).
    pub fn new(k: u32, n: u32, v: u32, lm: u32, lambda: f64, h: f64) -> Self {
        NCubeConfig {
            k,
            n,
            virtual_channels: v,
            message_length: lm,
            lambda,
            hot_fraction: h,
            variant: ModelVariant::default(),
            service_model: ServiceTimeModel::default(),
            multiplexing: MultiplexingModel::default(),
            options: FixedPointOptions::default(),
        }
    }
}

/// The solved generalized model.
#[derive(Clone, Debug)]
pub struct NCubeOutput {
    /// Eq. (10): the headline mean message latency in cycles.
    pub latency: f64,
    /// `S_r`: mean latency of regular messages (probability-marginalised).
    pub regular_latency: f64,
    /// `S_h`: mean latency of hot-spot messages.
    pub hot_latency: f64,
    /// Eq. (31): mean network latency a regular message sees at any source.
    pub mean_network_latency_regular: f64,
    /// Eq. (32): mean source-queue wait of regular messages.
    pub source_wait_regular: f64,
    /// Position-averaged multiplexing degree of the hot ring family of
    /// each dimension (index `d`; at `n = 2`, index 0 is the paper's
    /// Eq. 37 x-average and index 1 its Eq. 36 hot-y-ring average).
    pub vbar_hot: Vec<f64>,
    /// Multiplexing degree at channels carrying no hot traffic.
    pub vbar_nonhot: f64,
    /// Position-averaged regular-message blocking delay at the hot ring
    /// family of each dimension (the generalized Eqs. 17–20 terms).
    pub blocking_hot: Vec<f64>,
    /// Regular-message blocking delay at non-hot channels (Eq. 16's term).
    pub blocking_nonhot: f64,
    /// Converged hot-path services per dimension: entry `[d][j-1]` is the
    /// network latency `Lm + C_{d,j}` of a hot message with `j` channels
    /// left in dimension `d` and nothing after (at `n = 2`, `[1]` is the
    /// `S^h_y,j` chain of Eq. 23).
    pub hot_path_services: Vec<Vec<f64>>,
    /// The largest channel/source utilization at the solution (a solution
    /// exists only when this is below 1).
    pub max_utilization: f64,
    /// Fixed-point iterations used.
    pub iterations: usize,
}

/// The generalized analytical model for one configuration.
#[derive(Clone, Debug)]
pub struct NCubeModel {
    config: NCubeConfig,
    rates: NCubeRates,
}

/// State-vector layout: `[B_nonhot, B_hot[0..n], C[d][1..=m] per d]`.
#[derive(Clone, Copy)]
struct Layout {
    n: usize,
    /// `m = k - 1`: entries per dimension of the hot chain.
    m: usize,
}

impl Layout {
    fn len(&self) -> usize {
        1 + self.n + self.n * self.m
    }
    fn b_nonhot(&self) -> usize {
        0
    }
    fn b_hot(&self, d: usize) -> usize {
        1 + d
    }
    /// `C_{d,j}` for `j in 1..=m`; `C_{d,0} = 0` is implicit.
    fn c(&self, d: usize, j: usize) -> usize {
        debug_assert!((1..=self.m).contains(&j));
        1 + self.n + d * self.m + (j - 1)
    }
    fn c_or_zero(&self, state: &[f64], d: usize, j: usize) -> f64 {
        if j == 0 {
            0.0
        } else {
            state[self.c(d, j)]
        }
    }
}

impl NCubeModel {
    /// Validate the configuration and build the model.
    pub fn new(config: NCubeConfig) -> Result<Self, ModelError> {
        if config.k < 2 {
            return Err(ModelError::BadConfig("radix k must be >= 2".into()));
        }
        if config.n < 1 {
            return Err(ModelError::BadConfig("need at least one dimension".into()));
        }
        let mut nodes: u64 = 1;
        for _ in 0..config.n {
            nodes = nodes.saturating_mul(config.k as u64);
            if nodes > MAX_MODEL_NODES {
                return Err(ModelError::BadConfig(format!(
                    "k^n exceeds the supported model size ({MAX_MODEL_NODES} nodes)"
                )));
            }
        }
        if config.virtual_channels < 1 {
            return Err(ModelError::BadConfig(
                "need at least one virtual channel".into(),
            ));
        }
        if config.message_length < 1 {
            return Err(ModelError::BadConfig(
                "message length must be >= 1 flit".into(),
            ));
        }
        if !(0.0..=1.0).contains(&config.hot_fraction) {
            return Err(ModelError::BadConfig("h must be in [0, 1]".into()));
        }
        if !config.lambda.is_finite() || config.lambda < 0.0 {
            return Err(ModelError::BadConfig("λ must be finite and >= 0".into()));
        }
        let rates = NCubeRates::new(config.k, config.n, config.lambda, config.hot_fraction);
        Ok(NCubeModel { config, rates })
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &NCubeConfig {
        &self.config
    }

    /// The traffic rates (generalized Eqs. 1–9).
    pub fn rates(&self) -> &NCubeRates {
        &self.rates
    }

    /// Node count `N = k^n`.
    fn num_nodes(&self) -> f64 {
        (self.config.k as u64).pow(self.config.n) as f64
    }

    /// Entrance-averaged channel *holding* time of a regular family from
    /// its position-averaged blocking term.
    ///
    /// A message holds a channel for `1 + S_{j-1}` cycles (header transfer
    /// plus the service of the remaining path), excluding its own
    /// acquisition wait.  Averaged over the entry positions `j = 1..k-1`
    /// of an affine chain `S_j = j(1+B) + Lm` this is
    /// `1 + Lm + (1+B)(k-2)/2` — the closed form of the 2-D solver's
    /// family average.  Under the default pipelined-transfer reading the
    /// holding time is the load-independent `Lm + 1` (see
    /// [`ServiceTimeModel`]).
    fn hold_regular(&self, blocking: f64) -> f64 {
        let lm = self.config.message_length as f64;
        match self.config.service_model {
            ServiceTimeModel::PipelinedTransfer => lm + 1.0,
            ServiceTimeModel::PathOccupancy => {
                let m = (self.config.k - 1) as f64;
                1.0 + lm + (1.0 + blocking) * (m - 1.0) / 2.0
            }
        }
    }

    /// Holding time of a hot dimension-`d` channel at in-ring chain value
    /// `C_{d,l-1}` with downstream (higher-dimension) chain cost `tail`.
    fn hot_hold(&self, c_before: f64, tail: f64) -> f64 {
        let lm = self.config.message_length as f64;
        match self.config.service_model {
            ServiceTimeModel::PipelinedTransfer => lm + 1.0,
            ServiceTimeModel::PathOccupancy => 1.0 + lm + c_before + tail,
        }
    }

    /// The downstream tail costs a hot message can carry past dimension
    /// `d`: one entry per profile of the higher dimensions (uniform over
    /// positions, the generalized Eq. 18–20/25 position average).  Under
    /// the pipelined default holds are load-independent, so a single zero
    /// tail suffices; past [`TAIL_ENUM_CAP`] profiles the mean tail cost
    /// stands in for the enumeration.
    fn tail_sums(&self, layout: Layout, state: &[f64], d: usize) -> Vec<f64> {
        if self.config.service_model == ServiceTimeModel::PipelinedTransfer {
            return vec![0.0];
        }
        let k = self.config.k as usize;
        let higher = layout.n - d - 1;
        let count = k.checked_pow(higher as u32).unwrap_or(usize::MAX);
        if count > TAIL_ENUM_CAP {
            let mean: f64 = (d + 1..layout.n)
                .map(|d2| {
                    (0..=layout.m)
                        .map(|j| layout.c_or_zero(state, d2, j))
                        .sum::<f64>()
                        / k as f64
                })
                .sum();
            return vec![mean];
        }
        let mut sums = vec![0.0];
        for d2 in d + 1..layout.n {
            let mut next = Vec::with_capacity(sums.len() * k);
            for &s in &sums {
                for j in 0..=layout.m {
                    next.push(s + layout.c_or_zero(state, d2, j));
                }
            }
            sums = next;
        }
        sums
    }

    /// Zero-load initial guess: blocking-free chains.
    fn initial_state(&self, layout: Layout) -> Vec<f64> {
        let mut state = vec![0.0; layout.len()];
        for d in 0..layout.n {
            for j in 1..=layout.m {
                state[layout.c(d, j)] = j as f64;
            }
        }
        state
    }

    /// One application of the generalized recursions (16)–(20), (23), (25).
    fn update(&self, layout: Layout, state: &[f64], next: &mut [f64]) {
        let k = self.config.k as usize;
        let lm = self.config.message_length as f64;
        let lr = self.rates.regular_channel_rate();
        let hold_nonhot = self.hold_regular(state[layout.b_nonhot()]);
        let hold_hot: Vec<f64> = (0..layout.n)
            .map(|d| self.hold_regular(state[layout.b_hot(d)]))
            .collect();

        // Eq. (16) generalized: blocking at a channel with no hot traffic.
        next[layout.b_nonhot()] = blocking_delay(
            TrafficClass::new(lr, hold_nonhot),
            TrafficClass::none(),
            lm,
            RHO_CAP,
        );

        for d in 0..layout.n {
            let tails = self.tail_sums(layout, state, d);
            let inv_tails = 1.0 / tails.len() as f64;

            // Eqs. (17)-(20) generalized: regular-message blocking at the
            // hot ring family of dimension d, uniform over the k in-ring
            // positions (and the tail profiles, which only matter under
            // the path-occupancy ablation).
            let mut sum = 0.0;
            for l in 1..=k {
                let rate = self.rates.hot_rate(d as u32, l as u32);
                let c_before = layout.c_or_zero(state, d, l - 1);
                for &tail in &tails {
                    let hot = TrafficClass::new(rate, self.hot_hold(c_before, tail));
                    sum += blocking_delay(TrafficClass::new(lr, hold_hot[d]), hot, lm, RHO_CAP);
                }
            }
            next[layout.b_hot(d)] = sum / k as f64 * inv_tails;

            // Eqs. (23)/(25) generalized: the hot-message chain C_{d,j}.
            // The regular competitor's holding time follows the Eq. 25
            // reading (ModelVariant); the last dimension always uses its
            // own family, matching Eq. 23.
            let reg_hold = match self.config.variant {
                ModelVariant::XRingService => hold_hot[d],
                ModelVariant::HotRingServiceEq25 => hold_hot[layout.n - 1],
            };
            let mut cum = 0.0;
            for j in 1..=layout.m {
                let rate = self.rates.hot_rate(d as u32, j as u32);
                let c_before = layout.c_or_zero(state, d, j - 1);
                let mut bsum = 0.0;
                for &tail in &tails {
                    bsum += blocking_delay(
                        TrafficClass::new(lr, reg_hold),
                        TrafficClass::new(rate, self.hot_hold(c_before, tail)),
                        lm,
                        RHO_CAP,
                    );
                }
                cum += 1.0 + bsum * inv_tails;
                next[layout.c(d, j)] = cum;
            }
        }
    }

    /// Number of components in the fixed-point state vector for this
    /// configuration — the length a warm-start state must have to be
    /// accepted by [`NCubeModel::solve_warm`].
    pub fn state_len(&self) -> usize {
        self.layout().len()
    }

    fn layout(&self) -> Layout {
        Layout {
            n: self.config.n as usize,
            m: (self.config.k - 1) as usize,
        }
    }

    /// Solve the model.
    pub fn solve(&self) -> Result<NCubeOutput, ModelError> {
        self.solve_warm(None).map(|(out, _)| out)
    }

    /// Solve the model, optionally warm-starting the fixed point from the
    /// converged state of a nearby configuration, and return the converged
    /// state alongside the output so the caller can continue the chain.
    ///
    /// A warm state is accepted only when its length matches
    /// [`NCubeModel::state_len`] and every component is finite and
    /// non-negative; anything else silently falls back to the cold
    /// zero-load initial guess, so continuation across a `(k, n)` boundary
    /// is safe by construction.
    pub fn solve_warm(&self, warm: Option<&[f64]>) -> Result<(NCubeOutput, Vec<f64>), ModelError> {
        let layout = self.layout();
        let initial = match warm {
            Some(w) if w.len() == layout.len() && w.iter().all(|x| x.is_finite() && *x >= 0.0) => {
                w.to_vec()
            }
            _ => self.initial_state(layout),
        };
        let report = fixed_point::solve(initial, self.config.options, |state, next| {
            self.update(layout, state, next)
        })
        .map_err(|e| match e {
            FixedPointError::NonFinite | FixedPointError::NotConverged => ModelError::NotConverged,
        })?;
        let out = self.compose(layout, &report.state, report.iterations)?;
        Ok((out, report.state))
    }

    /// The generalized Eqs. (10)–(15), (21)–(24), (31)–(37) evaluated on
    /// the converged blocking terms and hot chains.
    fn compose(
        &self,
        layout: Layout,
        state: &[f64],
        iterations: usize,
    ) -> Result<NCubeOutput, ModelError> {
        let k = self.config.k as usize;
        let kf = k as f64;
        let n = layout.n;
        let m = layout.m;
        let lm = self.config.message_length as f64;
        let v = self.config.virtual_channels;
        let h = self.config.hot_fraction;
        let n_nodes = self.num_nodes();
        let lr = self.rates.regular_channel_rate();

        let b_nonhot = state[layout.b_nonhot()];
        let b_hot: Vec<f64> = (0..n).map(|d| state[layout.b_hot(d)]).collect();
        let hold_nonhot = self.hold_regular(b_nonhot);
        let hold_hot: Vec<f64> = b_hot.iter().map(|&b| self.hold_regular(b)).collect();

        // --- Saturation diagnosis: every physical channel must be stable.
        let mut max_util: f64 = 0.0;
        if n >= 2 {
            max_util =
                channel_utilization(TrafficClass::new(lr, hold_nonhot), TrafficClass::none());
        }
        let tails: Vec<Vec<f64>> = (0..n).map(|d| self.tail_sums(layout, state, d)).collect();
        for d in 0..n {
            for l in 1..=k {
                let rate = self.rates.hot_rate(d as u32, l as u32);
                let c_before = layout.c_or_zero(state, d, l - 1);
                for &tail in &tails[d] {
                    let util = channel_utilization(
                        TrafficClass::new(lr, hold_hot[d]),
                        TrafficClass::new(rate, self.hot_hold(c_before, tail)),
                    );
                    max_util = max_util.max(util);
                }
            }
        }
        if max_util >= 1.0 {
            return Err(ModelError::Saturated {
                max_utilization: max_util,
            });
        }

        // --- Eqs. (33)-(37): multiplexing degrees per channel family.
        let vbar_of = |rho: f64| -> f64 {
            match self.config.multiplexing {
                MultiplexingModel::DallyMarkov => multiplexing_factor(rho, v),
                MultiplexingModel::ClassAware => 1.0 + rho.clamp(0.0, (v - 1).max(1) as f64),
            }
        };
        let vbar_nonhot = vbar_of(lr * hold_nonhot);
        let vbar_hot: Vec<f64> = (0..n)
            .map(|d| {
                let mut sum = 0.0;
                for l in 1..=k {
                    let rate = self.rates.hot_rate(d as u32, l as u32);
                    let c_before = layout.c_or_zero(state, d, l - 1);
                    for &tail in &tails[d] {
                        sum += vbar_of(lr * hold_hot[d] + rate * self.hot_hold(c_before, tail));
                    }
                }
                sum / (k * tails[d].len()) as f64
            })
            .collect();

        // --- Eq. (31) generalized: the expected network latency per entry
        // family, by affinity of the chains.  Conditional on the entry the
        // message spends k/2 expected hops in its entry ring; each later
        // dimension is crossed with the (k-1)/k share folded into the
        // (k-1)/2 expected hops, in a hot ring with probability
        // k^{-(d-d0)} iff the entry ring was hot.
        let cases = entry_cases(self.config.k, self.config.n);
        let family_latency = |case: &EntryCase| -> f64 {
            let d0 = case.dim as usize;
            let b_first = if case.hot { b_hot[d0] } else { b_nonhot };
            let mut s = lm + (kf / 2.0) * (1.0 + b_first);
            for (d, &b) in b_hot.iter().enumerate().skip(d0 + 1) {
                let p_hot_ring = if case.hot {
                    kf.powi(-((d - d0) as i32))
                } else {
                    0.0
                };
                s += ((kf - 1.0) / 2.0)
                    * (p_hot_ring * (1.0 + b) + (1.0 - p_hot_ring) * (1.0 + b_nonhot));
            }
            s
        };
        let s_r_network: f64 = cases
            .iter()
            .map(|case| case.probability * family_latency(case))
            .sum();

        // --- Eqs. (21)-(24) and (32): per-source hot latencies and waits,
        // one source per distance profile (t_0, …, t_{n-1}) != 0.
        let vc_rate = self.config.lambda / v as f64;
        let wait = |service: f64| -> Result<f64, ModelError> {
            mg1::waiting_time(vc_rate, service, lm).map_err(|sat| ModelError::Saturated {
                max_utilization: sat.rho,
            })
        };
        let mut ws_sum = 0.0;
        let mut s_h_sum = 0.0;
        let mut profile = vec![0usize; n];
        'profiles: loop {
            // Advance the odometer (dimension 0 fastest); the all-zero
            // profile (the hot node itself) is skipped below.
            let mut d = 0;
            loop {
                if d == n {
                    break 'profiles;
                }
                profile[d] += 1;
                if profile[d] <= m {
                    break;
                }
                profile[d] = 0;
                d += 1;
            }
            let s_h_net = lm
                + profile
                    .iter()
                    .enumerate()
                    .map(|(dd, &t)| layout.c_or_zero(state, dd, t))
                    .sum::<f64>();
            let d0 = profile.iter().position(|&t| t > 0).expect("non-zero");
            let entry_tail: f64 = (d0 + 1..n)
                .map(|dd| layout.c_or_zero(state, dd, profile[dd]))
                .sum();
            let entry_rho = lr * hold_hot[d0]
                + self.rates.hot_rate(d0 as u32, profile[d0] as u32)
                    * self.hot_hold(layout.c_or_zero(state, d0, profile[d0] - 1), entry_tail);
            let w = wait((1.0 - h) * s_r_network + h * s_h_net)?;
            ws_sum += w;
            s_h_sum += (s_h_net + w) * vbar_of(entry_rho);
        }
        let ws_r = (ws_sum + wait(s_r_network)?) / n_nodes;
        let s_h = s_h_sum / (n_nodes - 1.0);

        // --- Eqs. (11)-(15) generalized: regular-message latency as the
        // entry-family mix, each family scaled by the multiplexing degree
        // of its entry channel family and carrying the mean source wait
        // once.
        let s_r: f64 = cases
            .iter()
            .map(|case| {
                let vbar = if case.hot {
                    vbar_hot[case.dim as usize]
                } else {
                    vbar_nonhot
                };
                case.probability * (family_latency(case) + ws_r) * vbar
            })
            .sum();

        // --- Eq. (10).
        let latency = (1.0 - h) * s_r + h * s_h;

        let hot_path_services = (0..n)
            .map(|d| (1..=m).map(|j| lm + state[layout.c(d, j)]).collect())
            .collect();
        Ok(NCubeOutput {
            latency,
            regular_latency: s_r,
            hot_latency: s_h,
            mean_network_latency_regular: s_r_network,
            source_wait_regular: ws_r,
            vbar_hot,
            vbar_nonhot,
            blocking_hot: b_hot,
            blocking_nonhot: b_nonhot,
            hot_path_services,
            max_utilization: max_util,
            iterations,
        })
    }

    /// Closed-form zero-load latency (λ → 0): no blocking, no queueing, no
    /// multiplexing; each visited dimension costs its expected hops and the
    /// message drains in `Lm` cycles.
    pub fn zero_load_latency(&self) -> f64 {
        let kf = self.config.k as f64;
        let n = self.config.n;
        let lm = self.config.message_length as f64;
        let n_nodes = self.num_nodes();
        let s_r0: f64 = entry_cases(self.config.k, n)
            .iter()
            .map(|case| {
                case.probability * (lm + kf / 2.0 + (n - 1 - case.dim) as f64 * (kf - 1.0) / 2.0)
            })
            .sum();
        // Hot sources: the mean distance profile sum over the N-1 non-hot
        // nodes, n·(k-1)/2 · N/(N-1).
        let s_h0 = lm + n as f64 * (kf - 1.0) / 2.0 * n_nodes / (n_nodes - 1.0);
        (1.0 - self.config.hot_fraction) * s_r0 + self.config.hot_fraction * s_h0
    }

    /// The hot-channel flit bound on the saturation rate: the last channel
    /// into the hot node drains `λ h k^{n-1}(k-1)` hot messages plus the
    /// regular share at `Lm + 1` cycles each and cannot absorb more than
    /// one flit per cycle — the n-dimensional analogue of the 2-D
    /// `1/(h·k(k-1)·(Lm+1))` bound and of the hypercube's
    /// `2/(h·N·(Lm+1))`.
    pub fn flit_bound(&self) -> f64 {
        let k = self.config.k as f64;
        let hot_share = self.config.hot_fraction * k.powi(self.config.n as i32 - 1) * (k - 1.0);
        let reg_share = (1.0 - self.config.hot_fraction) * (k - 1.0) / 2.0;
        1.0 / ((hot_share + reg_share) * (self.config.message_length as f64 + 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(k: u32, n: u32, lambda: f64, h: f64) -> Result<NCubeOutput, ModelError> {
        NCubeModel::new(NCubeConfig::new(k, n, 2, 16, lambda, h))
            .unwrap()
            .solve()
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(NCubeModel::new(NCubeConfig::new(1, 3, 2, 16, 1e-5, 0.2)).is_err());
        assert!(NCubeModel::new(NCubeConfig::new(4, 0, 2, 16, 1e-5, 0.2)).is_err());
        assert!(NCubeModel::new(NCubeConfig::new(4, 3, 0, 16, 1e-5, 0.2)).is_err());
        assert!(NCubeModel::new(NCubeConfig::new(4, 3, 2, 0, 1e-5, 0.2)).is_err());
        assert!(NCubeModel::new(NCubeConfig::new(4, 3, 2, 16, 1e-5, 1.5)).is_err());
        assert!(NCubeModel::new(NCubeConfig::new(4, 3, 2, 16, f64::NAN, 0.2)).is_err());
        // k^n beyond the per-source composition budget.
        assert!(NCubeModel::new(NCubeConfig::new(64, 5, 2, 16, 1e-5, 0.2)).is_err());
    }

    #[test]
    fn vanishing_load_matches_zero_load_closed_form() {
        for (k, n, h) in [(4u32, 3u32, 0.2f64), (8, 3, 0.4), (4, 4, 0.0), (2, 6, 0.5)] {
            let model = NCubeModel::new(NCubeConfig::new(k, n, 2, 16, 1e-10, h)).unwrap();
            let out = model.solve().unwrap();
            let expected = model.zero_load_latency();
            assert!(
                (out.latency - expected).abs() / expected < 1e-3,
                "k={k} n={n} h={h}: solved {} vs closed form {expected}",
                out.latency
            );
            assert!(out.source_wait_regular < 1e-3);
        }
    }

    #[test]
    fn single_ring_zero_load_is_half_circumference() {
        let model = NCubeModel::new(NCubeConfig::new(8, 1, 2, 16, 1e-10, 0.0)).unwrap();
        // One dimension, entry probability 1: Lm + k/2.
        assert!((model.zero_load_latency() - (16.0 + 4.0)).abs() < 1e-12);
        assert!(model.solve().is_ok());
    }

    #[test]
    fn latency_increases_with_load() {
        let mut prev = 0.0;
        for i in 1..=6 {
            let lambda = i as f64 * 2e-5;
            let out = solve(8, 3, lambda, 0.2).unwrap();
            assert!(
                out.latency > prev,
                "λ={lambda}: latency {} not increasing (prev {prev})",
                out.latency
            );
            prev = out.latency;
        }
    }

    #[test]
    fn latency_increases_with_hot_fraction() {
        let l20 = solve(8, 3, 5e-5, 0.2).unwrap().latency;
        let l40 = solve(8, 3, 5e-5, 0.4).unwrap().latency;
        let l70 = solve(8, 3, 5e-5, 0.7).unwrap().latency;
        assert!(l20 < l40 && l40 < l70, "{l20} {l40} {l70}");
    }

    #[test]
    fn saturates_near_the_flit_bound() {
        for (k, n, h) in [(4u32, 3u32, 0.3f64), (8, 3, 0.2), (4, 4, 0.5), (16, 2, 0.4)] {
            let mk = |lambda: f64| NCubeModel::new(NCubeConfig::new(k, n, 2, 16, lambda, h));
            let bound = mk(0.0).unwrap().flit_bound();
            assert!(
                mk(0.5 * bound).unwrap().solve().is_ok(),
                "k={k} n={n} h={h}: half the flit bound must solve"
            );
            assert!(
                mk(2.0 * bound).unwrap().solve().is_err(),
                "k={k} n={n} h={h}: twice the flit bound must saturate"
            );
        }
    }

    #[test]
    fn hot_messages_slower_than_regular_under_hot_load() {
        let out = solve(8, 3, 5e-5, 0.4).unwrap();
        assert!(
            out.hot_latency > out.regular_latency,
            "hot {} vs regular {}",
            out.hot_latency,
            out.regular_latency
        );
    }

    #[test]
    fn inner_dimensions_block_harder_under_hot_traffic() {
        // The funnel factor k^d makes the hot ring of a higher dimension
        // carry strictly more hot traffic, so its position-averaged
        // blocking and multiplexing dominate the lower dimensions'.
        let out = solve(8, 3, 5e-5, 0.4).unwrap();
        for d in 1..3 {
            assert!(
                out.blocking_hot[d] > out.blocking_hot[d - 1],
                "blocking {:?}",
                out.blocking_hot
            );
            assert!(out.vbar_hot[d] >= out.vbar_hot[d - 1]);
        }
        assert!(out.blocking_hot[0] >= out.blocking_nonhot);
    }

    #[test]
    fn hot_path_services_grow_towards_the_hot_node() {
        let out = solve(8, 3, 6e-5, 0.4).unwrap();
        for chain in &out.hot_path_services {
            for w in chain.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    fn h_zero_erases_the_hot_ring_asymmetry() {
        let out = solve(8, 3, 2e-3, 0.0).unwrap();
        for d in 0..3 {
            assert!(
                (out.blocking_hot[d] - out.blocking_nonhot).abs() < 1e-12,
                "h=0 asymmetry in dim {d}"
            );
            assert!((out.vbar_hot[d] - out.vbar_nonhot).abs() < 1e-12);
        }
    }

    #[test]
    fn warm_start_matches_cold_and_reports_fewer_iterations() {
        let mk = |lambda: f64| {
            let mut cfg = NCubeConfig::new(8, 3, 2, 16, lambda, 0.4);
            // The path-occupancy ablation actually iterates, so warm
            // starts have something to save.
            cfg.service_model = ServiceTimeModel::PathOccupancy;
            NCubeModel::new(cfg).unwrap()
        };
        let (out_a, state_a) = mk(4e-5).solve_warm(None).unwrap();
        let (out_b_cold, _) = mk(4.2e-5).solve_warm(None).unwrap();
        let (out_b_warm, _) = mk(4.2e-5).solve_warm(Some(&state_a)).unwrap();
        assert!(
            (out_b_warm.latency - out_b_cold.latency).abs() < 1e-6 * out_b_cold.latency,
            "warm {} vs cold {}",
            out_b_warm.latency,
            out_b_cold.latency
        );
        assert!(
            out_b_warm.iterations < out_b_cold.iterations,
            "warm {} vs cold {} iterations",
            out_b_warm.iterations,
            out_b_cold.iterations
        );
        assert!(out_a.iterations >= out_b_warm.iterations);
    }

    #[test]
    fn bad_warm_states_fall_back_to_the_cold_start() {
        let model = NCubeModel::new(NCubeConfig::new(8, 3, 2, 16, 5e-5, 0.2)).unwrap();
        let cold = model.solve().unwrap();
        for bad in [
            vec![],                                 // wrong length
            vec![1.0; 3],                           // wrong length
            vec![f64::NAN; model.state_len()],      // non-finite
            vec![-1.0; model.state_len()],          // negative
            vec![f64::INFINITY; model.state_len()], // non-finite
        ] {
            let (out, _) = model.solve_warm(Some(&bad)).unwrap();
            assert_eq!(out.latency.to_bits(), cold.latency.to_bits());
        }
    }

    #[test]
    fn state_len_matches_the_layout() {
        let model = NCubeModel::new(NCubeConfig::new(8, 3, 2, 16, 5e-5, 0.2)).unwrap();
        // 1 non-hot blocking + n hot blockings + n·(k-1) chain entries.
        assert_eq!(model.state_len(), 1 + 3 + 3 * 7);
        let (_, state) = model.solve_warm(None).unwrap();
        assert_eq!(state.len(), model.state_len());
    }

    #[test]
    fn eq10_mix_reproduces_the_headline_latency() {
        let h = 0.35;
        let out = solve(4, 4, 1e-4, h).unwrap();
        let mix = (1.0 - h) * out.regular_latency + h * out.hot_latency;
        assert!((mix - out.latency).abs() < 1e-9 * out.latency);
    }
}
