//! The paper's primary contribution: an analytical model of mean message
//! latency in deterministically-routed k-ary n-cubes under hot-spot traffic
//! (Loucif, Ould-Khaoua & Min, IPDPS 2005).
//!
//! The paper instantiates the analysis for the 2-D unidirectional torus
//! (`k`-ary 2-cube) with dimension-order (x-then-y) wormhole routing,
//! `V >= 2` virtual channels per physical channel, fixed `Lm`-flit
//! messages, Poisson sources of rate `λ` messages/node/cycle, and the
//! Pfister–Norton hot-spot destination model with hot fraction `h`.  This
//! crate carries the model at full generality — radix *and* dimension as
//! parameters — with the paper's 2-D solver as a thin specialization:
//!
//! * [`NCubeModel`] — the generalized solver for any `(k, n)`;
//! * [`HotSpotModel`] — the paper's 2-D API, numerically identical to
//!   [`NCubeModel`] at `n = 2`;
//! * [`HypercubeModel`] — the closed-form binary-hypercube model
//!   (reference \[12\]), which [`NCubeModel`] reproduces at `k = 2`.
//!
//! # Quick start
//!
//! ```
//! use kncube_core::{HotSpotModel, ModelConfig, NCubeConfig, NCubeModel};
//!
//! // The paper's 16-ary 2-cube…
//! let config = ModelConfig::paper_validation(16, 2, 32, 1e-4, 0.2);
//! let out = HotSpotModel::new(config).unwrap().solve().unwrap();
//! assert!(out.latency > 32.0); // at least the message length
//!
//! // …and an 8-ary 3-cube through the generalized entry point.
//! let cube = NCubeModel::new(NCubeConfig::new(8, 3, 2, 32, 1e-5, 0.2)).unwrap();
//! assert!(cube.solve().unwrap().latency > 32.0);
//! ```
//!
//! # Structure
//!
//! * [`rates`] — channel traffic rates, Eqs. (1)–(9) and their
//!   n-dimensional generalization;
//! * [`probabilities`] — route-case probabilities behind Eqs. (11)–(15),
//!   (22), (24) and (31)–(32), plus the generalized entry families;
//! * [`ncube`] — the generalized fixed-point solver and latency
//!   composition;
//! * [`solver`] — the paper's 2-D API (Eqs. 10–37) over the generalized
//!   solver;
//! * [`hypercube`] — the binary-hypercube comparison model (closed form);
//! * [`uniform`] — an independently-derived uniform-traffic baseline (the
//!   `h → 0` sanity anchor);
//! * [`faulty`] — the faulty-network model: the same queueing chain over
//!   the exact surviving-route substrate of a fault-aware router, which
//!   also covers the bidirectional and mesh geometries;
//! * [`sweep`] — load sweeps, warm-started continuation and saturation
//!   search, parallelised on a bounded rayon worker pool;
//! * [`cache`] — a solved-configuration memo behind a quantized key, the
//!   backbone of the batched query engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod faulty;
pub mod hypercube;
pub mod ncube;
pub mod probabilities;
pub mod rates;
pub mod solver;
pub mod sweep;
pub mod uniform;

pub use cache::SolveCache;
pub use faulty::{FaultyNCubeConfig, FaultyNCubeModel, FaultyNCubeOutput};
pub use hypercube::{HypercubeModel, HypercubeOutput};
pub use ncube::{NCubeConfig, NCubeModel, NCubeOutput};
pub use probabilities::{entry_cases, EntryCase, RegularRouteProbs};
pub use rates::{FaultyChannelRates, NCubeRates, Rates};
pub use solver::{
    HotSpotModel, ModelConfig, ModelError, ModelOutput, ModelVariant, MultiplexingModel,
    ServiceTimeModel,
};
pub use sweep::{
    faulty_latency_curve, find_saturation, find_saturation_faulty, find_saturation_faulty_report,
    find_saturation_ncube, find_saturation_ncube_report, find_saturation_report, latency_curve,
    ncube_latency_curve, ncube_latency_curve_continued, solve_continued, CurvePoint,
    FaultyCurvePoint, NCubeCurvePoint, SaturationError, SaturationReport,
};
pub use uniform::UniformModel;
