//! The paper's primary contribution: an analytical model of mean message
//! latency in deterministically-routed k-ary n-cubes under hot-spot traffic
//! (Loucif, Ould-Khaoua & Min, IPDPS 2005).
//!
//! The analysis covers the 2-D unidirectional torus (`k`-ary 2-cube) with
//! dimension-order (x-then-y) wormhole routing, `V >= 2` virtual channels
//! per physical channel, fixed `Lm`-flit messages, Poisson sources of rate
//! `λ` messages/node/cycle, and the Pfister–Norton hot-spot destination
//! model with hot fraction `h`.
//!
//! # Quick start
//!
//! ```
//! use kncube_core::{HotSpotModel, ModelConfig};
//!
//! let config = ModelConfig::paper_validation(16, 2, 32, 1e-4, 0.2);
//! let out = HotSpotModel::new(config).unwrap().solve().unwrap();
//! assert!(out.latency > 32.0); // at least the message length
//! ```
//!
//! # Structure
//!
//! * [`rates`] — channel traffic rates, Eqs. (1)–(9);
//! * [`probabilities`] — route-case probabilities behind Eqs. (11)–(15),
//!   (22), (24) and (31)–(32);
//! * [`solver`] — the fixed-point solution of the service-time recursions
//!   (Eqs. 16–25) and the latency composition (Eqs. 10–15, 21–24, 31–37);
//! * [`uniform`] — an independently-derived uniform-traffic baseline (the
//!   `h → 0` sanity anchor);
//! * [`sweep`] — load sweeps and saturation-point search, parallelised on
//!   a bounded rayon worker pool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hypercube;
pub mod probabilities;
pub mod rates;
pub mod solver;
pub mod sweep;
pub mod uniform;

pub use hypercube::{HypercubeModel, HypercubeOutput};
pub use probabilities::RegularRouteProbs;
pub use rates::Rates;
pub use solver::{
    HotSpotModel, ModelConfig, ModelError, ModelOutput, ModelVariant, MultiplexingModel,
    ServiceTimeModel,
};
pub use sweep::{find_saturation, latency_curve, CurvePoint, SaturationError};
pub use uniform::UniformModel;
