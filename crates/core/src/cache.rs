//! A solved-configuration cache for batched model queries.
//!
//! Design-space exploration re-solves the same neighbourhoods over and
//! over: Pareto scans, saturation bisections and user query batches all
//! revisit configurations that differ only in the last few bits of `λ` or
//! `h`.  [`SolveCache`] memoises [`NCubeModel`] solves behind a quantized
//! key so those revisits become lookups.
//!
//! # Never stale by construction
//!
//! The cache does **not** return "the solution of a nearby config".  A
//! request is first *snapped* to the quantization lattice
//! ([`SolveCache::quantize`] zeroes the low [`QUANT_DROP_BITS`] mantissa
//! bits of `λ` and `h`, a relative perturbation below `2⁻²⁰ ≈ 10⁻⁶`), and
//! what is solved — and cached — is exactly that snapped configuration.
//! Two requests that collide on a key are therefore the *same* lattice
//! configuration, and the cached entry is its exact solution; there is no
//! approximation radius to go stale.  The key also carries every
//! non-geometric knob that changes the numerics (model variant, service
//! model, multiplexing model, and the full fixed-point options including
//! the acceleration scheme), so an ablation run can never be served a
//! default-model entry.
//!
//! Failures are cached too: past `λ*` the solver burns its whole
//! iteration budget before reporting [`ModelError::NotConverged`], which
//! makes negative lookups the most valuable ones.
//!
//! The cache is shared across threads (`&SolveCache` is `Sync`); the map
//! lock is held only for lookups and inserts, never across a solve.

use crate::ncube::{NCubeConfig, NCubeModel, NCubeOutput};
use crate::solver::ModelError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Low mantissa bits of `λ` and `h` dropped by key quantization.  An f64
/// mantissa has 52 bits; dropping 32 keeps 20, for a worst-case relative
/// snap of `2⁻²⁰ ≈ 9.5 × 10⁻⁷` — far below the model's physical fidelity
/// and above the bit-noise that would otherwise fragment the cache.
pub const QUANT_DROP_BITS: u32 = 32;

fn quantize_f64(x: f64) -> f64 {
    if x == 0.0 {
        // Collapse -0.0 onto +0.0 so the two zero keys coincide.
        return 0.0;
    }
    f64::from_bits(x.to_bits() & !((1u64 << QUANT_DROP_BITS) - 1))
}

/// The exact-match key of one lattice configuration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct CacheKey {
    k: u32,
    n: u32,
    v: u32,
    lm: u32,
    lambda_bits: u64,
    h_bits: u64,
    variant: crate::solver::ModelVariant,
    service: crate::solver::ServiceTimeModel,
    multiplexing: crate::solver::MultiplexingModel,
    max_iterations: usize,
    tolerance_bits: u64,
    damping_bits: u64,
    acceleration: kncube_queueing::fixed_point::Acceleration,
}

impl CacheKey {
    fn of(cfg: &NCubeConfig) -> Self {
        CacheKey {
            k: cfg.k,
            n: cfg.n,
            v: cfg.virtual_channels,
            lm: cfg.message_length,
            lambda_bits: cfg.lambda.to_bits(),
            h_bits: cfg.hot_fraction.to_bits(),
            variant: cfg.variant,
            service: cfg.service_model,
            multiplexing: cfg.multiplexing,
            max_iterations: cfg.options.max_iterations,
            tolerance_bits: cfg.options.tolerance.to_bits(),
            damping_bits: cfg.options.damping.to_bits(),
            acceleration: cfg.options.acceleration,
        }
    }
}

#[derive(Clone)]
struct CacheEntry {
    output: Result<NCubeOutput, ModelError>,
    /// Converged fixed-point state, kept for warm-start chaining.
    state: Option<Vec<f64>>,
}

/// A thread-safe memo of [`NCubeModel`] solves over the quantization
/// lattice, with hit/miss accounting.
#[derive(Default)]
pub struct SolveCache {
    map: Mutex<HashMap<CacheKey, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SolveCache {
    /// An empty cache.
    pub fn new() -> Self {
        SolveCache::default()
    }

    /// Snap a configuration onto the quantization lattice: the returned
    /// config is what [`SolveCache::solve`] actually solves.  Idempotent;
    /// only `lambda` and `hot_fraction` change, each by a relative amount
    /// below `2⁻²⁰`.
    pub fn quantize(cfg: &NCubeConfig) -> NCubeConfig {
        NCubeConfig {
            lambda: quantize_f64(cfg.lambda),
            hot_fraction: quantize_f64(cfg.hot_fraction),
            ..*cfg
        }
    }

    /// Solve the quantized image of `cfg`, consulting the cache first.
    pub fn solve(&self, cfg: &NCubeConfig) -> Result<NCubeOutput, ModelError> {
        self.solve_with_warm(cfg, None).0
    }

    /// [`SolveCache::solve`] with warm-start chaining: `warm` seeds the
    /// fixed point on a miss, and the converged state (cached or fresh)
    /// comes back for the caller's next link in the chain.
    ///
    /// A hit returns the stored solution verbatim — including its
    /// `iterations` count, which reflects the warm state in effect when
    /// the entry was first solved, not the `warm` passed here.
    pub fn solve_with_warm(
        &self,
        cfg: &NCubeConfig,
        warm: Option<&[f64]>,
    ) -> (Result<NCubeOutput, ModelError>, Option<Vec<f64>>) {
        let snapped = Self::quantize(cfg);
        let key = CacheKey::of(&snapped);
        if let Some(entry) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (entry.output.clone(), entry.state.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (output, state) = match NCubeModel::new(snapped) {
            Ok(model) => match model.solve_warm(warm) {
                Ok((out, state)) => (Ok(out), Some(state)),
                Err(e) => (Err(e), None),
            },
            Err(e) => (Err(e), None),
        };
        let entry = CacheEntry {
            output: output.clone(),
            state: state.clone(),
        };
        // Racing threads may both have missed; keep the first insert so
        // concurrent readers of the same key always see one entry.
        self.map.lock().unwrap().entry(key).or_insert(entry);
        (output, state)
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to solve.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct lattice configurations stored.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the cache holds no entries yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::ServiceTimeModel;

    #[test]
    fn hit_returns_the_exact_solution_of_the_quantized_config() {
        let cache = SolveCache::new();
        let cfg = NCubeConfig::new(8, 3, 2, 16, 1.234_567_89e-5, 0.3);
        let via_cache = cache.solve(&cfg).unwrap();
        let direct = NCubeModel::new(SolveCache::quantize(&cfg))
            .unwrap()
            .solve()
            .unwrap();
        assert_eq!(via_cache.latency.to_bits(), direct.latency.to_bits());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 1);
        // Asking again is a hit with the identical answer.
        let again = cache.solve(&cfg).unwrap();
        assert_eq!(again.latency.to_bits(), via_cache.latency.to_bits());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn nearby_lambdas_collapse_onto_one_lattice_point() {
        let cache = SolveCache::new();
        let a = NCubeConfig::new(8, 3, 2, 16, 1e-5, 0.3);
        // Perturb λ by one ulp-scale nudge far below the lattice spacing.
        let b = NCubeConfig {
            lambda: f64::from_bits(a.lambda.to_bits() + 3),
            ..a
        };
        assert_ne!(a.lambda.to_bits(), b.lambda.to_bits());
        let ra = cache.solve(&a).unwrap();
        let rb = cache.solve(&b).unwrap();
        assert_eq!(ra.latency.to_bits(), rb.latency.to_bits());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_solver_options_get_distinct_entries() {
        use kncube_queueing::fixed_point::Acceleration;
        let cache = SolveCache::new();
        let mut a = NCubeConfig::new(8, 3, 2, 16, 1e-5, 0.3);
        a.service_model = ServiceTimeModel::PathOccupancy;
        let mut b = a;
        b.options.acceleration = Acceleration::Anderson { depth: 4 };
        cache.solve(&a).unwrap();
        cache.solve(&b).unwrap();
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn failures_are_cached_as_failures() {
        let cache = SolveCache::new();
        // Far past saturation for the paper geometry.
        let cfg = NCubeConfig::new(16, 2, 2, 32, 5e-3, 0.2);
        let first = cache.solve(&cfg).unwrap_err();
        let second = cache.solve(&cfg).unwrap_err();
        assert!(matches!(first, ModelError::Saturated { .. }), "{first:?}");
        assert_eq!(first, second);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn quantization_is_idempotent_and_small() {
        for x in [0.0, -0.0, 1e-5, 0.3, 0.999_999, 123.456e-7] {
            let q = quantize_f64(x);
            assert_eq!(q.to_bits(), quantize_f64(q).to_bits());
            if x != 0.0 {
                assert!(((x - q) / x).abs() < 1e-6, "{x} vs {q}");
            } else {
                assert_eq!(q.to_bits(), 0.0f64.to_bits());
            }
        }
    }

    #[test]
    fn warm_chaining_through_the_cache_matches_cold_answers() {
        let mut base = NCubeConfig::new(8, 3, 2, 16, 0.0, 0.3);
        base.service_model = ServiceTimeModel::PathOccupancy;
        let cache = SolveCache::new();
        let mut warm: Option<Vec<f64>> = None;
        for i in 1..=10 {
            let cfg = NCubeConfig {
                lambda: i as f64 * 2e-6,
                ..base
            };
            let (out, state) = cache.solve_with_warm(&cfg, warm.as_deref());
            let out = out.unwrap();
            let cold = NCubeModel::new(SolveCache::quantize(&cfg))
                .unwrap()
                .solve()
                .unwrap();
            assert!(
                (out.latency - cold.latency).abs() <= 1e-6 * cold.latency,
                "λ index {i}: warm {} vs cold {}",
                out.latency,
                cold.latency
            );
            warm = state;
        }
        assert_eq!(cache.misses(), 10);
    }
}
