//! A solved-configuration cache for batched model queries.
//!
//! Design-space exploration re-solves the same neighbourhoods over and
//! over: Pareto scans, saturation bisections and user query batches all
//! revisit configurations that differ only in the last few bits of `λ` or
//! `h`.  [`SolveCache`] memoises [`NCubeModel`] solves behind a quantized
//! key so those revisits become lookups.
//!
//! # Never stale by construction
//!
//! The cache does **not** return "the solution of a nearby config".  A
//! request is first *snapped* to the quantization lattice
//! ([`SolveCache::quantize`] zeroes the low [`QUANT_DROP_BITS`] mantissa
//! bits of `λ` and `h`, a relative perturbation below `2⁻²⁰ ≈ 10⁻⁶`), and
//! what is solved — and cached — is exactly that snapped configuration.
//! Two requests that collide on a key are therefore the *same* lattice
//! configuration, and the cached entry is its exact solution; there is no
//! approximation radius to go stale.  The key also carries every
//! non-geometric knob that changes the numerics (model variant, service
//! model, multiplexing model, and the full fixed-point options including
//! the acceleration scheme), so an ablation run can never be served a
//! default-model entry.
//!
//! Failures are cached too: past `λ*` the solver burns its whole
//! iteration budget before reporting [`ModelError::NotConverged`], which
//! makes negative lookups the most valuable ones.
//!
//! The cache is shared across threads (`&SolveCache` is `Sync`); the map
//! lock is held only for lookups and inserts, never across a solve.

use crate::faulty::{FaultyNCubeConfig, FaultyNCubeModel, FaultyNCubeOutput};
use crate::ncube::{NCubeConfig, NCubeModel, NCubeOutput};
use crate::solver::ModelError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Low mantissa bits of `λ` and `h` dropped by key quantization.  An f64
/// mantissa has 52 bits; dropping 32 keeps 20, for a worst-case relative
/// snap of `2⁻²⁰ ≈ 9.5 × 10⁻⁷` — far below the model's physical fidelity
/// and above the bit-noise that would otherwise fragment the cache.
pub const QUANT_DROP_BITS: u32 = 32;

fn quantize_f64(x: f64) -> f64 {
    if x == 0.0 {
        // Collapse -0.0 onto +0.0 so the two zero keys coincide.
        return 0.0;
    }
    f64::from_bits(x.to_bits() & !((1u64 << QUANT_DROP_BITS) - 1))
}

/// The exact-match key of one lattice configuration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct CacheKey {
    k: u32,
    n: u32,
    v: u32,
    lm: u32,
    lambda_bits: u64,
    h_bits: u64,
    variant: crate::solver::ModelVariant,
    service: crate::solver::ServiceTimeModel,
    multiplexing: crate::solver::MultiplexingModel,
    max_iterations: usize,
    tolerance_bits: u64,
    damping_bits: u64,
    acceleration: kncube_queueing::fixed_point::Acceleration,
}

impl CacheKey {
    fn of(cfg: &NCubeConfig) -> Self {
        CacheKey {
            k: cfg.k,
            n: cfg.n,
            v: cfg.virtual_channels,
            lm: cfg.message_length,
            lambda_bits: cfg.lambda.to_bits(),
            h_bits: cfg.hot_fraction.to_bits(),
            variant: cfg.variant,
            service: cfg.service_model,
            multiplexing: cfg.multiplexing,
            max_iterations: cfg.options.max_iterations,
            tolerance_bits: cfg.options.tolerance.to_bits(),
            damping_bits: cfg.options.damping.to_bits(),
            acceleration: cfg.options.acceleration,
        }
    }
}

/// The exact-match key of one faulty-network lattice configuration.
///
/// The fault set enters through [`FaultSet::fingerprint`], which digests
/// the failed-element bitmaps *and* the topology (k, n, link kind,
/// boundary): two different fault sets — even with identical failure
/// counts on the same geometry — can never alias, and neither can the
/// same fault pattern on different topologies.
///
/// [`FaultSet::fingerprint`]: kncube_topology::FaultSet::fingerprint
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct FaultyCacheKey {
    fault_fingerprint: u64,
    hot_node: u32,
    v: u32,
    lm: u32,
    lambda_bits: u64,
    h_bits: u64,
    multiplexing: crate::solver::MultiplexingModel,
}

impl FaultyCacheKey {
    fn of(cfg: &FaultyNCubeConfig) -> Self {
        FaultyCacheKey {
            fault_fingerprint: cfg.faults.fingerprint(),
            hot_node: cfg.hot_node.0,
            v: cfg.virtual_channels,
            lm: cfg.message_length,
            lambda_bits: cfg.lambda.to_bits(),
            h_bits: cfg.hot_fraction.to_bits(),
            multiplexing: cfg.multiplexing,
        }
    }
}

#[derive(Clone)]
struct CacheEntry {
    output: Result<NCubeOutput, ModelError>,
    /// Converged fixed-point state, kept for warm-start chaining.
    state: Option<Vec<f64>>,
}

/// A thread-safe memo of [`NCubeModel`] solves over the quantization
/// lattice, with hit/miss accounting.  Faulty-network solves
/// ([`SolveCache::solve_faulty`]) share the hit/miss counters but live in
/// their own keyspace, keyed by the fault-set fingerprint.
#[derive(Default)]
pub struct SolveCache {
    map: Mutex<HashMap<CacheKey, CacheEntry>>,
    faulty_map: Mutex<HashMap<FaultyCacheKey, Result<FaultyNCubeOutput, ModelError>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SolveCache {
    /// An empty cache.
    pub fn new() -> Self {
        SolveCache::default()
    }

    /// Snap a configuration onto the quantization lattice: the returned
    /// config is what [`SolveCache::solve`] actually solves.  Idempotent;
    /// only `lambda` and `hot_fraction` change, each by a relative amount
    /// below `2⁻²⁰`.
    pub fn quantize(cfg: &NCubeConfig) -> NCubeConfig {
        NCubeConfig {
            lambda: quantize_f64(cfg.lambda),
            hot_fraction: quantize_f64(cfg.hot_fraction),
            ..*cfg
        }
    }

    /// Solve the quantized image of `cfg`, consulting the cache first.
    pub fn solve(&self, cfg: &NCubeConfig) -> Result<NCubeOutput, ModelError> {
        self.solve_with_warm(cfg, None).0
    }

    /// [`SolveCache::solve`] with warm-start chaining: `warm` seeds the
    /// fixed point on a miss, and the converged state (cached or fresh)
    /// comes back for the caller's next link in the chain.
    ///
    /// A hit returns the stored solution verbatim — including its
    /// `iterations` count, which reflects the warm state in effect when
    /// the entry was first solved, not the `warm` passed here.
    pub fn solve_with_warm(
        &self,
        cfg: &NCubeConfig,
        warm: Option<&[f64]>,
    ) -> (Result<NCubeOutput, ModelError>, Option<Vec<f64>>) {
        let snapped = Self::quantize(cfg);
        let key = CacheKey::of(&snapped);
        if let Some(entry) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (entry.output.clone(), entry.state.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (output, state) = match NCubeModel::new(snapped) {
            Ok(model) => match model.solve_warm(warm) {
                Ok((out, state)) => (Ok(out), Some(state)),
                Err(e) => (Err(e), None),
            },
            Err(e) => (Err(e), None),
        };
        let entry = CacheEntry {
            output: output.clone(),
            state: state.clone(),
        };
        // Racing threads may both have missed; keep the first insert so
        // concurrent readers of the same key always see one entry.
        self.map.lock().unwrap().entry(key).or_insert(entry);
        (output, state)
    }

    /// Snap a faulty configuration onto the quantization lattice, the
    /// faulty counterpart of [`SolveCache::quantize`]: only `lambda` and
    /// `hot_fraction` move, by a relative amount below `2⁻²⁰`; the fault
    /// set is carried verbatim (it is exact, not a continuum knob).
    pub fn quantize_faulty(cfg: &FaultyNCubeConfig) -> FaultyNCubeConfig {
        FaultyNCubeConfig {
            lambda: quantize_f64(cfg.lambda),
            hot_fraction: quantize_f64(cfg.hot_fraction),
            ..cfg.clone()
        }
    }

    /// Solve the quantized image of a faulty-network configuration,
    /// consulting the cache first.  The key includes the fault-set
    /// fingerprint, so two different [`FaultSet`]s never share an entry
    /// even when every scalar knob coincides.
    ///
    /// [`FaultSet`]: kncube_topology::FaultSet
    pub fn solve_faulty(&self, cfg: &FaultyNCubeConfig) -> Result<FaultyNCubeOutput, ModelError> {
        let snapped = Self::quantize_faulty(cfg);
        let key = FaultyCacheKey::of(&snapped);
        if let Some(entry) = self.faulty_map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return entry.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let output = FaultyNCubeModel::new(snapped).and_then(|m| m.solve());
        // First insert wins on a miss race, as for the fault-free map.
        self.faulty_map
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| output.clone());
        output
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to solve.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct fault-free lattice configurations stored.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Number of distinct faulty-network lattice configurations stored.
    pub fn faulty_len(&self) -> usize {
        self.faulty_map.lock().unwrap().len()
    }

    /// Whether the cache holds no entries yet (of either kind).
    pub fn is_empty(&self) -> bool {
        self.len() == 0 && self.faulty_len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::ServiceTimeModel;

    #[test]
    fn hit_returns_the_exact_solution_of_the_quantized_config() {
        let cache = SolveCache::new();
        let cfg = NCubeConfig::new(8, 3, 2, 16, 1.234_567_89e-5, 0.3);
        let via_cache = cache.solve(&cfg).unwrap();
        let direct = NCubeModel::new(SolveCache::quantize(&cfg))
            .unwrap()
            .solve()
            .unwrap();
        assert_eq!(via_cache.latency.to_bits(), direct.latency.to_bits());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 1);
        // Asking again is a hit with the identical answer.
        let again = cache.solve(&cfg).unwrap();
        assert_eq!(again.latency.to_bits(), via_cache.latency.to_bits());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn nearby_lambdas_collapse_onto_one_lattice_point() {
        let cache = SolveCache::new();
        let a = NCubeConfig::new(8, 3, 2, 16, 1e-5, 0.3);
        // Perturb λ by one ulp-scale nudge far below the lattice spacing.
        let b = NCubeConfig {
            lambda: f64::from_bits(a.lambda.to_bits() + 3),
            ..a
        };
        assert_ne!(a.lambda.to_bits(), b.lambda.to_bits());
        let ra = cache.solve(&a).unwrap();
        let rb = cache.solve(&b).unwrap();
        assert_eq!(ra.latency.to_bits(), rb.latency.to_bits());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_solver_options_get_distinct_entries() {
        use kncube_queueing::fixed_point::Acceleration;
        let cache = SolveCache::new();
        let mut a = NCubeConfig::new(8, 3, 2, 16, 1e-5, 0.3);
        a.service_model = ServiceTimeModel::PathOccupancy;
        let mut b = a;
        b.options.acceleration = Acceleration::Anderson { depth: 4 };
        cache.solve(&a).unwrap();
        cache.solve(&b).unwrap();
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn failures_are_cached_as_failures() {
        let cache = SolveCache::new();
        // Far past saturation for the paper geometry.
        let cfg = NCubeConfig::new(16, 2, 2, 32, 5e-3, 0.2);
        let first = cache.solve(&cfg).unwrap_err();
        let second = cache.solve(&cfg).unwrap_err();
        assert!(matches!(first, ModelError::Saturated { .. }), "{first:?}");
        assert_eq!(first, second);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn quantization_is_idempotent_and_small() {
        for x in [0.0, -0.0, 1e-5, 0.3, 0.999_999, 123.456e-7] {
            let q = quantize_f64(x);
            assert_eq!(q.to_bits(), quantize_f64(q).to_bits());
            if x != 0.0 {
                assert!(((x - q) / x).abs() < 1e-6, "{x} vs {q}");
            } else {
                assert_eq!(q.to_bits(), 0.0f64.to_bits());
            }
        }
    }

    #[test]
    fn faulty_entries_never_alias_across_distinct_fault_sets() {
        // Regression: with the fault-set fingerprint missing from the key,
        // two *different* fault sets with identical scalar knobs (same
        // topology, counts, λ, h, V, Lm) would silently share one entry —
        // the second lookup would return the first set's latency.  Both
        // sets here fail exactly one router, at different distances from
        // the hot node, so their correct latencies differ.
        use kncube_topology::{FaultSet, KAryNCube, NodeId};
        let topo = KAryNCube::bidirectional(4, 2).unwrap();
        let mut near = FaultSet::none(topo);
        near.fail_node(NodeId(1));
        let mut far = FaultSet::none(topo);
        far.fail_node(NodeId(10));
        let lambda = 2e-3;
        let cfg_near = FaultyNCubeConfig::new(near, 2, 16, lambda, 0.2);
        let cfg_far = FaultyNCubeConfig::new(far, 2, 16, lambda, 0.2);

        let cache = SolveCache::new();
        let first = cache.solve_faulty(&cfg_near).unwrap();
        let second = cache.solve_faulty(&cfg_far).unwrap();
        // Two entries, two misses: no aliasing.
        assert_eq!(cache.faulty_len(), 2);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        // Each cached answer is the exact solution of its own fault set.
        for (cfg, got) in [(&cfg_near, &first), (&cfg_far, &second)] {
            let direct = FaultyNCubeModel::new(SolveCache::quantize_faulty(cfg))
                .unwrap()
                .solve()
                .unwrap();
            assert_eq!(got.latency.to_bits(), direct.latency.to_bits());
        }
        assert_ne!(first.latency.to_bits(), second.latency.to_bits());
        // And re-asking hits the right entry.
        let again = cache.solve_faulty(&cfg_near).unwrap();
        assert_eq!(again.latency.to_bits(), first.latency.to_bits());
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn faulty_and_fault_free_keyspaces_are_disjoint() {
        use kncube_topology::{FaultSet, KAryNCube};
        let cache = SolveCache::new();
        // A faulty solve of the empty set on a uni torus delegates to the
        // closed-form model, but must not collide with (or populate) the
        // fault-free memo's keyspace.
        let topo = KAryNCube::unidirectional(8, 2).unwrap();
        let fcfg = FaultyNCubeConfig::new(FaultSet::none(topo), 2, 16, 1e-4, 0.2);
        let via_faulty = cache.solve_faulty(&fcfg).unwrap();
        assert!(via_faulty.delegated);
        assert_eq!((cache.len(), cache.faulty_len()), (0, 1));
        let ncfg = NCubeConfig::new(8, 2, 2, 16, 1e-4, 0.2);
        let via_plain = cache.solve(&ncfg).unwrap();
        assert_eq!((cache.len(), cache.faulty_len()), (1, 1));
        // Same physical configuration: the answers agree bit-for-bit
        // through both keyspaces (the bit-exact reduction).
        assert_eq!(via_faulty.latency.to_bits(), via_plain.latency.to_bits());
        assert_eq!(cache.misses(), 2);
        assert!(!cache.is_empty());
    }

    #[test]
    fn faulty_quantization_collapses_nearby_lambdas() {
        use kncube_topology::{Channel, Direction, FaultSet, KAryNCube, NodeId};
        let topo = KAryNCube::mesh(4, 2).unwrap();
        let mut faults = FaultSet::none(topo);
        faults.fail_link(Channel {
            from: NodeId(5),
            dim: 0,
            direction: Direction::Plus,
        });
        let a = FaultyNCubeConfig::new(faults, 2, 16, 1e-3, 0.2);
        let mut b = a.clone();
        b.lambda = f64::from_bits(a.lambda.to_bits() + 3);
        let cache = SolveCache::new();
        let ra = cache.solve_faulty(&a).unwrap();
        let rb = cache.solve_faulty(&b).unwrap();
        assert_eq!(ra.latency.to_bits(), rb.latency.to_bits());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.faulty_len(), 1);
    }

    #[test]
    fn warm_chaining_through_the_cache_matches_cold_answers() {
        let mut base = NCubeConfig::new(8, 3, 2, 16, 0.0, 0.3);
        base.service_model = ServiceTimeModel::PathOccupancy;
        let cache = SolveCache::new();
        let mut warm: Option<Vec<f64>> = None;
        for i in 1..=10 {
            let cfg = NCubeConfig {
                lambda: i as f64 * 2e-6,
                ..base
            };
            let (out, state) = cache.solve_with_warm(&cfg, warm.as_deref());
            let out = out.unwrap();
            let cold = NCubeModel::new(SolveCache::quantize(&cfg))
                .unwrap()
                .solve()
                .unwrap();
            assert!(
                (out.latency - cold.latency).abs() <= 1e-6 * cold.latency,
                "λ index {i}: warm {} vs cold {}",
                out.latency,
                cold.latency
            );
            warm = state;
        }
        assert_eq!(cache.misses(), 10);
    }
}
