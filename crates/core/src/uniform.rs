//! Independently-derived uniform-traffic baseline model.
//!
//! Before the hot-spot model, the literature (Dally \[4\], Draper & Ghosh
//! \[6\], Ould-Khaoua \[18\]) modelled deterministically-routed k-ary
//! n-cubes under *uniform* traffic.  This module implements such a model
//! for the 2-D unidirectional torus from first principles — deliberately
//! *not* by setting `h = 0` in the hot-spot solver — so the two
//! implementations can cross-validate each other (see the `h → 0` tests in
//! the facade crate).
//!
//! Structure: with uniform traffic every channel of a dimension carries the
//! same rate `λ_c = λ k̄` and the per-channel service-time recursions
//! collapse to one family per dimension:
//!
//! ```text
//! S_y,j = 1 + B(λ_c, S_y,k̄) + { Lm            j = 1
//!                              { S_y,j-1       j > 1
//! S_x,j = 1 + B(λ_c, S_x,k̄) + { Lm/k + (1-1/k)·S_y,k̄   j = 1
//!                              { S_x,j-1                 j > 1
//! ```
//!
//! (after the last x channel a message is done with probability `1/k` —
//! its destination shares the source's y coordinate — and otherwise
//! continues into its destination column).  The latency composition mixes
//! the two entrance cases `P(enter via x) = k/(k+1)`,
//! `P(y only) = 1/(k+1)`, adds the M/G/1 source wait at rate `λ/V`, and
//! scales by the multiplexing degree of Eqs. (33)–(35).

use crate::solver::{ModelError, ServiceTimeModel};
use kncube_queueing::blocking::{blocking_delay, channel_utilization, TrafficClass};
use kncube_queueing::fixed_point::{self, FixedPointError, FixedPointOptions};
use kncube_queueing::mg1;
use kncube_queueing::vc_multiplex::multiplexing_factor;

/// Utilization cap mirroring the hot-spot solver's.
const RHO_CAP: f64 = 1.0 - 1e-7;

/// The uniform-traffic baseline model.
///
/// ```
/// use kncube_core::UniformModel;
/// let model = UniformModel::new(16, 2, 32, 5e-4);
/// let out = model.solve().unwrap();
/// // Light uniform load: slightly above the contention-free latency.
/// assert!(out.latency > out.network_latency - 1e-9);
/// assert!(out.latency < 80.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct UniformModel {
    /// Radix of the `k × k` unidirectional torus.
    pub k: u32,
    /// Virtual channels per physical channel.
    pub virtual_channels: u32,
    /// Message length in flits.
    pub message_length: u32,
    /// Per-node generation rate, messages/cycle.
    pub lambda: f64,
    /// Channel service-time model (see [`ServiceTimeModel`]).
    pub service_model: ServiceTimeModel,
    /// Iteration controls.
    pub options: FixedPointOptions,
}

/// Solved baseline latency and diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct UniformOutput {
    /// Mean message latency in cycles.
    pub latency: f64,
    /// Mean network latency (no source wait, no multiplexing scaling).
    pub network_latency: f64,
    /// Source-queue wait.
    pub source_wait: f64,
    /// Average multiplexing degree.
    pub vbar: f64,
    /// Channel utilization `λ_c · S` at the solution.
    pub utilization: f64,
}

impl UniformModel {
    /// Construct with defaults mirroring [`crate::ModelConfig`].
    pub fn new(k: u32, virtual_channels: u32, message_length: u32, lambda: f64) -> Self {
        UniformModel {
            k,
            virtual_channels,
            message_length,
            lambda,
            service_model: ServiceTimeModel::default(),
            options: FixedPointOptions::default(),
        }
    }

    /// Per-channel rate `λ_c = λ (k-1)/2`.
    pub fn channel_rate(&self) -> f64 {
        self.lambda * (self.k as f64 - 1.0) / 2.0
    }

    /// Solve the baseline model.
    pub fn solve(&self) -> Result<UniformOutput, ModelError> {
        if self.k < 2 {
            return Err(ModelError::BadConfig("radix k must be >= 2".into()));
        }
        let k = self.k as usize;
        let m = k - 1;
        let kf = self.k as f64;
        let lm = self.message_length as f64;
        let lc = self.channel_rate();

        // Entrance-averaged channel *holding* time of a family (see
        // `ServiceTimeModel`): pipelined transfer `Lm + 1` by default, or
        // header-plus-remaining-path for the path-occupancy ablation.
        let service_model = self.service_model;
        let family_hold = move |family: &[f64]| -> f64 {
            match service_model {
                ServiceTimeModel::PipelinedTransfer => lm + 1.0,
                ServiceTimeModel::PathOccupancy => {
                    1.0 + (lm + family[..m - 1].iter().sum::<f64>()) / m as f64
                }
            }
        };

        // State: [S_y,1..m  |  S_x,1..m (x-only)  |  S_xy,1..m (x then y)].
        let mut initial = vec![0.0; 3 * m];
        for j in 1..=m {
            initial[j - 1] = j as f64 + lm;
            initial[m + j - 1] = j as f64 + lm;
            initial[2 * m + j - 1] = j as f64 + lm + kf / 2.0;
        }
        let report = fixed_point::solve(initial, self.options, |state, next| {
            let h_y = family_hold(&state[0..m]);
            let h_x = family_hold(&state[m..2 * m]);
            let s_y_k = state[0..m].iter().sum::<f64>() / m as f64;
            let b_y = blocking_delay(
                TrafficClass::new(lc, h_y),
                TrafficClass::none(),
                lm,
                RHO_CAP,
            );
            let b_x = blocking_delay(
                TrafficClass::new(lc, h_x),
                TrafficClass::none(),
                lm,
                RHO_CAP,
            );
            // Gauss-Seidel within the sweep: the chains are exact given the
            // blocking terms (see the solver's update for the rationale).
            for j in 1..=m {
                next[j - 1] = 1.0 + b_y + if j == 1 { lm } else { next[j - 2] };
                next[m + j - 1] = 1.0 + b_x + if j == 1 { lm } else { next[m + j - 2] };
                let tail = if j == 1 { s_y_k } else { next[2 * m + j - 2] };
                next[2 * m + j - 1] = 1.0 + b_x + tail;
            }
        })
        .map_err(|e| match e {
            FixedPointError::NonFinite | FixedPointError::NotConverged => ModelError::NotConverged,
        })?;

        let state = &report.state;
        let s_y_k = state[0..m].iter().sum::<f64>() / m as f64;
        let s_x_k = state[m..2 * m].iter().sum::<f64>() / m as f64;
        let s_xy_k = state[2 * m..3 * m].iter().sum::<f64>() / m as f64;
        let h_y = family_hold(&state[0..m]);
        let h_x = family_hold(&state[m..2 * m]);

        let util = channel_utilization(TrafficClass::new(lc, h_x.max(h_y)), TrafficClass::none());
        if util >= 1.0 {
            return Err(ModelError::Saturated {
                max_utilization: util,
            });
        }

        // Entrance mix: P(y only) = 1/(k+1); P(enter via x) = k/(k+1),
        // splitting 1/k x-only vs (k-1)/k continuing into y.
        let p_x = kf / (kf + 1.0);
        let p_y = 1.0 / (kf + 1.0);
        let network_latency = p_x * (s_x_k / kf + (1.0 - 1.0 / kf) * s_xy_k) + p_y * s_y_k;

        let vc_rate = self.lambda / self.virtual_channels as f64;
        let source_wait = mg1::waiting_time(vc_rate, network_latency, lm).map_err(|sat| {
            ModelError::Saturated {
                max_utilization: sat.rho,
            }
        })?;

        let vbar_x = multiplexing_factor(lc * h_x, self.virtual_channels);
        let vbar_y = multiplexing_factor(lc * h_y, self.virtual_channels);
        let vbar = (vbar_x + vbar_y) / 2.0;

        Ok(UniformOutput {
            latency: (network_latency + source_wait) * vbar,
            network_latency,
            source_wait,
            vbar,
            utilization: util,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_load_is_hops_plus_length() {
        let m = UniformModel::new(16, 2, 32, 1e-9);
        let out = m.solve().unwrap();
        // Zero-load family latencies: one-dimension trips average
        // k/2 + Lm; x-then-y trips average k + Lm. Composed over the
        // entrance mix:
        let kf = 16.0;
        let one = kf / 2.0 + 32.0;
        let two = kf + 32.0;
        let expected =
            (kf / (kf + 1.0)) * (one / kf + (1.0 - 1.0 / kf) * two) + (1.0 / (kf + 1.0)) * one;
        assert!(
            (out.latency - expected).abs() < 0.1,
            "latency {} vs {}",
            out.latency,
            expected
        );
    }

    #[test]
    fn latency_monotone_in_load_until_saturation() {
        let mut prev = 0.0;
        for i in 1..=10 {
            let lambda = i as f64 * 1e-4;
            let out = UniformModel::new(16, 2, 32, lambda).solve().unwrap();
            assert!(out.latency > prev);
            prev = out.latency;
        }
    }

    #[test]
    fn saturates_when_channel_utilization_reaches_one() {
        // λ_c·(Lm+1) = λ·7.5·33 → saturation at λ* ≈ 4.04e-3.
        assert!(UniformModel::new(16, 2, 32, 2e-3).solve().is_ok());
        assert!(UniformModel::new(16, 2, 32, 4.5e-3).solve().is_err());
    }

    #[test]
    fn uniform_traffic_outlives_hot_spot_loads() {
        // The whole point of the paper: hot spots saturate the network at a
        // small fraction of the uniform-traffic capacity. The uniform model
        // is perfectly happy at λ = 1e-3 where h=0.2 hot-spot traffic
        // long since collapsed.
        assert!(UniformModel::new(16, 2, 32, 1e-3).solve().is_ok());
    }
}
