//! Channel traffic rates: Eqs. (1)–(9) of the paper, generalized to
//! arbitrary k-ary n-cubes.
//!
//! Regular (uniform-destination) traffic loads every channel of a dimension
//! equally; hot-spot traffic concentrates on the channels that funnel into
//! the hot-spot node.  With dimension-order routing on the unidirectional
//! n-cube:
//!
//! * every hot-spot message corrects its dimensions in ascending order, so
//!   its dimension-`d` movement happens inside the *hot ring of dimension
//!   `d`* (the ring matching the hot node on every dimension below `d`);
//! * the hot dimension-`d` channel `j` hops from the hot coordinate carries
//!   the hot traffic of the `k^d (k - j)` nodes that funnel through it —
//!   the product-over-rings generalization of Eqs. (4)–(7), whose 2-D
//!   instances are the paper's `k - j` (x, Eqs. 4/6) and `k(k - j)`
//!   (hot y-ring, Eqs. 5/7).

/// Per-channel traffic rates for a k-ary n-cube at a given load —
/// Eqs. (1)–(9) with dimension as a parameter.
#[derive(Clone, Copy, Debug)]
pub struct NCubeRates {
    k: u32,
    n: u32,
    lambda: f64,
    hot_fraction: f64,
}

impl NCubeRates {
    /// Rates for a unidirectional k-ary n-cube with per-node generation
    /// rate `lambda` and hot fraction `hot_fraction`.
    pub fn new(k: u32, n: u32, lambda: f64, hot_fraction: f64) -> Self {
        assert!(k >= 2);
        assert!(n >= 1);
        assert!(lambda >= 0.0);
        assert!((0.0..=1.0).contains(&hot_fraction));
        NCubeRates {
            k,
            n,
            lambda,
            hot_fraction,
        }
    }

    /// Eq. (1): mean channels crossed per dimension by a regular message,
    /// `k̄ = (k-1)/2` (the paper's convention: the average includes
    /// destinations needing no movement in the dimension).
    pub fn mean_hops_per_dim(&self) -> f64 {
        (self.k as f64 - 1.0) / 2.0
    }

    /// Eq. (2): mean channels crossed in the whole network, `d̄ = n k̄`.
    pub fn mean_hops_total(&self) -> f64 {
        self.n as f64 * self.mean_hops_per_dim()
    }

    /// Eq. (3): regular traffic rate on any channel of any dimension,
    /// `λ_r = λ (1-h) k̄`.
    ///
    /// Derivation: each of the `N` nodes generates `λ(1-h)` regular
    /// messages/cycle, each crossing `k̄` channels per dimension on
    /// average; a dimension has `N` channels, so the per-channel rate is
    /// `N·λ(1-h)·k̄ / N` — independent of the dimension count.
    pub fn regular_channel_rate(&self) -> f64 {
        self.lambda * (1.0 - self.hot_fraction) * self.mean_hops_per_dim()
    }

    /// Generalized Eqs. (4)–(7): hot-spot traffic rate on the hot
    /// dimension-`dim` channel `j` hops from the hot coordinate
    /// (`1 <= j <= k`): `λ^h_{d,j} = N λ h P_{h,d,j} = λ h k^d (k-j)`.
    pub fn hot_rate(&self, dim: u32, j: u32) -> f64 {
        assert!(dim < self.n);
        assert!((1..=self.k).contains(&j));
        let funnel = (self.k as u64).pow(dim) * (self.k - j) as u64;
        self.lambda * self.hot_fraction * funnel as f64
    }

    /// Generalized Eqs. (8)–(9): total rate on the hot dimension-`dim`
    /// channel `j` hops from the hot coordinate.
    pub fn total_rate(&self, dim: u32, j: u32) -> f64 {
        self.regular_channel_rate() + self.hot_rate(dim, j)
    }

    /// The radix.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The dimension count.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Per-node generation rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Hot fraction `h`.
    pub fn hot_fraction(&self) -> f64 {
        self.hot_fraction
    }
}

/// The paper's 2-D rates (Eqs. 1–9 as printed): the `n = 2` specialization
/// of [`NCubeRates`] under the paper's x/y naming.
#[derive(Clone, Copy, Debug)]
pub struct Rates {
    inner: NCubeRates,
}

impl Rates {
    /// Rates for a `k × k` unidirectional torus with per-node generation
    /// rate `lambda` and hot fraction `hot_fraction`.
    pub fn new(k: u32, lambda: f64, hot_fraction: f64) -> Self {
        Rates {
            inner: NCubeRates::new(k, 2, lambda, hot_fraction),
        }
    }

    /// Eq. (1): mean channels crossed per dimension by a regular message,
    /// `k̄ = (k-1)/2`.
    pub fn mean_hops_per_dim(&self) -> f64 {
        self.inner.mean_hops_per_dim()
    }

    /// Eq. (2): mean channels crossed in the whole 2-D network,
    /// `d̄ = 2 k̄`.
    pub fn mean_hops_total(&self) -> f64 {
        self.inner.mean_hops_total()
    }

    /// Eq. (3): regular traffic rate on any channel of either dimension,
    /// `λ_r = λ (1-h) k̄`.
    pub fn regular_channel_rate(&self) -> f64 {
        self.inner.regular_channel_rate()
    }

    /// Eqs. (4) & (6): hot-spot traffic rate on an x-channel `j` hops from
    /// the hot y-ring (`1 <= j <= k`): `λ^h_x,j = N λ h P_hx,j = λ h (k-j)`.
    pub fn hot_rate_x(&self, j: u32) -> f64 {
        self.inner.hot_rate(0, j)
    }

    /// Eqs. (5) & (7): hot-spot traffic rate on the hot-y-ring channel `j`
    /// hops from the hot node (`1 <= j <= k`):
    /// `λ^h_y,j = N λ h P_hy,j = λ h k (k-j)`.
    pub fn hot_rate_y(&self, j: u32) -> f64 {
        self.inner.hot_rate(1, j)
    }

    /// Eq. (8): total rate on an x-channel `j` hops from the hot y-ring.
    pub fn total_rate_x(&self, j: u32) -> f64 {
        self.inner.total_rate(0, j)
    }

    /// Eq. (9): total rate on the hot-y-ring channel `j` hops from the hot
    /// node.
    pub fn total_rate_y(&self, j: u32) -> f64 {
        self.inner.total_rate(1, j)
    }

    /// The radix.
    pub fn k(&self) -> u32 {
        self.inner.k()
    }

    /// Per-node generation rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.inner.lambda()
    }

    /// Hot fraction `h`.
    pub fn hot_fraction(&self) -> f64 {
        self.inner.hot_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_hops_eq1_eq2() {
        let r = Rates::new(16, 1e-4, 0.2);
        assert_eq!(r.mean_hops_per_dim(), 7.5);
        assert_eq!(r.mean_hops_total(), 15.0);
    }

    #[test]
    fn regular_rate_eq3() {
        let r = Rates::new(16, 4e-4, 0.25);
        let expected = 4e-4 * 0.75 * 7.5;
        assert!((r.regular_channel_rate() - expected).abs() < 1e-15);
    }

    #[test]
    fn hot_rates_vanish_at_j_equals_k() {
        let r = Rates::new(8, 1e-3, 0.5);
        assert_eq!(r.hot_rate_x(8), 0.0);
        assert_eq!(r.hot_rate_y(8), 0.0);
    }

    #[test]
    fn hot_rates_peak_next_to_hot_node() {
        let r = Rates::new(8, 1e-3, 0.5);
        for j in 1..8 {
            assert!(r.hot_rate_y(j) > r.hot_rate_y(j + 1));
            assert!(r.hot_rate_x(j) > r.hot_rate_x(j + 1));
        }
        // The last hop into the hot node carries h·λ·k(k-1): all hot
        // traffic except what is generated inside the hot node's column at
        // distance 0 — i.e. everything but the hot node itself, spread per
        // Poisson splitting.
        assert!((r.hot_rate_y(1) - 1e-3 * 0.5 * 56.0).abs() < 1e-15);
    }

    #[test]
    fn hot_traffic_conservation_across_ring_positions() {
        // Summing the hot rate over the k channels of the hot y-ring gives
        // the total hop-rate of hot traffic in dimension y:
        // λh Σ_j k(k-j) = λh k·k(k-1)/2 = N λh k̄', matching (N-1)-ish
        // sources each crossing their y-distance. The identity checked here
        // is the closed form Σ_{j=1}^{k} k(k-j) = k²(k-1)/2.
        let r = Rates::new(10, 2e-3, 0.3);
        let total: f64 = (1..=10).map(|j| r.hot_rate_y(j)).sum();
        let expected = 2e-3 * 0.3 * (100.0 * 9.0 / 2.0);
        assert!((total - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_hot_fraction_means_uniform_only() {
        let r = Rates::new(16, 1e-4, 0.0);
        for j in 1..=16 {
            assert_eq!(r.hot_rate_x(j), 0.0);
            assert_eq!(r.hot_rate_y(j), 0.0);
            assert!((r.total_rate_x(j) - r.regular_channel_rate()).abs() < 1e-18);
        }
    }

    #[test]
    fn ncube_rates_specialize_to_the_2d_forms() {
        let g = NCubeRates::new(12, 2, 3e-4, 0.35);
        let r = Rates::new(12, 3e-4, 0.35);
        assert_eq!(g.regular_channel_rate(), r.regular_channel_rate());
        for j in 1..=12 {
            assert_eq!(g.hot_rate(0, j), r.hot_rate_x(j));
            assert_eq!(g.hot_rate(1, j), r.hot_rate_y(j));
        }
    }

    #[test]
    fn ncube_hot_rates_scale_by_k_pow_dim() {
        // Generalized Eqs. 6-7: moving one dimension inwards multiplies the
        // funnel by k (one more fully-corrected dimension feeds the ring).
        let g = NCubeRates::new(4, 4, 1e-3, 0.5);
        for dim in 0..3 {
            for j in 1..4 {
                let lo = g.hot_rate(dim, j);
                let hi = g.hot_rate(dim + 1, j);
                assert!((hi - 4.0 * lo).abs() < 1e-15, "dim={dim} j={j}");
            }
        }
        // Binding channel of the innermost dimension: λ h k^{n-1}(k-1).
        let binding = g.hot_rate(3, 1);
        assert!((binding - 1e-3 * 0.5 * 192.0).abs() < 1e-15);
    }

    #[test]
    fn ncube_rate_at_k2_matches_hypercube_levels() {
        // At k = 2 the hot dimension-d channel at distance 1 is the
        // hypercube's level-d hot channel: γ_d = λ h 2^d.
        let g = NCubeRates::new(2, 6, 2e-3, 0.4);
        for d in 0..6 {
            let expected = 2e-3 * 0.4 * (1u64 << d) as f64;
            assert!((g.hot_rate(d, 1) - expected).abs() < 1e-15);
            assert_eq!(g.hot_rate(d, 2), 0.0);
        }
    }
}
