//! Channel traffic rates: Eqs. (1)–(9) of the paper.
//!
//! Regular (uniform-destination) traffic loads every channel of a dimension
//! equally; hot-spot traffic concentrates on the channels that funnel into
//! the hot-spot node.  With dimension-order routing on the unidirectional
//! 2-D torus:
//!
//! * every hot-spot message first travels inside its own x-ring to the hot
//!   column, then down the **hot y-ring** to the hot node;
//! * an x-channel `j` hops from the hot y-ring carries the hot traffic of
//!   the `k - j` nodes behind it in its ring (Eqs. 4, 6);
//! * the hot-y-ring channel `j` hops from the hot node carries the hot
//!   traffic of the `k(k - j)` nodes whose y-entry point is at distance
//!   `>= j` (Eqs. 5, 7).

/// The per-channel traffic rates for a given network and load.
#[derive(Clone, Copy, Debug)]
pub struct Rates {
    k: u32,
    lambda: f64,
    hot_fraction: f64,
}

impl Rates {
    /// Rates for a `k × k` unidirectional torus with per-node generation
    /// rate `lambda` and hot fraction `hot_fraction`.
    pub fn new(k: u32, lambda: f64, hot_fraction: f64) -> Self {
        assert!(k >= 2);
        assert!(lambda >= 0.0);
        assert!((0.0..=1.0).contains(&hot_fraction));
        Rates {
            k,
            lambda,
            hot_fraction,
        }
    }

    /// Eq. (1): mean channels crossed per dimension by a regular message,
    /// `k̄ = (k-1)/2`.
    pub fn mean_hops_per_dim(&self) -> f64 {
        (self.k as f64 - 1.0) / 2.0
    }

    /// Eq. (2): mean channels crossed in the whole 2-D network,
    /// `d̄ = 2 k̄`.
    pub fn mean_hops_total(&self) -> f64 {
        2.0 * self.mean_hops_per_dim()
    }

    /// Eq. (3): regular traffic rate on any channel of either dimension,
    /// `λ_r = λ (1-h) k̄`.
    ///
    /// Derivation: each of the `N` nodes generates `λ(1-h)` regular
    /// messages/cycle, each crossing `k̄` channels per dimension on
    /// average; a dimension has `N` channels, so the per-channel rate is
    /// `N·λ(1-h)·k̄ / N`.
    pub fn regular_channel_rate(&self) -> f64 {
        self.lambda * (1.0 - self.hot_fraction) * self.mean_hops_per_dim()
    }

    /// Eqs. (4) & (6): hot-spot traffic rate on an x-channel `j` hops from
    /// the hot y-ring (`1 <= j <= k`): `λ^h_x,j = N λ h P_hx,j = λ h (k-j)`.
    pub fn hot_rate_x(&self, j: u32) -> f64 {
        assert!((1..=self.k).contains(&j));
        self.lambda * self.hot_fraction * (self.k - j) as f64
    }

    /// Eqs. (5) & (7): hot-spot traffic rate on the hot-y-ring channel `j`
    /// hops from the hot node (`1 <= j <= k`):
    /// `λ^h_y,j = N λ h P_hy,j = λ h k (k-j)`.
    pub fn hot_rate_y(&self, j: u32) -> f64 {
        assert!((1..=self.k).contains(&j));
        self.lambda * self.hot_fraction * (self.k * (self.k - j)) as f64
    }

    /// Eq. (8): total rate on an x-channel `j` hops from the hot y-ring.
    pub fn total_rate_x(&self, j: u32) -> f64 {
        self.regular_channel_rate() + self.hot_rate_x(j)
    }

    /// Eq. (9): total rate on the hot-y-ring channel `j` hops from the hot
    /// node.
    pub fn total_rate_y(&self, j: u32) -> f64 {
        self.regular_channel_rate() + self.hot_rate_y(j)
    }

    /// The radix.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Per-node generation rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Hot fraction `h`.
    pub fn hot_fraction(&self) -> f64 {
        self.hot_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_hops_eq1_eq2() {
        let r = Rates::new(16, 1e-4, 0.2);
        assert_eq!(r.mean_hops_per_dim(), 7.5);
        assert_eq!(r.mean_hops_total(), 15.0);
    }

    #[test]
    fn regular_rate_eq3() {
        let r = Rates::new(16, 4e-4, 0.25);
        let expected = 4e-4 * 0.75 * 7.5;
        assert!((r.regular_channel_rate() - expected).abs() < 1e-15);
    }

    #[test]
    fn hot_rates_vanish_at_j_equals_k() {
        let r = Rates::new(8, 1e-3, 0.5);
        assert_eq!(r.hot_rate_x(8), 0.0);
        assert_eq!(r.hot_rate_y(8), 0.0);
    }

    #[test]
    fn hot_rates_peak_next_to_hot_node() {
        let r = Rates::new(8, 1e-3, 0.5);
        for j in 1..8 {
            assert!(r.hot_rate_y(j) > r.hot_rate_y(j + 1));
            assert!(r.hot_rate_x(j) > r.hot_rate_x(j + 1));
        }
        // The last hop into the hot node carries h·λ·k(k-1): all hot
        // traffic except what is generated inside the hot node's column at
        // distance 0 — i.e. everything but the hot node itself, spread per
        // Poisson splitting.
        assert!((r.hot_rate_y(1) - 1e-3 * 0.5 * 56.0).abs() < 1e-15);
    }

    #[test]
    fn hot_traffic_conservation_across_ring_positions() {
        // Summing the hot rate over the k channels of the hot y-ring gives
        // the total hop-rate of hot traffic in dimension y:
        // λh Σ_j k(k-j) = λh k·k(k-1)/2 = N λh k̄', matching (N-1)-ish
        // sources each crossing their y-distance. The identity checked here
        // is the closed form Σ_{j=1}^{k} k(k-j) = k²(k-1)/2.
        let r = Rates::new(10, 2e-3, 0.3);
        let total: f64 = (1..=10).map(|j| r.hot_rate_y(j)).sum();
        let expected = 2e-3 * 0.3 * (100.0 * 9.0 / 2.0);
        assert!((total - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_hot_fraction_means_uniform_only() {
        let r = Rates::new(16, 1e-4, 0.0);
        for j in 1..=16 {
            assert_eq!(r.hot_rate_x(j), 0.0);
            assert_eq!(r.hot_rate_y(j), 0.0);
            assert!((r.total_rate_x(j) - r.regular_channel_rate()).abs() < 1e-18);
        }
    }
}
