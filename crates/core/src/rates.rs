//! Channel traffic rates: Eqs. (1)–(9) of the paper, generalized to
//! arbitrary k-ary n-cubes.
//!
//! Regular (uniform-destination) traffic loads every channel of a dimension
//! equally; hot-spot traffic concentrates on the channels that funnel into
//! the hot-spot node.  With dimension-order routing on the unidirectional
//! n-cube:
//!
//! * every hot-spot message corrects its dimensions in ascending order, so
//!   its dimension-`d` movement happens inside the *hot ring of dimension
//!   `d`* (the ring matching the hot node on every dimension below `d`);
//! * the hot dimension-`d` channel `j` hops from the hot coordinate carries
//!   the hot traffic of the `k^d (k - j)` nodes that funnel through it —
//!   the product-over-rings generalization of Eqs. (4)–(7), whose 2-D
//!   instances are the paper's `k - j` (x, Eqs. 4/6) and `k(k - j)`
//!   (hot y-ring, Eqs. 5/7).

use kncube_topology::{ChannelId, FaultRouter, NodeId};

/// Per-channel traffic rates for a k-ary n-cube at a given load —
/// Eqs. (1)–(9) with dimension as a parameter.
#[derive(Clone, Copy, Debug)]
pub struct NCubeRates {
    k: u32,
    n: u32,
    lambda: f64,
    hot_fraction: f64,
}

impl NCubeRates {
    /// Rates for a unidirectional k-ary n-cube with per-node generation
    /// rate `lambda` and hot fraction `hot_fraction`.
    pub fn new(k: u32, n: u32, lambda: f64, hot_fraction: f64) -> Self {
        assert!(k >= 2);
        assert!(n >= 1);
        assert!(lambda >= 0.0);
        assert!((0.0..=1.0).contains(&hot_fraction));
        NCubeRates {
            k,
            n,
            lambda,
            hot_fraction,
        }
    }

    /// Eq. (1): mean channels crossed per dimension by a regular message,
    /// `k̄ = (k-1)/2` (the paper's convention: the average includes
    /// destinations needing no movement in the dimension).
    pub fn mean_hops_per_dim(&self) -> f64 {
        (self.k as f64 - 1.0) / 2.0
    }

    /// Eq. (2): mean channels crossed in the whole network, `d̄ = n k̄`.
    pub fn mean_hops_total(&self) -> f64 {
        self.n as f64 * self.mean_hops_per_dim()
    }

    /// Eq. (3): regular traffic rate on any channel of any dimension,
    /// `λ_r = λ (1-h) k̄`.
    ///
    /// Derivation: each of the `N` nodes generates `λ(1-h)` regular
    /// messages/cycle, each crossing `k̄` channels per dimension on
    /// average; a dimension has `N` channels, so the per-channel rate is
    /// `N·λ(1-h)·k̄ / N` — independent of the dimension count.
    pub fn regular_channel_rate(&self) -> f64 {
        self.lambda * (1.0 - self.hot_fraction) * self.mean_hops_per_dim()
    }

    /// Generalized Eqs. (4)–(7): hot-spot traffic rate on the hot
    /// dimension-`dim` channel `j` hops from the hot coordinate
    /// (`1 <= j <= k`): `λ^h_{d,j} = N λ h P_{h,d,j} = λ h k^d (k-j)`.
    pub fn hot_rate(&self, dim: u32, j: u32) -> f64 {
        assert!(dim < self.n);
        assert!((1..=self.k).contains(&j));
        let funnel = (self.k as u64).pow(dim) * (self.k - j) as u64;
        self.lambda * self.hot_fraction * funnel as f64
    }

    /// Generalized Eqs. (8)–(9): total rate on the hot dimension-`dim`
    /// channel `j` hops from the hot coordinate.
    pub fn total_rate(&self, dim: u32, j: u32) -> f64 {
        self.regular_channel_rate() + self.hot_rate(dim, j)
    }

    /// The radix.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The dimension count.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Per-node generation rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Hot fraction `h`.
    pub fn hot_fraction(&self) -> f64 {
        self.hot_fraction
    }
}

/// The paper's 2-D rates (Eqs. 1–9 as printed): the `n = 2` specialization
/// of [`NCubeRates`] under the paper's x/y naming.
#[derive(Clone, Copy, Debug)]
pub struct Rates {
    inner: NCubeRates,
}

impl Rates {
    /// Rates for a `k × k` unidirectional torus with per-node generation
    /// rate `lambda` and hot fraction `hot_fraction`.
    pub fn new(k: u32, lambda: f64, hot_fraction: f64) -> Self {
        Rates {
            inner: NCubeRates::new(k, 2, lambda, hot_fraction),
        }
    }

    /// Eq. (1): mean channels crossed per dimension by a regular message,
    /// `k̄ = (k-1)/2`.
    pub fn mean_hops_per_dim(&self) -> f64 {
        self.inner.mean_hops_per_dim()
    }

    /// Eq. (2): mean channels crossed in the whole 2-D network,
    /// `d̄ = 2 k̄`.
    pub fn mean_hops_total(&self) -> f64 {
        self.inner.mean_hops_total()
    }

    /// Eq. (3): regular traffic rate on any channel of either dimension,
    /// `λ_r = λ (1-h) k̄`.
    pub fn regular_channel_rate(&self) -> f64 {
        self.inner.regular_channel_rate()
    }

    /// Eqs. (4) & (6): hot-spot traffic rate on an x-channel `j` hops from
    /// the hot y-ring (`1 <= j <= k`): `λ^h_x,j = N λ h P_hx,j = λ h (k-j)`.
    pub fn hot_rate_x(&self, j: u32) -> f64 {
        self.inner.hot_rate(0, j)
    }

    /// Eqs. (5) & (7): hot-spot traffic rate on the hot-y-ring channel `j`
    /// hops from the hot node (`1 <= j <= k`):
    /// `λ^h_y,j = N λ h P_hy,j = λ h k (k-j)`.
    pub fn hot_rate_y(&self, j: u32) -> f64 {
        self.inner.hot_rate(1, j)
    }

    /// Eq. (8): total rate on an x-channel `j` hops from the hot y-ring.
    pub fn total_rate_x(&self, j: u32) -> f64 {
        self.inner.total_rate(0, j)
    }

    /// Eq. (9): total rate on the hot-y-ring channel `j` hops from the hot
    /// node.
    pub fn total_rate_y(&self, j: u32) -> f64 {
        self.inner.total_rate(1, j)
    }

    /// The radix.
    pub fn k(&self) -> u32 {
        self.inner.k()
    }

    /// Per-node generation rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.inner.lambda()
    }

    /// Hot fraction `h`.
    pub fn hot_fraction(&self) -> f64 {
        self.inner.hot_fraction()
    }
}

/// Per-channel traffic rates of a *faulty* (or bidirectional / mesh)
/// network, computed by exact route enumeration over the surviving paths
/// of a [`FaultRouter`] instead of the closed forms above.
///
/// The closed forms of [`NCubeRates`] assume every source can reach every
/// destination over the fault-free dimension-order route.  With faults the
/// load redistributes along the detoured shortest surviving routes, and
/// pairs with no surviving route contribute nothing (the simulator drops
/// them at generation).  This struct walks every ordered reachable pair
/// once and accumulates, per directed channel:
///
/// * **regular** traffic — each healthy source spreads its uniform share
///   over the *other* `N - 1` nodes (delivered only where reachable); the
///   hot node itself generates only regular traffic (Pfister–Norton);
/// * **hot-spot** traffic — each healthy non-hot source adds rate `λh`
///   along its surviving route to the hot node.
///
/// Rates are stored per unit `λ`; multiply by the per-node generation rate
/// at query time, which keeps one enumeration valid for a whole λ sweep.
#[derive(Clone, Debug)]
pub struct FaultyChannelRates {
    regular_unit: Vec<f64>,
    hot_unit: Vec<f64>,
    reachable_pairs: u64,
    hot_fraction: f64,
}

impl FaultyChannelRates {
    /// Enumerate the surviving routes of `router` and accumulate the
    /// per-channel rates for hot node `hot` and hot fraction
    /// `hot_fraction` (`0 <= h <= 1`).
    pub fn from_router(router: &FaultRouter, hot: NodeId, hot_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&hot_fraction));
        let topo = *router.topology();
        let n_nodes = topo.num_nodes();
        let mut regular_unit = vec![0.0; topo.num_channels() as usize];
        let mut hot_unit = vec![0.0; topo.num_channels() as usize];
        let mut reachable_pairs = 0u64;
        let others = (n_nodes - 1) as f64;
        for src in topo.nodes() {
            // The hot node generates only regular traffic; everyone else
            // splits `1 - h` uniform / `h` hot.  Failed sources generate
            // traffic that is dropped whole (no reachable destination).
            let regular_share = if src == hot { 1.0 } else { 1.0 - hot_fraction };
            for dest in topo.nodes() {
                if dest == src || router.distance(src, dest).is_none() {
                    continue;
                }
                reachable_pairs += 1;
                let mut cur = src;
                while cur != dest {
                    let hop = router
                        .next_hop(cur, dest)
                        .expect("finite distance implies a next hop");
                    let id = hop.channel.id(&topo).index();
                    regular_unit[id] += regular_share / others;
                    if dest == hot && src != hot {
                        hot_unit[id] += hot_fraction;
                    }
                    cur = hop.channel.to(&topo);
                }
            }
        }
        FaultyChannelRates {
            regular_unit,
            hot_unit,
            reachable_pairs,
            hot_fraction,
        }
    }

    /// Regular traffic rate on `channel` at per-node generation rate
    /// `lambda`.
    #[inline]
    pub fn regular_rate(&self, channel: ChannelId, lambda: f64) -> f64 {
        lambda * self.regular_unit[channel.index()]
    }

    /// Hot-spot traffic rate on `channel` at per-node generation rate
    /// `lambda`.
    #[inline]
    pub fn hot_rate(&self, channel: ChannelId, lambda: f64) -> f64 {
        lambda * self.hot_unit[channel.index()]
    }

    /// Combined rate on `channel` at per-node generation rate `lambda`.
    pub fn total_rate(&self, channel: ChannelId, lambda: f64) -> f64 {
        self.regular_rate(channel, lambda) + self.hot_rate(channel, lambda)
    }

    /// Number of directed channels in the topology (indexable by
    /// [`ChannelId`]).
    pub fn num_channels(&self) -> usize {
        self.regular_unit.len()
    }

    /// Ordered pairs `(src, dest)` with a surviving route, counted during
    /// the enumeration (matches [`FaultRouter::reachable_pairs`] exactly).
    pub fn reachable_pairs(&self) -> u64 {
        self.reachable_pairs
    }

    /// Hot fraction `h` the rates were accumulated with.
    pub fn hot_fraction(&self) -> f64 {
        self.hot_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_hops_eq1_eq2() {
        let r = Rates::new(16, 1e-4, 0.2);
        assert_eq!(r.mean_hops_per_dim(), 7.5);
        assert_eq!(r.mean_hops_total(), 15.0);
    }

    #[test]
    fn regular_rate_eq3() {
        let r = Rates::new(16, 4e-4, 0.25);
        let expected = 4e-4 * 0.75 * 7.5;
        assert!((r.regular_channel_rate() - expected).abs() < 1e-15);
    }

    #[test]
    fn hot_rates_vanish_at_j_equals_k() {
        let r = Rates::new(8, 1e-3, 0.5);
        assert_eq!(r.hot_rate_x(8), 0.0);
        assert_eq!(r.hot_rate_y(8), 0.0);
    }

    #[test]
    fn hot_rates_peak_next_to_hot_node() {
        let r = Rates::new(8, 1e-3, 0.5);
        for j in 1..8 {
            assert!(r.hot_rate_y(j) > r.hot_rate_y(j + 1));
            assert!(r.hot_rate_x(j) > r.hot_rate_x(j + 1));
        }
        // The last hop into the hot node carries h·λ·k(k-1): all hot
        // traffic except what is generated inside the hot node's column at
        // distance 0 — i.e. everything but the hot node itself, spread per
        // Poisson splitting.
        assert!((r.hot_rate_y(1) - 1e-3 * 0.5 * 56.0).abs() < 1e-15);
    }

    #[test]
    fn hot_traffic_conservation_across_ring_positions() {
        // Summing the hot rate over the k channels of the hot y-ring gives
        // the total hop-rate of hot traffic in dimension y:
        // λh Σ_j k(k-j) = λh k·k(k-1)/2 = N λh k̄', matching (N-1)-ish
        // sources each crossing their y-distance. The identity checked here
        // is the closed form Σ_{j=1}^{k} k(k-j) = k²(k-1)/2.
        let r = Rates::new(10, 2e-3, 0.3);
        let total: f64 = (1..=10).map(|j| r.hot_rate_y(j)).sum();
        let expected = 2e-3 * 0.3 * (100.0 * 9.0 / 2.0);
        assert!((total - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_hot_fraction_means_uniform_only() {
        let r = Rates::new(16, 1e-4, 0.0);
        for j in 1..=16 {
            assert_eq!(r.hot_rate_x(j), 0.0);
            assert_eq!(r.hot_rate_y(j), 0.0);
            assert!((r.total_rate_x(j) - r.regular_channel_rate()).abs() < 1e-18);
        }
    }

    #[test]
    fn ncube_rates_specialize_to_the_2d_forms() {
        let g = NCubeRates::new(12, 2, 3e-4, 0.35);
        let r = Rates::new(12, 3e-4, 0.35);
        assert_eq!(g.regular_channel_rate(), r.regular_channel_rate());
        for j in 1..=12 {
            assert_eq!(g.hot_rate(0, j), r.hot_rate_x(j));
            assert_eq!(g.hot_rate(1, j), r.hot_rate_y(j));
        }
    }

    #[test]
    fn ncube_hot_rates_scale_by_k_pow_dim() {
        // Generalized Eqs. 6-7: moving one dimension inwards multiplies the
        // funnel by k (one more fully-corrected dimension feeds the ring).
        let g = NCubeRates::new(4, 4, 1e-3, 0.5);
        for dim in 0..3 {
            for j in 1..4 {
                let lo = g.hot_rate(dim, j);
                let hi = g.hot_rate(dim + 1, j);
                assert!((hi - 4.0 * lo).abs() < 1e-15, "dim={dim} j={j}");
            }
        }
        // Binding channel of the innermost dimension: λ h k^{n-1}(k-1).
        let binding = g.hot_rate(3, 1);
        assert!((binding - 1e-3 * 0.5 * 192.0).abs() < 1e-15);
    }

    #[test]
    fn faulty_rates_cross_check_p_hot_channel_on_fault_free_networks() {
        // On a fault-free network the enumerated hot load on a channel is
        // exactly `λ h` times the number of sources whose route to the hot
        // node crosses it — the quantity `N · p_hot_channel` of the
        // signed-offset hot-spot geometry, on every link kind/boundary.
        use kncube_topology::{Channel, FaultSet, HotSpotGeometry, KAryNCube};
        let h = 0.35;
        for topo in [
            KAryNCube::unidirectional(5, 2).unwrap(),
            KAryNCube::bidirectional(6, 2).unwrap(),
            KAryNCube::mesh(4, 2).unwrap(),
        ] {
            for hot_idx in [0u32, 3, topo.num_nodes() - 1] {
                let hot = kncube_topology::NodeId(hot_idx);
                let router = FaultRouter::new(FaultSet::none(topo));
                let rates = FaultyChannelRates::from_router(&router, hot, h);
                let geom = HotSpotGeometry::new(topo, hot);
                let n_nodes = topo.num_nodes() as f64;
                for id in 0..topo.num_channels() {
                    let cid = ChannelId(id);
                    let ch = Channel::from_id(&topo, cid);
                    let expected = h * n_nodes * geom.p_hot_channel(ch);
                    let got = rates.hot_rate(cid, 1.0);
                    assert!(
                        (got - expected).abs() < 1e-12,
                        "k={} hot={hot_idx} channel {id}: {got} vs {expected}",
                        topo.k()
                    );
                }
            }
        }
    }

    #[test]
    fn faulty_rates_conserve_hop_rate_under_faults() {
        // Load redistribution conserves work: summed over channels, the
        // unit hot rate is `h` times the total surviving distance to the
        // hot node, and the unit regular rate is the share-weighted mean
        // surviving distance over reachable uniform pairs — both exactly
        // recomputable from the router's distance table, faults included.
        use kncube_topology::{Channel, Direction, FaultSet, KAryNCube, NodeId};
        let topo = KAryNCube::bidirectional(5, 2).unwrap();
        let h = 0.2;
        let hot = NodeId(0);
        let mut faults = FaultSet::none(topo);
        faults.fail_node(NodeId(12));
        faults.fail_link(Channel {
            from: NodeId(6),
            dim: 1,
            direction: Direction::Plus,
        });
        let router = FaultRouter::new(faults);
        let rates = FaultyChannelRates::from_router(&router, hot, h);
        let others = (topo.num_nodes() - 1) as f64;
        let mut expected_reg = 0.0;
        let mut expected_hot = 0.0;
        for src in topo.nodes() {
            let share = if src == hot { 1.0 } else { 1.0 - h };
            for dest in topo.nodes() {
                if let Some(d) = router.distance(src, dest).filter(|_| src != dest) {
                    expected_reg += share * d as f64 / others;
                    if dest == hot {
                        expected_hot += h * d as f64;
                    }
                }
            }
        }
        let sum_reg: f64 = (0..topo.num_channels())
            .map(|id| rates.regular_rate(ChannelId(id), 1.0))
            .sum();
        let sum_hot: f64 = (0..topo.num_channels())
            .map(|id| rates.hot_rate(ChannelId(id), 1.0))
            .sum();
        assert!(
            (sum_reg - expected_reg).abs() < 1e-9,
            "{sum_reg} {expected_reg}"
        );
        assert!(
            (sum_hot - expected_hot).abs() < 1e-9,
            "{sum_hot} {expected_hot}"
        );
        assert_eq!(rates.reachable_pairs(), router.reachable_pairs());
        // Channels incident to the failed router carry nothing.
        for dim in 0..topo.n() {
            for direction in [Direction::Plus, Direction::Minus] {
                let ch = Channel {
                    from: NodeId(12),
                    dim,
                    direction,
                };
                assert_eq!(rates.total_rate(ch.id(&topo), 1.0), 0.0);
            }
        }
    }

    #[test]
    fn ncube_rate_at_k2_matches_hypercube_levels() {
        // At k = 2 the hot dimension-d channel at distance 1 is the
        // hypercube's level-d hot channel: γ_d = λ h 2^d.
        let g = NCubeRates::new(2, 6, 2e-3, 0.4);
        for d in 0..6 {
            let expected = 2e-3 * 0.4 * (1u64 << d) as f64;
            assert!((g.hot_rate(d, 1) - expected).abs() < 1e-15);
            assert_eq!(g.hot_rate(d, 2), 0.0);
        }
    }
}
