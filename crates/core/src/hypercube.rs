//! Hot-spot latency model for the binary hypercube — the paper's closest
//! prior work (reference \[12\]: Loucif & Ould-Khaoua, "Modelling latency
//! in deterministic wormhole-routed hypercubes under hot-spot traffic",
//! J. Supercomputing 27(3), 2004), rebuilt with the same methodology as
//! the torus model so the two can be compared side by side — and so the
//! generalized k-ary n-cube solver ([`crate::ncube`]) can be
//! cross-validated against an independently-derived closed form at
//! `k = 2` (the facade's cross-validation suite holds them to within
//! `1e-9` of each other).
//!
//! # Setting
//!
//! An `n`-dimensional binary hypercube (`N = 2^n` nodes) is the 2-ary
//! n-cube: every node has one outgoing channel per dimension (flipping one
//! address bit).  Deterministic e-cube routing corrects address bits in
//! ascending dimension order — exactly [`kncube_topology`]'s
//! dimension-order routing at `k = 2`, so the flit-level simulator runs
//! this network natively.
//!
//! # Hot-spot channel rates
//!
//! With the hot node `H` and e-cube routing, the dimension-`i` channel out
//! of node `u` carries hot-spot traffic **iff** `u` matches `H` on bits
//! `0..i` except bit `i` itself (`u_i ≠ H_i`, lower bits already
//! corrected).  The hot sources feeding it are the `2^i` nodes sharing
//! `u`'s upper bits, so its hot rate is
//!
//! ```text
//! γ_i = λ h 2^i        (one "level-i" hot channel per upper-bit pattern)
//! ```
//!
//! Half of all hot-spot traffic funnels through the single level-`(n-1)`
//! channel into `H`, giving the hypercube saturation bound
//! `λ* ≈ 2 / (h N (Lm + 1))` — the hypercube analogue of the torus
//! flit-bound, verified against the simulator in the tests.
//!
//! Regular (uniform) traffic loads every channel equally at
//! `λ_r = λ (1-h) / 2` — the torus model's Eq. (3) convention
//! `λ_r = λ(1-h)·(k-1)/2` at `k = 2` (the paper averages the per-dimension
//! hop count over all destinations *including* the source; the exact
//! uniform-destination rate would carry an extra `N/(N-1)`).
//!
//! # Composition
//!
//! Blocking, source-queue waits and virtual-channel multiplexing reuse the
//! torus model's operators (Eqs. 26–30, 33–35 of the paper) with the
//! pipelined channel service time `Lm + 1`, composed exactly as the
//! generalized solver composes them: regular messages by *entry family*
//! (first dimension moved × hot/non-hot entry ring, exact `N-1`
//! denominators) and hot messages per source position (one per address
//! mask), each scaled by the multiplexing degree of its entry channel.
//! Because the `Lm + 1` service time is load-independent, everything
//! evaluates in closed form — no fixed-point iteration is needed.

use crate::solver::ModelError;
use kncube_queueing::blocking::{blocking_delay, channel_utilization, TrafficClass};
use kncube_queueing::mg1;
use kncube_queueing::vc_multiplex::multiplexing_factor;

/// Utilization cap mirroring the torus solver's.
const RHO_CAP: f64 = 1.0 - 1e-7;

/// Hot-spot latency model for the `n`-dimensional binary hypercube.
///
/// ```
/// use kncube_core::HypercubeModel;
/// let model = HypercubeModel::new(8, 2, 32, 1e-4, 0.2).unwrap();
/// let out = model.solve().unwrap();
/// assert!(out.latency >= model.zero_load_latency());
/// assert!(out.hot_latency > out.regular_latency);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct HypercubeModel {
    /// Dimension count `n` (`N = 2^n` nodes).
    pub n: u32,
    /// Virtual channels per physical channel.
    pub virtual_channels: u32,
    /// Message length in flits.
    pub message_length: u32,
    /// Per-node generation rate, messages/cycle.
    pub lambda: f64,
    /// Hot-spot fraction `h`.
    pub hot_fraction: f64,
}

/// Solved hypercube latencies and diagnostics.
#[derive(Clone, Debug)]
pub struct HypercubeOutput {
    /// Mean message latency, cycles.
    pub latency: f64,
    /// Mean latency of regular messages.
    pub regular_latency: f64,
    /// Mean latency of hot-spot messages.
    pub hot_latency: f64,
    /// Mean source-queue wait (averaged over the `N` sources).
    pub source_wait: f64,
    /// Largest channel utilization (level `n-1` hot channel).
    pub max_utilization: f64,
    /// Per-level blocking delays seen by hot messages (`B_i`).
    pub hot_blocking: Vec<f64>,
}

impl HypercubeModel {
    /// Build the model; `n` in `1..=20`, `h` in `[0, 1]`.
    pub fn new(
        n: u32,
        virtual_channels: u32,
        message_length: u32,
        lambda: f64,
        hot_fraction: f64,
    ) -> Result<Self, ModelError> {
        if n == 0 || n > 20 {
            return Err(ModelError::BadConfig("n must be in 1..=20".into()));
        }
        if virtual_channels < 1 {
            return Err(ModelError::BadConfig("need at least one VC".into()));
        }
        if message_length < 1 {
            return Err(ModelError::BadConfig("messages need >= 1 flit".into()));
        }
        if !(0.0..=1.0).contains(&hot_fraction) {
            return Err(ModelError::BadConfig("h must be in [0, 1]".into()));
        }
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(ModelError::BadConfig("λ must be finite and >= 0".into()));
        }
        Ok(HypercubeModel {
            n,
            virtual_channels,
            message_length,
            lambda,
            hot_fraction,
        })
    }

    /// Node count `N = 2^n`.
    pub fn num_nodes(&self) -> f64 {
        (1u64 << self.n) as f64
    }

    /// Regular traffic rate per channel, `λ_r = λ (1-h) / 2` — the torus
    /// Eq. (3) convention `λ(1-h)·(k-1)/2` at `k = 2`.
    pub fn regular_channel_rate(&self) -> f64 {
        self.lambda * (1.0 - self.hot_fraction) * 0.5
    }

    /// Hot-spot rate on a level-`i` hot channel, `γ_i = λ h 2^i`.
    pub fn hot_channel_rate(&self, level: u32) -> f64 {
        assert!(level < self.n);
        self.lambda * self.hot_fraction * (1u64 << level) as f64
    }

    /// Mean distance of a uniform destination, `n (N/2) / (N-1)` —
    /// the hypercube's Eq. (2) analogue.
    pub fn mean_distance(&self) -> f64 {
        let n_nodes = self.num_nodes();
        self.n as f64 * (n_nodes / 2.0) / (n_nodes - 1.0)
    }

    /// Zero-load latency: mean distance plus the message drain.
    pub fn zero_load_latency(&self) -> f64 {
        self.mean_distance() + self.message_length as f64
    }

    /// Evaluate the model.
    #[allow(clippy::needless_range_loop)] // i is the paper's level index
    pub fn solve(&self) -> Result<HypercubeOutput, ModelError> {
        let n = self.n as usize;
        let lm = self.message_length as f64;
        let service = lm + 1.0; // pipelined channel service
        let lr = self.regular_channel_rate();
        let n_nodes = self.num_nodes();
        let h = self.hot_fraction;

        // --- Saturation: the level-(n-1) channel into the hot node is the
        // binding resource.
        let mut max_util: f64 = channel_utilization(
            TrafficClass::new(lr, service),
            TrafficClass::new(self.hot_channel_rate(self.n - 1), service),
        );
        max_util = max_util.max(channel_utilization(
            TrafficClass::new(lr, service),
            TrafficClass::none(),
        ));
        if max_util >= 1.0 {
            return Err(ModelError::Saturated {
                max_utilization: max_util,
            });
        }

        // --- Per-level blocking: B_i at a level-i hot channel, b_plain at
        // a channel with no hot traffic.  A regular message crossing a
        // dimension whose ring is hot meets the hot channel at one of the
        // ring's two positions, uniformly: (B_i + b_plain)/2.
        let b_plain = blocking_delay(
            TrafficClass::new(lr, service),
            TrafficClass::none(),
            lm,
            RHO_CAP,
        );
        let hot_blocking: Vec<f64> = (0..self.n)
            .map(|i| {
                blocking_delay(
                    TrafficClass::new(lr, service),
                    TrafficClass::new(self.hot_channel_rate(i), service),
                    lm,
                    RHO_CAP,
                )
            })
            .collect();
        let b_hot_avg: Vec<f64> = hot_blocking.iter().map(|&b| (b + b_plain) / 2.0).collect();

        // --- Multiplexing degrees (Eqs. 33-35) per channel kind; the
        // hot-ring family average pairs the level channel with the ring's
        // hot-coordinate-outgoing channel, which carries no hot traffic.
        let v = self.virtual_channels;
        let vbar_plain = multiplexing_factor(lr * service, v);
        let vbar_level: Vec<f64> = (0..self.n)
            .map(|i| multiplexing_factor((lr + self.hot_channel_rate(i)) * service, v))
            .collect();
        let vbar_hot_avg: Vec<f64> = vbar_level.iter().map(|&f| (f + vbar_plain) / 2.0).collect();

        // --- Entry families (exact N-1 denominators): a regular message
        // enters at dimension d0 with probability 2^{n-1-d0}/(N-1); the
        // entry ring is hot iff the source matches the hot node below d0
        // (probability 2^{-d0}).  Conditional on the entry, each later
        // dimension is crossed with its 1/2 share folded into the expected
        // hop count, in a hot ring with probability 2^{-(d-d0)} iff the
        // entry ring was hot (bitwise independence of a uniform
        // destination).
        let p_entry = |d0: usize| (1u64 << (n - 1 - d0)) as f64 / (n_nodes - 1.0);
        let family = |d0: usize, hot: bool| -> f64 {
            let first = if hot { b_hot_avg[d0] } else { b_plain };
            let mut s = lm + 1.0 + first;
            for d in d0 + 1..n {
                let p_hot_ring = if hot {
                    0.5f64.powi((d - d0) as i32)
                } else {
                    0.0
                };
                s += 0.5
                    * (p_hot_ring * (1.0 + b_hot_avg[d]) + (1.0 - p_hot_ring) * (1.0 + b_plain));
            }
            s
        };
        let mut s_r_network = 0.0;
        for d0 in 0..n {
            let hot_share = 0.5f64.powi(d0 as i32);
            s_r_network += p_entry(d0)
                * (hot_share * family(d0, true) + (1.0 - hot_share) * family(d0, false));
        }

        // --- Per-source composition: one source per address mask.  A hot
        // message from mask `m` crosses the level-`i` hot channel for every
        // set bit `i`, paying `1 + B_i`; its entry channel is the level of
        // its lowest set bit.  Source-queue waits are M/G/1 at rate λ/V on
        // each node's own traffic mix (Eq. 32 per source).
        let vc_rate = self.lambda / v as f64;
        let wait = |s: f64| -> Result<f64, ModelError> {
            mg1::waiting_time(vc_rate, s, lm).map_err(|sat| ModelError::Saturated {
                max_utilization: sat.rho,
            })
        };
        let mut ws_sum = 0.0;
        let mut s_h_sum = 0.0;
        let masks = (1u64 << self.n) - 1;
        for mask in 1..=masks {
            let mut s_h_net = lm;
            let mut bits = mask;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                s_h_net += 1.0 + hot_blocking[i];
                bits &= bits - 1;
            }
            let d0 = mask.trailing_zeros() as usize;
            let w = wait((1.0 - h) * s_r_network + h * s_h_net)?;
            ws_sum += w;
            s_h_sum += (s_h_net + w) * vbar_level[d0];
        }
        let source_wait = (ws_sum + wait(s_r_network)?) / n_nodes;
        let hot_latency = s_h_sum / (n_nodes - 1.0);

        // --- Regular latency: the entry-family mix, each family scaled by
        // its entry channel family's multiplexing degree and carrying the
        // mean source wait once.
        let mut regular_latency = 0.0;
        for d0 in 0..n {
            let hot_share = 0.5f64.powi(d0 as i32);
            regular_latency += p_entry(d0)
                * (hot_share * (family(d0, true) + source_wait) * vbar_hot_avg[d0]
                    + (1.0 - hot_share) * (family(d0, false) + source_wait) * vbar_plain);
        }

        let latency = (1.0 - h) * regular_latency + h * hot_latency;

        Ok(HypercubeOutput {
            latency,
            regular_latency,
            hot_latency,
            source_wait,
            max_utilization: max_util,
            hot_blocking,
        })
    }

    /// The hypercube saturation bound `λ* ≈ 2/(h N (Lm+1))` (exact once
    /// the regular share of the binding channel is included).
    pub fn saturation_bound(&self) -> f64 {
        let lm1 = self.message_length as f64 + 1.0;
        let hot_share = self.hot_fraction * self.num_nodes() / 2.0;
        let reg_share = (1.0 - self.hot_fraction) * 0.5;
        1.0 / ((hot_share + reg_share) * lm1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_configs() {
        assert!(HypercubeModel::new(0, 2, 32, 1e-4, 0.2).is_err());
        assert!(HypercubeModel::new(8, 0, 32, 1e-4, 0.2).is_err());
        assert!(HypercubeModel::new(8, 2, 0, 1e-4, 0.2).is_err());
        assert!(HypercubeModel::new(8, 2, 32, 1e-4, 1.5).is_err());
        assert!(HypercubeModel::new(8, 2, 32, f64::NAN, 0.2).is_err());
    }

    #[test]
    fn zero_load_matches_mean_distance() {
        let m = HypercubeModel::new(8, 2, 32, 1e-12, 0.2).unwrap();
        let out = m.solve().unwrap();
        assert!(
            (out.latency - m.zero_load_latency()).abs() < 0.01,
            "latency {} vs zero-load {}",
            out.latency,
            m.zero_load_latency()
        );
        // Mean distance of the 256-node hypercube: 8·128/255 ≈ 4.0157.
        assert!((m.mean_distance() - 8.0 * 128.0 / 255.0).abs() < 1e-12);
    }

    #[test]
    fn hot_rates_double_per_level() {
        let m = HypercubeModel::new(6, 2, 32, 1e-3, 0.5).unwrap();
        for i in 0..5 {
            assert!((m.hot_channel_rate(i + 1) - 2.0 * m.hot_channel_rate(i)).abs() < 1e-15);
        }
        // Total hot traffic entering the hot node: Σ over levels of
        // (channels per level × rate) = Σ 2^{n-1-i}·λh2^i = n λh 2^{n-1}:
        // every hot message crosses ~n/2 of the levels... sanity: the
        // level-(n-1) channel alone carries λhN/2.
        assert!((m.hot_channel_rate(5) - 1e-3 * 0.5 * 32.0).abs() < 1e-15);
    }

    #[test]
    fn latency_monotone_in_load() {
        let mut prev = 0.0;
        for i in 1..=8 {
            let lambda = i as f64 * 2e-5;
            let out = HypercubeModel::new(8, 2, 32, lambda, 0.3)
                .unwrap()
                .solve()
                .unwrap();
            assert!(out.latency > prev);
            prev = out.latency;
        }
    }

    #[test]
    fn saturates_at_the_bound() {
        let m = HypercubeModel::new(8, 2, 32, 0.0, 0.3).unwrap();
        let bound = m.saturation_bound();
        let below = HypercubeModel::new(8, 2, 32, 0.95 * bound, 0.3).unwrap();
        assert!(below.solve().is_ok());
        let above = HypercubeModel::new(8, 2, 32, 1.05 * bound, 0.3).unwrap();
        assert!(above.solve().is_err());
    }

    #[test]
    fn hot_messages_pay_more_than_regular() {
        let out = HypercubeModel::new(8, 2, 32, 5e-5, 0.4)
            .unwrap()
            .solve()
            .unwrap();
        assert!(out.hot_latency > out.regular_latency);
        // Blocking grows monotonically with level (rates double).
        for w in out.hot_blocking.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn hypercube_saturates_later_than_torus_at_equal_n() {
        // 256 nodes: hypercube funnels λhN/2 through its worst channel,
        // the 16×16 torus funnels λh·k(k-1) = λh·240 — nearly twice as
        // much, so the torus saturates earlier.
        let hyper = HypercubeModel::new(8, 2, 32, 0.0, 0.2)
            .unwrap()
            .saturation_bound();
        let torus = crate::sweep::find_saturation(
            crate::ModelConfig::paper_validation(16, 2, 32, 0.0, 0.2),
            1e-8,
            1e-2,
            1e-3,
        )
        .expect("torus saturates inside the bracket");
        assert!(
            hyper > 1.5 * torus,
            "hypercube bound {hyper:.3e} vs torus λ* {torus:.3e}"
        );
    }
}
