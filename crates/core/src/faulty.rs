//! The faulty-network latency model: the paper's blocking analysis over
//! the *exact* surviving-route substrate of a [`FaultRouter`].
//!
//! The closed-form model ([`NCubeModel`](crate::ncube::NCubeModel))
//! assumes the fault-free unidirectional torus, where symmetry collapses
//! the per-channel state onto a handful of position families.  Faults —
//! and the bidirectional/mesh geometries — break that symmetry: routes
//! detour, load redistributes unevenly, and some pairs stop communicating
//! altogether.  [`FaultyNCubeModel`] rebuilds the same queueing chain
//! directly per directed channel:
//!
//! 1. **Rates** — [`FaultyChannelRates`] walks every ordered reachable
//!    pair's surviving route once and accumulates the exact regular and
//!    hot-spot rate per channel (detour-corrected load redistribution);
//!    unreachable pairs contribute nothing, matching the simulator's
//!    drop-at-generation semantics.
//! 2. **Blocking** — each channel gets the paper's two-class blocking
//!    operator (Eqs. 26–30) at its own rates, under the default
//!    load-independent pipelined-transfer holding time `Lm + 1`.
//! 3. **Composition** — a message's network latency is `Lm` plus
//!    `1 + B_c` per channel of its route; the per-pair latency is scaled
//!    by the multiplexing factor of its entry channel (Eqs. 33–35) and
//!    the source queue adds the Eq. (28) M/G/1 wait at rate `λ_inj / V`,
//!    where `λ_inj` counts only the *delivered* share of generation.
//!
//! Superposition is approximate exactly where it is in the paper: channel
//! arrivals are treated as independent Poisson streams even though the
//! detoured routes correlate them, and blocking delays add along a route.
//! What is *exact* here, unlike the closed forms, is the geometry: rates
//! come from the true surviving shortest routes, so the model reduces to
//! route enumeration at zero load.
//!
//! With an **empty fault set on a unidirectional torus** (including every
//! `k = 2` network, where the two link kinds coincide) the model
//! *delegates* to [`NCubeModel`](crate::ncube::NCubeModel), reproducing
//! its output bit-for-bit; [`FaultyNCubeModel::solve_general`] forces the
//! per-channel path for cross-validation.

use crate::ncube::{NCubeConfig, NCubeModel};
use crate::rates::FaultyChannelRates;
use crate::solver::{ModelError, MultiplexingModel, RHO_CAP};
use crate::sweep::{SaturationError, SaturationReport};
use kncube_queueing::blocking::{channel_metrics, TrafficClass};
use kncube_queueing::mg1;
use kncube_queueing::vc_multiplex::multiplexing_factor;
use kncube_topology::{Boundary, ChannelId, FaultRouter, FaultSet, KAryNCube, LinkKind, NodeId};

/// Hard cap on `N = k^n` for the faulty model: every solve walks all
/// `N²` routes, so the practical regime is small networks (the same ones
/// the exact [`FaultRouter`] substrate targets).
pub const MAX_FAULTY_MODEL_NODES: u64 = 1 << 12;

/// Configuration of the faulty-network model.
///
/// The topology is carried by the fault set (possibly empty —
/// [`FaultSet::none`]); the traffic knobs mirror
/// [`NCubeConfig`](crate::ncube::NCubeConfig).  The hot node defaults to
/// `NodeId(0)`, the simulator's convention ([`SimConfig::ncube`] uses the
/// same), which on a mesh is a *corner* — position matters once wrap
/// links are gone.
///
/// [`SimConfig::ncube`]: ../../kncube_sim/struct.SimConfig.html
#[derive(Clone, Debug)]
pub struct FaultyNCubeConfig {
    /// The failed routers and links, carrying the topology they live in.
    pub faults: FaultSet,
    /// The hot-spot destination (Pfister–Norton).  May itself be failed,
    /// in which case all hot traffic is dropped at generation.
    pub hot_node: NodeId,
    /// Virtual channels per physical channel, `V >= 1`.
    pub virtual_channels: u32,
    /// Message length `Lm` in flits.
    pub message_length: u32,
    /// Per-node generation rate `λ` in messages/cycle.
    pub lambda: f64,
    /// Hot-spot fraction `h` in `[0, 1]`.
    pub hot_fraction: f64,
    /// The VC multiplexing model (shared with the fault-free solver).
    pub multiplexing: MultiplexingModel,
}

impl FaultyNCubeConfig {
    /// A configuration with the default hot node `NodeId(0)` and the
    /// default multiplexing model.
    pub fn new(faults: FaultSet, v: u32, lm: u32, lambda: f64, h: f64) -> Self {
        FaultyNCubeConfig {
            faults,
            hot_node: NodeId(0),
            virtual_channels: v,
            message_length: lm,
            lambda,
            hot_fraction: h,
            multiplexing: MultiplexingModel::default(),
        }
    }

    /// Replace the hot-spot destination.
    pub fn with_hot_node(mut self, hot: NodeId) -> Self {
        self.hot_node = hot;
        self
    }

    /// The topology the faults live in.
    pub fn topology(&self) -> &KAryNCube {
        self.faults.topology()
    }
}

/// What one faulty-model evaluation produces.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultyNCubeOutput {
    /// Mean latency over all *delivered* messages, in cycles.
    pub latency: f64,
    /// Mean latency of delivered regular (uniform-destination) messages.
    pub regular_latency: f64,
    /// Mean latency of delivered hot-spot messages (0.0 when no hot
    /// traffic is delivered: `h = 0` or the hot node unreachable).
    pub hot_latency: f64,
    /// Mean source-queue wait, averaged over the healthy sources.
    pub source_wait_regular: f64,
    /// Largest channel utilization encountered (the saturation witness).
    pub max_utilization: f64,
    /// Ordered pairs with a surviving route.
    pub reachable_pairs: u64,
    /// `reachable_pairs / (N(N-1))`.
    pub reachable_fraction: f64,
    /// Mean surviving-route detour over reachable pairs, in hops.
    pub mean_detour_hops: f64,
    /// Fraction of generated traffic that is delivered (the complement of
    /// the simulator's `dropped_unreachable` share, in expectation).
    pub delivered_fraction: f64,
    /// Fixed-point iterations: the delegate's count on the bit-exact
    /// fault-free path, 1 for the (non-iterative) per-channel path.
    pub iterations: usize,
    /// Whether this evaluation delegated to the closed-form
    /// [`NCubeModel`](crate::ncube::NCubeModel).
    pub delegated: bool,
}

/// The faulty-network latency model.  See the module docs for the
/// decomposition; construction performs the (one-off) route enumeration,
/// so re-solving at other rates ([`FaultyNCubeModel::solve_at`]) reuses
/// the accumulated per-channel unit loads.
pub struct FaultyNCubeModel {
    config: FaultyNCubeConfig,
    router: FaultRouter,
    rates: FaultyChannelRates,
}

impl FaultyNCubeModel {
    /// Validate `config`, build the fault-aware router, and enumerate the
    /// per-channel loads.
    pub fn new(config: FaultyNCubeConfig) -> Result<Self, ModelError> {
        let topo = *config.topology();
        if config.virtual_channels < 1 {
            return Err(ModelError::BadConfig(
                "virtual_channels must be >= 1".into(),
            ));
        }
        if config.message_length < 1 {
            return Err(ModelError::BadConfig("message_length must be >= 1".into()));
        }
        if !(0.0..=1.0).contains(&config.hot_fraction) {
            return Err(ModelError::BadConfig(
                "hot_fraction must be in [0, 1]".into(),
            ));
        }
        if !config.lambda.is_finite() || config.lambda < 0.0 {
            return Err(ModelError::BadConfig(
                "lambda must be finite and non-negative".into(),
            ));
        }
        if u64::from(topo.num_nodes()) > MAX_FAULTY_MODEL_NODES {
            return Err(ModelError::BadConfig(format!(
                "faulty model limited to {MAX_FAULTY_MODEL_NODES} nodes (got {})",
                topo.num_nodes()
            )));
        }
        if config.hot_node.index() >= topo.num_nodes() as usize {
            return Err(ModelError::BadConfig(format!(
                "hot node {} outside the {}-node topology",
                config.hot_node.0,
                topo.num_nodes()
            )));
        }
        let router = FaultRouter::new(config.faults.clone());
        let rates = FaultyChannelRates::from_router(&router, config.hot_node, config.hot_fraction);
        Ok(FaultyNCubeModel {
            config,
            router,
            rates,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &FaultyNCubeConfig {
        &self.config
    }

    /// The fault-aware router backing the enumeration.
    pub fn router(&self) -> &FaultRouter {
        &self.router
    }

    /// The enumerated per-channel loads (per unit `λ`).
    pub fn channel_rates(&self) -> &FaultyChannelRates {
        &self.rates
    }

    /// Whether [`FaultyNCubeModel::solve`] delegates to the closed-form
    /// [`NCubeModel`](crate::ncube::NCubeModel): empty fault set on a
    /// torus whose geometry the closed forms cover exactly — the
    /// unidirectional link kind, or `k = 2` where the two link kinds
    /// coincide (each ring has two nodes, so `Plus` reaches everything
    /// `Minus` could; pinned by `tests/degenerate_k2.rs`).
    pub fn delegates_to_ncube(&self) -> bool {
        let topo = self.config.topology();
        self.config.faults.is_empty()
            && topo.boundary() == Boundary::Torus
            && (topo.link_kind() == LinkKind::Unidirectional || topo.k() == 2)
    }

    /// Solve at the configured `λ`.
    pub fn solve(&self) -> Result<FaultyNCubeOutput, ModelError> {
        self.solve_at(self.config.lambda)
    }

    /// Solve at an arbitrary rate `lambda`, reusing the enumerated loads.
    pub fn solve_at(&self, lambda: f64) -> Result<FaultyNCubeOutput, ModelError> {
        if self.delegates_to_ncube() {
            self.solve_delegated(lambda)
        } else {
            self.solve_general_at(lambda)
        }
    }

    /// The headline number: mean delivered-message latency at the
    /// configured `λ`.
    pub fn mean_latency(&self) -> Result<f64, ModelError> {
        self.solve().map(|out| out.latency)
    }

    /// Latency at `λ → 0`: `Lm` plus the delivered-traffic-weighted mean
    /// surviving distance (NaN-free; a zero-load network cannot
    /// saturate).
    pub fn zero_load_latency(&self) -> f64 {
        self.solve_at(0.0)
            .map(|out| out.latency)
            .expect("zero load cannot saturate")
    }

    /// Find the saturation rate `λ*` by bisection on solvability, exactly
    /// as [`find_saturation_ncube_report`](crate::sweep) does for the
    /// fault-free model.  Delegates to
    /// [`find_saturation_faulty_report`](crate::sweep::find_saturation_faulty_report).
    pub fn saturation(
        &self,
        lo: f64,
        hi: f64,
        rel_tol: f64,
    ) -> Result<SaturationReport, SaturationError> {
        crate::sweep::find_saturation_faulty_report(self, lo, hi, rel_tol)
    }

    /// The bit-exact fault-free reduction: map the closed-form solver's
    /// output onto the faulty-model shape.
    fn solve_delegated(&self, lambda: f64) -> Result<FaultyNCubeOutput, ModelError> {
        let topo = self.config.topology();
        let mut cfg = NCubeConfig::new(
            topo.k(),
            topo.n(),
            self.config.virtual_channels,
            self.config.message_length,
            lambda,
            self.config.hot_fraction,
        );
        cfg.multiplexing = self.config.multiplexing;
        let out = NCubeModel::new(cfg)?.solve()?;
        let n = u64::from(topo.num_nodes());
        Ok(FaultyNCubeOutput {
            latency: out.latency,
            regular_latency: out.regular_latency,
            hot_latency: out.hot_latency,
            source_wait_regular: out.source_wait_regular,
            max_utilization: out.max_utilization,
            reachable_pairs: n * (n - 1),
            reachable_fraction: 1.0,
            mean_detour_hops: 0.0,
            delivered_fraction: 1.0,
            iterations: out.iterations,
            delegated: true,
        })
    }

    /// Force the per-channel path at the configured `λ`, even where
    /// [`FaultyNCubeModel::solve`] would delegate — the cross-validation
    /// hook for the reduction tests.
    pub fn solve_general(&self) -> Result<FaultyNCubeOutput, ModelError> {
        self.solve_general_at(self.config.lambda)
    }

    /// Force the per-channel path at an arbitrary rate `lambda`.
    pub fn solve_general_at(&self, lambda: f64) -> Result<FaultyNCubeOutput, ModelError> {
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(ModelError::BadConfig(
                "lambda must be finite and non-negative".into(),
            ));
        }
        let topo = *self.config.topology();
        let n_nodes = topo.num_nodes();
        let others = (n_nodes - 1) as f64;
        let lm = self.config.message_length as f64;
        // The default load-independent pipelined-transfer holding time:
        // one header cycle per channel plus the message body (the same
        // `Lm + 1` the fault-free solver converges to immediately).
        let hold = lm + 1.0;
        let v = self.config.virtual_channels;
        let h = self.config.hot_fraction;
        let hot_node = self.config.hot_node;
        let num_channels = topo.num_channels() as usize;

        // --- Per-channel blocking, utilization and multiplexing degree.
        let mut blocking = vec![0.0f64; num_channels];
        let mut vbar = vec![1.0f64; num_channels];
        let mut max_utilization = 0.0f64;
        for id in 0..num_channels {
            let cid = ChannelId(id as u32);
            let regular = TrafficClass::new(self.rates.regular_rate(cid, lambda), hold);
            let hot = TrafficClass::new(self.rates.hot_rate(cid, lambda), hold);
            let metrics = channel_metrics(regular, hot, lm, RHO_CAP);
            blocking[id] = metrics.delay;
            max_utilization = max_utilization.max(metrics.utilization);
            vbar[id] = match self.config.multiplexing {
                MultiplexingModel::DallyMarkov => multiplexing_factor(metrics.utilization, v),
                MultiplexingModel::ClassAware => {
                    1.0 + metrics.utilization.clamp(0.0, (v - 1).max(1) as f64)
                }
            };
        }
        if max_utilization >= 1.0 {
            return Err(ModelError::Saturated { max_utilization });
        }

        // --- Per-source composition over the same route enumeration.
        let mut regular_num = 0.0;
        let mut regular_den = 0.0;
        let mut hot_num = 0.0;
        let mut hot_den = 0.0;
        let mut wait_sum = 0.0;
        let mut healthy_sources = 0u32;
        // (network latency, entry-channel v̄, is-hot-destination) per
        // reachable destination of the current source.
        let mut pairs: Vec<(f64, f64, bool)> = Vec::with_capacity(n_nodes as usize);
        for src in topo.nodes() {
            if self.config.faults.node_failed(src) {
                continue;
            }
            healthy_sources += 1;
            let regular_share = if src == hot_node { 1.0 } else { 1.0 - h };
            let pair_weight = regular_share / others;
            pairs.clear();
            let mut service_num = 0.0;
            let mut delivered_weight = 0.0;
            for dest in topo.nodes() {
                if dest == src || self.router.distance(src, dest).is_none() {
                    continue;
                }
                let mut s_net = lm;
                let mut entry_vbar = 0.0;
                let mut cur = src;
                while cur != dest {
                    let hop = self
                        .router
                        .next_hop(cur, dest)
                        .expect("finite distance implies a next hop");
                    let id = hop.channel.id(&topo).index();
                    if cur == src {
                        entry_vbar = vbar[id];
                    }
                    s_net += 1.0 + blocking[id];
                    cur = hop.channel.to(&topo);
                }
                let is_hot = dest == hot_node && src != hot_node;
                let mut weight = pair_weight;
                if is_hot {
                    weight += h;
                }
                service_num += weight * s_net;
                delivered_weight += weight;
                pairs.push((s_net, entry_vbar, is_hot));
            }
            // Source queue: Eq. (28) at the *delivered* injection rate per
            // VC, with the delivered-mix mean network latency as service.
            let wait = if delivered_weight > 0.0 {
                let service = service_num / delivered_weight;
                let injection = lambda * delivered_weight / v as f64;
                mg1::waiting_time(injection, service, lm).map_err(|sat| ModelError::Saturated {
                    max_utilization: sat.rho,
                })?
            } else {
                0.0
            };
            wait_sum += wait;
            for &(s_net, entry_vbar, is_hot) in &pairs {
                let scaled = (s_net + wait) * entry_vbar;
                regular_num += pair_weight * scaled;
                regular_den += pair_weight;
                if is_hot {
                    hot_num += h * scaled;
                    hot_den += h;
                }
            }
        }
        let latency_num = regular_num + hot_num;
        let latency_den = regular_den + hot_den;

        let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
        let n64 = u64::from(n_nodes);
        Ok(FaultyNCubeOutput {
            latency: ratio(latency_num, latency_den),
            regular_latency: ratio(regular_num, regular_den),
            hot_latency: ratio(hot_num, hot_den),
            source_wait_regular: if healthy_sources > 0 {
                wait_sum / healthy_sources as f64
            } else {
                0.0
            },
            max_utilization,
            reachable_pairs: self.rates.reachable_pairs(),
            reachable_fraction: self.rates.reachable_pairs() as f64 / (n64 * (n64 - 1)) as f64,
            mean_detour_hops: self.router.expected_detour(),
            delivered_fraction: latency_den / n_nodes as f64,
            iterations: 1,
            delegated: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty(topo: KAryNCube) -> FaultSet {
        FaultSet::none(topo)
    }

    #[test]
    fn empty_uni_torus_delegates_bit_exact() {
        for (k, n) in [(8u32, 2u32), (4, 3)] {
            let topo = KAryNCube::unidirectional(k, n).unwrap();
            for lambda in [0.0, 1e-5, 1e-4] {
                let model =
                    FaultyNCubeModel::new(FaultyNCubeConfig::new(empty(topo), 2, 16, lambda, 0.2))
                        .unwrap();
                assert!(model.delegates_to_ncube());
                let faulty = model.solve().unwrap();
                let plain = NCubeModel::new(NCubeConfig::new(k, n, 2, 16, lambda, 0.2))
                    .unwrap()
                    .solve()
                    .unwrap();
                assert!(faulty.delegated);
                assert_eq!(faulty.latency.to_bits(), plain.latency.to_bits());
                assert_eq!(
                    faulty.regular_latency.to_bits(),
                    plain.regular_latency.to_bits()
                );
                assert_eq!(faulty.hot_latency.to_bits(), plain.hot_latency.to_bits());
                assert_eq!(faulty.reachable_fraction, 1.0);
                assert_eq!(faulty.mean_detour_hops, 0.0);
            }
        }
    }

    #[test]
    fn bidirectional_and_mesh_take_the_general_path() {
        for topo in [
            KAryNCube::bidirectional(8, 2).unwrap(),
            KAryNCube::mesh(8, 2).unwrap(),
        ] {
            let model =
                FaultyNCubeModel::new(FaultyNCubeConfig::new(empty(topo), 2, 16, 1e-4, 0.2))
                    .unwrap();
            assert!(!model.delegates_to_ncube());
            let out = model.solve().unwrap();
            assert!(!out.delegated);
            assert!(out.latency > 16.0);
            assert_eq!(out.reachable_fraction, 1.0);
        }
    }

    #[test]
    fn general_path_tracks_the_closed_forms_on_the_empty_uni_torus() {
        // The per-channel path and the closed-form solver decompose the
        // same queueing chain differently (exact uniform-over-others
        // destinations vs. the paper's include-self averages), so they
        // agree approximately, not bitwise.  At moderate load the gap
        // stays within a few percent.
        let topo = KAryNCube::unidirectional(8, 2).unwrap();
        let cfg = NCubeConfig::new(8, 2, 2, 16, 0.0, 0.2);
        let sat = crate::sweep::find_saturation_ncube(cfg, 1e-9, 1e-2, 1e-3).unwrap();
        for frac in [0.05, 0.3, 0.5] {
            let lambda = frac * sat;
            let plain = NCubeModel::new(NCubeConfig { lambda, ..cfg })
                .unwrap()
                .solve()
                .unwrap();
            let general =
                FaultyNCubeModel::new(FaultyNCubeConfig::new(empty(topo), 2, 16, lambda, 0.2))
                    .unwrap()
                    .solve_general()
                    .unwrap();
            let rel = (general.latency - plain.latency).abs() / plain.latency;
            assert!(
                rel < 0.10,
                "frac {frac}: general {} vs closed-form {} (rel {rel:.4})",
                general.latency,
                plain.latency
            );
        }
    }

    #[test]
    fn zero_load_latency_is_lm_plus_weighted_mean_distance() {
        let topo = KAryNCube::mesh(4, 2).unwrap();
        let h = 0.3;
        let hot = NodeId(0);
        let mut faults = FaultSet::none(topo);
        faults.fail_node(NodeId(5));
        let model =
            FaultyNCubeModel::new(FaultyNCubeConfig::new(faults.clone(), 2, 16, 0.0, h)).unwrap();
        let out = model.solve().unwrap();
        // Recompute from the router's distance table.
        let router = FaultRouter::new(faults);
        let others = (topo.num_nodes() - 1) as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for src in topo.nodes() {
            let share = if src == hot { 1.0 } else { 1.0 - h };
            for dest in topo.nodes() {
                if let Some(d) = router.distance(src, dest).filter(|_| dest != src) {
                    let mut w = share / others;
                    if dest == hot && src != hot {
                        w += h;
                    }
                    num += w * (16.0 + d as f64);
                    den += w;
                }
            }
        }
        let expected = num / den;
        assert!(
            (out.latency - expected).abs() < 1e-9,
            "{} vs {expected}",
            out.latency
        );
        assert_eq!(out.latency, model.zero_load_latency());
    }

    #[test]
    fn latency_grows_with_lambda_until_saturation() {
        let topo = KAryNCube::bidirectional(8, 2).unwrap();
        let mut faults = FaultSet::none(topo);
        faults.fail_node(NodeId(11));
        let model = FaultyNCubeModel::new(FaultyNCubeConfig::new(faults, 2, 16, 0.0, 0.2)).unwrap();
        let sat = model.saturation(1e-9, 1e-2, 1e-3).unwrap();
        assert!(sat.lambda_star > 0.0);
        assert!(sat.probes > 10);
        assert!(sat.solver_iterations > 0);
        let mut prev = 0.0;
        for i in 1..=8 {
            let lambda = sat.lambda_star * 0.9 * i as f64 / 8.0;
            let out = model.solve_at(lambda).unwrap();
            assert!(out.latency > prev, "λ={lambda}: {} <= {prev}", out.latency);
            prev = out.latency;
        }
        // Past λ* the model reports saturation.
        assert!(matches!(
            model.solve_at(sat.lambda_star * 1.5),
            Err(ModelError::Saturated { .. })
        ));
    }

    #[test]
    fn faults_near_the_hot_node_cost_saturation_bandwidth() {
        let topo = KAryNCube::bidirectional(8, 2).unwrap();
        let fault_free =
            FaultyNCubeModel::new(FaultyNCubeConfig::new(empty(topo), 2, 16, 0.0, 0.3)).unwrap();
        let mut faults = FaultSet::none(topo);
        // Kill both dim-1 links right next to the hot node (0,1)→(0,0)
        // and (0,7)→(0,0): the entire off-row hot funnel must detour onto
        // the dim-0 last hops, concentrating the bottleneck.
        faults.fail_link(kncube_topology::Channel {
            from: topo.node_at(&[0, 1]),
            dim: 1,
            direction: kncube_topology::Direction::Minus,
        });
        faults.fail_link(kncube_topology::Channel {
            from: topo.node_at(&[0, 7]),
            dim: 1,
            direction: kncube_topology::Direction::Plus,
        });
        let faulty =
            FaultyNCubeModel::new(FaultyNCubeConfig::new(faults, 2, 16, 0.0, 0.3)).unwrap();
        let sat_free = fault_free.saturation(1e-9, 1e-2, 1e-3).unwrap().lambda_star;
        let sat_faulty = faulty.saturation(1e-9, 1e-2, 1e-3).unwrap().lambda_star;
        assert!(
            sat_faulty < sat_free,
            "λ* should drop: {sat_faulty} vs {sat_free}"
        );
    }

    #[test]
    fn fully_partitioned_network_is_a_legal_degenerate_input() {
        let topo = KAryNCube::mesh(4, 2).unwrap();
        let mut faults = FaultSet::none(topo);
        for node in topo.nodes() {
            faults.fail_node(node);
        }
        let model =
            FaultyNCubeModel::new(FaultyNCubeConfig::new(faults, 2, 16, 1e-3, 0.2)).unwrap();
        let out = model.solve().unwrap();
        assert_eq!(out.reachable_pairs, 0);
        assert_eq!(out.reachable_fraction, 0.0);
        assert_eq!(out.delivered_fraction, 0.0);
        assert_eq!(out.latency, 0.0);
        assert_eq!(out.max_utilization, 0.0);
        // No traffic ever saturates: the bisection cannot bracket λ*.
        assert!(matches!(
            model.saturation(1e-9, 1e-2, 1e-3),
            Err(SaturationError::BracketNotFound { .. })
        ));
    }

    #[test]
    fn failed_hot_node_drops_all_hot_traffic() {
        let topo = KAryNCube::bidirectional(4, 2).unwrap();
        let mut faults = FaultSet::none(topo);
        faults.fail_node(NodeId(0));
        let model =
            FaultyNCubeModel::new(FaultyNCubeConfig::new(faults, 2, 16, 1e-3, 0.4)).unwrap();
        let out = model.solve().unwrap();
        assert_eq!(out.hot_latency, 0.0);
        assert!(out.latency > 16.0);
        // 15 healthy sources deliver only their regular share, and the
        // uniform share aimed at the dead hot node drops too: each source
        // delivers 0.6 · 14/15, so the network-wide fraction is
        // 15 · 0.6 · (14/15) / 16.
        let expected = 0.6 * 14.0 / 16.0;
        assert!(
            (out.delivered_fraction - expected).abs() < 1e-9,
            "{} vs {expected}",
            out.delivered_fraction
        );
    }

    #[test]
    fn bad_configs_are_reported_not_panicked() {
        let topo = KAryNCube::bidirectional(4, 2).unwrap();
        let ok = |cfg: FaultyNCubeConfig| FaultyNCubeModel::new(cfg).map(|_| ());
        assert!(matches!(
            ok(FaultyNCubeConfig::new(empty(topo), 0, 16, 1e-4, 0.2)),
            Err(ModelError::BadConfig(_))
        ));
        assert!(matches!(
            ok(FaultyNCubeConfig::new(empty(topo), 2, 0, 1e-4, 0.2)),
            Err(ModelError::BadConfig(_))
        ));
        assert!(matches!(
            ok(FaultyNCubeConfig::new(empty(topo), 2, 16, f64::NAN, 0.2)),
            Err(ModelError::BadConfig(_))
        ));
        assert!(matches!(
            ok(FaultyNCubeConfig::new(empty(topo), 2, 16, 1e-4, 1.5)),
            Err(ModelError::BadConfig(_))
        ));
        assert!(matches!(
            ok(FaultyNCubeConfig::new(empty(topo), 2, 16, 1e-4, 0.2).with_hot_node(NodeId(16))),
            Err(ModelError::BadConfig(_))
        ));
    }
}
