//! Load sweeps, warm-started continuation, and saturation search.
//!
//! The figures of the paper are latency-vs-λ curves.  This module sweeps
//! the model across a λ grid and finds the saturation rate `λ*` by
//! bisection on model solvability.  Sweep points are independent, so the
//! sweep runs as a rayon parallel map: a bounded worker pool of at most
//! `available_parallelism()` threads, not one OS thread per λ point —
//! this is the hot path of every figure binary, where grids can reach
//! hundreds of points.
//!
//! Neighbouring grid points also have *nearby fixed points*, which the
//! cold sweeps ignore.  The continuation entry points
//! ([`solve_continued`], [`ncube_latency_curve_continued`]) exploit it:
//! each solve is warm-started from the previous converged state
//! ([`NCubeModel::solve_warm`]).  Combined with Anderson acceleration
//! (`Acceleration::Anderson` in the config's solver options) this cuts
//! the mean iteration count several-fold under the iterative service
//! model, most dramatically near saturation where plain Picard slows to
//! hundreds of iterations per point.
//! [`find_saturation_ncube_report`] threads the same warm state through
//! the bisection probes and surfaces the probe/iteration counts that the
//! plain `find_saturation*` wrappers used to discard.

use crate::faulty::{FaultyNCubeModel, FaultyNCubeOutput};
use crate::ncube::{NCubeConfig, NCubeModel, NCubeOutput};
use crate::solver::{HotSpotModel, ModelConfig, ModelError, ModelOutput};
use rayon::prelude::*;

/// One point of a latency curve.
#[derive(Clone, Debug)]
pub struct CurvePoint {
    /// The per-node generation rate of this point.
    pub lambda: f64,
    /// The model solution, or the saturation error past `λ*`.
    pub result: Result<ModelOutput, ModelError>,
}

/// Evaluate the model at each `lambda`, in parallel on the pooled worker
/// threads.  Points come back in input order.
pub fn latency_curve(base: ModelConfig, lambdas: &[f64]) -> Vec<CurvePoint> {
    lambdas
        .par_iter()
        .map(|&lambda| {
            let result = HotSpotModel::new(ModelConfig { lambda, ..base }).and_then(|m| m.solve());
            CurvePoint { lambda, result }
        })
        .collect()
}

/// One point of a generalized n-cube latency curve.
#[derive(Clone, Debug)]
pub struct NCubeCurvePoint {
    /// The per-node generation rate of this point.
    pub lambda: f64,
    /// The model solution, or the saturation error past `λ*`.
    pub result: Result<NCubeOutput, ModelError>,
}

/// Evaluate the generalized model at each `lambda`, in parallel on the
/// pooled worker threads.  Points come back in input order.
pub fn ncube_latency_curve(base: NCubeConfig, lambdas: &[f64]) -> Vec<NCubeCurvePoint> {
    lambdas
        .par_iter()
        .map(|&lambda| {
            let result = NCubeModel::new(NCubeConfig { lambda, ..base }).and_then(|m| m.solve());
            NCubeCurvePoint { lambda, result }
        })
        .collect()
}

/// Solve a grid of configurations *in order*, warm-starting each fixed
/// point from the previous converged state.
///
/// The grid may mix geometries (λ/h/k/n sweeps alike): whenever the state
/// shape changes — or the previous point failed — the chain restarts cold,
/// so the result at every point is a valid solve of exactly that
/// configuration.  Order the grid so neighbours are close in parameter
/// space (e.g. ascending λ within a geometry) to get the full warm-start
/// win.
pub fn solve_continued(configs: &[NCubeConfig]) -> Vec<Result<NCubeOutput, ModelError>> {
    let mut warm: Option<Vec<f64>> = None;
    configs
        .iter()
        .map(|&cfg| match NCubeModel::new(cfg) {
            Ok(model) => match model.solve_warm(warm.as_deref()) {
                Ok((out, state)) => {
                    warm = Some(state);
                    Ok(out)
                }
                Err(e) => {
                    warm = None;
                    Err(e)
                }
            },
            Err(e) => {
                warm = None;
                Err(e)
            }
        })
        .collect()
}

/// [`ncube_latency_curve`] with warm-start continuation: the λ grid is
/// split into one contiguous chunk per pooled worker, and each chunk is
/// solved sequentially with the previous converged state as the next
/// initial guess.  Points come back in input order.
pub fn ncube_latency_curve_continued(base: NCubeConfig, lambdas: &[f64]) -> Vec<NCubeCurvePoint> {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(lambdas.len().max(1));
    let chunk_len = lambdas.len().div_ceil(workers.max(1)).max(1);
    let chunks: Vec<&[f64]> = lambdas.chunks(chunk_len).collect();
    let per_chunk: Vec<Vec<NCubeCurvePoint>> = chunks
        .par_iter()
        .map(|chunk| {
            let configs: Vec<NCubeConfig> = chunk
                .iter()
                .map(|&lambda| NCubeConfig { lambda, ..base })
                .collect();
            solve_continued(&configs)
                .into_iter()
                .zip(chunk.iter())
                .map(|(result, &lambda)| NCubeCurvePoint { lambda, result })
                .collect()
        })
        .collect();
    per_chunk.into_iter().flatten().collect()
}

/// Why [`find_saturation`] could not produce a saturation rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SaturationError {
    /// The requested bracket is malformed: `lo`/`hi`/`rel_tol` must be
    /// finite with `0 <= lo < hi` and `rel_tol > 0`.
    InvalidBracket {
        /// The lower edge as requested.
        lo: f64,
        /// The upper edge as requested.
        hi: f64,
        /// The requested relative tolerance.
        rel_tol: f64,
    },
    /// Geometric widening of `hi` never reached a saturated rate — the
    /// model stayed solvable up to `last_hi` (the last finite rate
    /// probed), so there is no `λ*` inside any reasonable bracket.
    BracketNotFound {
        /// The largest rate probed before giving up.
        last_hi: f64,
    },
}

impl std::fmt::Display for SaturationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SaturationError::InvalidBracket { lo, hi, rel_tol } => write!(
                f,
                "invalid saturation bracket: lo={lo}, hi={hi}, rel_tol={rel_tol} \
                 (need finite 0 <= lo < hi and rel_tol > 0)"
            ),
            SaturationError::BracketNotFound { last_hi } => write!(
                f,
                "saturation bracket not found: model still solvable at λ={last_hi:e}"
            ),
        }
    }
}

impl std::error::Error for SaturationError {}

/// What a saturation search did to find `λ*` — the bracketing rate plus
/// the solver work it took, so warm-start savings are measurable instead
/// of being discarded with the probe results.
#[derive(Clone, Copy, Debug)]
pub struct SaturationReport {
    /// The saturation rate `λ*` (midpoint of the final bracket).
    pub lambda_star: f64,
    /// Model evaluations performed during widening + bisection.
    pub probes: usize,
    /// Total fixed-point iterations across the *solvable* probes (failed
    /// probes abort without a converged count).
    pub solver_iterations: usize,
}

impl SaturationReport {
    /// Mean fixed-point iterations per probe (0 when nothing was probed;
    /// failed probes count in the denominator but contribute no
    /// iterations).
    pub fn mean_iterations(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.solver_iterations as f64 / self.probes as f64
        }
    }
}

/// Find the saturation rate `λ*` of `base` by bisection: the largest rate
/// at which the model still has a solution, bracketed to a relative width
/// of `rel_tol`.
///
/// `hi` should be saturated and `lo` solvable (or zero); the function
/// widens `hi` geometrically if it is not saturated yet.  If the widening
/// runs away — the model stays solvable until `hi` stops being a useful
/// rate — the search reports [`SaturationError::BracketNotFound`] instead
/// of panicking.
pub fn find_saturation(
    base: ModelConfig,
    lo: f64,
    hi: f64,
    rel_tol: f64,
) -> Result<f64, SaturationError> {
    find_saturation_report(base, lo, hi, rel_tol).map(|r| r.lambda_star)
}

/// [`find_saturation`] with the probe/iteration accounting.  The 2-D
/// model is the `n = 2` instance of [`NCubeModel`] (bit-identical by the
/// cross-validation suite), so the search probes the generalized solver
/// directly and inherits its warm-start continuation.
pub fn find_saturation_report(
    base: ModelConfig,
    lo: f64,
    hi: f64,
    rel_tol: f64,
) -> Result<SaturationReport, SaturationError> {
    find_saturation_ncube_report(base.as_ncube(), lo, hi, rel_tol)
}

/// [`find_saturation`] for the generalized n-cube model: the largest rate
/// at which [`NCubeModel`] still has a solution, to relative width
/// `rel_tol`.
pub fn find_saturation_ncube(
    base: NCubeConfig,
    lo: f64,
    hi: f64,
    rel_tol: f64,
) -> Result<f64, SaturationError> {
    find_saturation_ncube_report(base, lo, hi, rel_tol).map(|r| r.lambda_star)
}

/// [`find_saturation_ncube`] with the probe/iteration accounting.  Every
/// probe is warm-started from the converged state of the last *solvable*
/// probe — bisection probes cluster around `λ*`, so the states are close
/// and most probes converge in a handful of iterations.
pub fn find_saturation_ncube_report(
    base: NCubeConfig,
    lo: f64,
    hi: f64,
    rel_tol: f64,
) -> Result<SaturationReport, SaturationError> {
    let mut warm: Option<Vec<f64>> = None;
    let mut probes = 0usize;
    let mut iterations = 0usize;
    let lambda_star = bisect_saturation(lo, hi, rel_tol, |lambda| {
        probes += 1;
        match NCubeModel::new(NCubeConfig { lambda, ..base }) {
            Ok(model) => match model.solve_warm(warm.as_deref()) {
                Ok((out, state)) => {
                    iterations += out.iterations;
                    warm = Some(state);
                    true
                }
                Err(_) => false,
            },
            Err(_) => false,
        }
    })?;
    Ok(SaturationReport {
        lambda_star,
        probes,
        solver_iterations: iterations,
    })
}

/// One point of a faulty-network latency curve.
#[derive(Clone, Debug)]
pub struct FaultyCurvePoint {
    /// The per-node generation rate of this point.
    pub lambda: f64,
    /// The model solution, or the saturation error past `λ*`.
    pub result: Result<FaultyNCubeOutput, ModelError>,
}

/// Evaluate the faulty-network model at each `lambda`, in parallel on the
/// pooled worker threads.  The (expensive) route enumeration was done
/// once at model construction, so every point reuses it; points come back
/// in input order.
pub fn faulty_latency_curve(model: &FaultyNCubeModel, lambdas: &[f64]) -> Vec<FaultyCurvePoint> {
    lambdas
        .par_iter()
        .map(|&lambda| FaultyCurvePoint {
            lambda,
            result: model.solve_at(lambda),
        })
        .collect()
}

/// [`find_saturation_ncube`] for the faulty-network model: the largest
/// rate at which [`FaultyNCubeModel`] still has a solution, to relative
/// width `rel_tol`.
pub fn find_saturation_faulty(
    model: &FaultyNCubeModel,
    lo: f64,
    hi: f64,
    rel_tol: f64,
) -> Result<f64, SaturationError> {
    find_saturation_faulty_report(model, lo, hi, rel_tol).map(|r| r.lambda_star)
}

/// [`find_saturation_faulty`] with the probe/iteration accounting.  The
/// per-channel path is non-iterative (each solvable probe counts one
/// iteration); the delegated fault-free path reports the closed-form
/// solver's converged iteration counts.
pub fn find_saturation_faulty_report(
    model: &FaultyNCubeModel,
    lo: f64,
    hi: f64,
    rel_tol: f64,
) -> Result<SaturationReport, SaturationError> {
    let mut probes = 0usize;
    let mut iterations = 0usize;
    let lambda_star = bisect_saturation(lo, hi, rel_tol, |lambda| {
        probes += 1;
        match model.solve_at(lambda) {
            Ok(out) => {
                iterations += out.iterations;
                true
            }
            Err(_) => false,
        }
    })?;
    Ok(SaturationReport {
        lambda_star,
        probes,
        solver_iterations: iterations,
    })
}

/// The shared bisection behind all the saturation searches.
fn bisect_saturation(
    mut lo: f64,
    mut hi: f64,
    rel_tol: f64,
    mut solvable: impl FnMut(f64) -> bool,
) -> Result<f64, SaturationError> {
    if !(lo.is_finite() && hi.is_finite() && rel_tol.is_finite())
        || lo < 0.0
        || hi <= lo
        || rel_tol <= 0.0
    {
        return Err(SaturationError::InvalidBracket { lo, hi, rel_tol });
    }
    // Widen until hi is saturated (bounded: utilization grows linearly in
    // λ, so a few doublings always suffice for a solvable model; a model
    // that never saturates exhausts the guard instead).
    let mut guard = 0;
    while solvable(hi) {
        lo = hi;
        hi *= 2.0;
        guard += 1;
        if guard >= 64 || !hi.is_finite() {
            return Err(SaturationError::BracketNotFound { last_hi: lo });
        }
    }
    while (hi - lo) / hi > rel_tol {
        let mid = 0.5 * (lo + hi);
        if solvable(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_reports_points_in_input_order() {
        let base = ModelConfig::paper_validation(16, 2, 32, 0.0, 0.2);
        let lambdas = [1e-5, 1e-4, 2e-4, 9e-4];
        let curve = latency_curve(base, &lambdas);
        assert_eq!(curve.len(), 4);
        for (p, &l) in curve.iter().zip(&lambdas) {
            assert_eq!(p.lambda, l);
        }
        // Low points solve, the extreme one saturates.
        assert!(curve[0].result.is_ok());
        assert!(curve[1].result.is_ok());
        assert!(curve[3].result.is_err());
    }

    #[test]
    fn curve_latencies_monotone_until_saturation() {
        let base = ModelConfig::paper_validation(16, 2, 32, 0.0, 0.4);
        let lambdas: Vec<f64> = (1..=10).map(|i| i as f64 * 3e-5).collect();
        let curve = latency_curve(base, &lambdas);
        let mut prev = 0.0;
        for p in curve.iter().filter(|p| p.result.is_ok()) {
            let l = p.result.as_ref().unwrap().latency;
            assert!(l > prev);
            prev = l;
        }
    }

    #[test]
    fn wide_curve_handles_hundreds_of_points() {
        // The pooled sweep must digest a grid far wider than the CPU
        // count (the old code spawned one OS thread per point).
        let base = ModelConfig::paper_validation(16, 2, 32, 0.0, 0.2);
        let lambdas: Vec<f64> = (1..=400).map(|i| i as f64 * 2e-6).collect();
        let curve = latency_curve(base, &lambdas);
        assert_eq!(curve.len(), 400);
        for (p, &l) in curve.iter().zip(&lambdas) {
            assert_eq!(p.lambda, l);
        }
        assert!(curve.first().unwrap().result.is_ok());
        assert!(curve.last().unwrap().result.is_err());
    }

    #[test]
    fn saturation_orders_by_hot_fraction_and_length() {
        let sat = |lm: u32, h: f64| {
            find_saturation(
                ModelConfig::paper_validation(16, 2, lm, 0.0, h),
                1e-6,
                1e-3,
                1e-3,
            )
            .expect("paper configs saturate inside the bracket")
        };
        let s20 = sat(32, 0.2);
        let s40 = sat(32, 0.4);
        let s70 = sat(32, 0.7);
        assert!(s20 > s40 && s40 > s70, "{s20} {s40} {s70}");
        // Longer messages saturate earlier.
        let s20_long = sat(100, 0.2);
        assert!(s20_long < s20);
        // And the figures' axes bracket the saturation points: Fig. 1
        // h=20% plots to 6e-4, h=70% to 2e-4.
        assert!(s20 > 2e-4 && s20 < 9e-4, "λ*={s20}");
        assert!(s70 > 5e-5 && s70 < 3e-4, "λ*={s70}");
    }

    #[test]
    fn ncube_saturation_tracks_the_generalized_flit_bound() {
        use crate::ncube::{NCubeConfig, NCubeModel};
        for (k, n, h) in [(8u32, 3u32, 0.3f64), (4, 4, 0.5), (16, 2, 0.2)] {
            let base = NCubeConfig::new(k, n, 2, 16, 0.0, h);
            let bound = NCubeModel::new(base).unwrap().flit_bound();
            let sat = find_saturation_ncube(base, 1e-9, 1e-1, 1e-3)
                .expect("hot-spot n-cubes saturate inside the bracket");
            assert!(
                sat < bound && sat > 0.5 * bound,
                "k={k} n={n} h={h}: λ*={sat:.3e} vs flit bound {bound:.3e}"
            );
        }
    }

    #[test]
    fn ncube_curve_matches_2d_curve_at_n2() {
        let base2d = ModelConfig::paper_validation(8, 2, 16, 0.0, 0.3);
        let lambdas = [2e-5, 1e-4, 2e-4];
        let a = latency_curve(base2d, &lambdas);
        let b = ncube_latency_curve(base2d.as_ncube(), &lambdas);
        for (pa, pb) in a.iter().zip(&b) {
            match (&pa.result, &pb.result) {
                (Ok(x), Ok(y)) => assert_eq!(x.latency.to_bits(), y.latency.to_bits()),
                (Err(_), Err(_)) => {}
                other => panic!("solvability mismatch at λ={}: {other:?}", pa.lambda),
            }
        }
    }

    #[test]
    fn continued_curve_matches_the_cold_curve() {
        let base = NCubeConfig::new(8, 3, 2, 16, 0.0, 0.3);
        let lambdas: Vec<f64> = (1..=40).map(|i| i as f64 * 2e-6).collect();
        let cold = ncube_latency_curve(base, &lambdas);
        let warm = ncube_latency_curve_continued(base, &lambdas);
        assert_eq!(warm.len(), cold.len());
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.lambda, w.lambda);
            match (&c.result, &w.result) {
                (Ok(a), Ok(b)) => {
                    // The default service model's fixed point is reached
                    // exactly from any start, so the curves agree bitwise.
                    assert_eq!(a.latency.to_bits(), b.latency.to_bits());
                }
                (Err(_), Err(_)) => {}
                other => panic!("solvability mismatch at λ={}: {other:?}", c.lambda),
            }
        }
    }

    #[test]
    fn continuation_cuts_iterations_under_the_iterative_ablation() {
        // The payoff regime is the near-saturation band: Picard's
        // contraction rate degrades towards 1 as λ → λ*, so cold solves
        // there cost hundreds of iterations while the accelerated warm
        // chain stays flat.  (Far below saturation Picard converges in a
        // handful of iterations and continuation saves only ~20%.)
        use crate::solver::ServiceTimeModel;
        use kncube_queueing::fixed_point::Acceleration;
        let mut base = NCubeConfig::new(8, 3, 2, 16, 0.0, 0.3);
        base.service_model = ServiceTimeModel::PathOccupancy;
        let sat = find_saturation_ncube(base, 1e-9, 1e-1, 1e-6).unwrap();
        let points = 32usize;
        let lambdas: Vec<f64> = (0..points)
            .map(|i| sat * (0.98 + (0.9999 - 0.98) * i as f64 / (points - 1) as f64))
            .collect();
        let configs: Vec<NCubeConfig> = lambdas
            .iter()
            .map(|&lambda| NCubeConfig { lambda, ..base })
            .collect();
        let cold: usize = configs
            .iter()
            .map(|&c| NCubeModel::new(c).unwrap().solve().unwrap().iterations)
            .sum();
        // Plain continuation helps, but acceleration is what collapses the
        // slow near-saturation modes; together they are the query engine's
        // batch path.
        let warm_plain: usize = solve_continued(&configs)
            .into_iter()
            .map(|r| r.unwrap().iterations)
            .sum();
        assert!(
            warm_plain < cold,
            "continuation alone regressed: {warm_plain} vs {cold} iterations"
        );
        let mut accel = configs.clone();
        for c in &mut accel {
            c.options.acceleration = Acceleration::Anderson { depth: 4 };
        }
        let warm: usize = solve_continued(&accel)
            .into_iter()
            .map(|r| r.unwrap().iterations)
            .sum();
        assert!(
            warm * 3 < cold,
            "accelerated continuation saved too little: {warm} vs {cold} iterations"
        );
    }

    #[test]
    fn continuation_restarts_across_geometry_changes() {
        // A grid that changes (k, n) mid-way must still solve every point
        // correctly: the chain restarts cold when the state shape changes.
        let configs = [
            NCubeConfig::new(8, 3, 2, 16, 2e-5, 0.3),
            NCubeConfig::new(8, 3, 2, 16, 3e-5, 0.3),
            NCubeConfig::new(4, 4, 2, 16, 2e-5, 0.3),
            NCubeConfig::new(4, 4, 2, 16, 3e-5, 0.3),
        ];
        let chained = solve_continued(&configs);
        for (cfg, got) in configs.iter().zip(&chained) {
            let cold = NCubeModel::new(*cfg).unwrap().solve().unwrap();
            let got = got.as_ref().expect("all points solvable");
            assert_eq!(cold.latency.to_bits(), got.latency.to_bits());
        }
    }

    #[test]
    fn saturation_report_surfaces_probe_and_iteration_counts() {
        let base = NCubeConfig::new(8, 3, 2, 16, 0.0, 0.3);
        let report = find_saturation_ncube_report(base, 1e-9, 1e-1, 1e-3).unwrap();
        let plain = find_saturation_ncube(base, 1e-9, 1e-1, 1e-3).unwrap();
        assert_eq!(report.lambda_star, plain);
        assert!(report.probes > 10, "bisection probes: {}", report.probes);
        assert!(report.solver_iterations > 0);
        assert!(report.mean_iterations() > 0.0);
        // The 2-D wrapper reports through the same machinery.
        let base2d = ModelConfig::paper_validation(16, 2, 32, 0.0, 0.2);
        let r2d = find_saturation_report(base2d, 1e-6, 1e-3, 1e-3).unwrap();
        let plain2d = find_saturation(base2d, 1e-6, 1e-3, 1e-3).unwrap();
        assert_eq!(r2d.lambda_star, plain2d);
        assert!(r2d.solver_iterations > 0);
    }

    #[test]
    fn malformed_brackets_are_errors_not_panics() {
        let base = ModelConfig::paper_validation(16, 2, 32, 0.0, 0.2);
        for (lo, hi, tol) in [
            (1e-3, 1e-6, 1e-3),         // inverted
            (-1.0, 1e-3, 1e-3),         // negative lo
            (0.0, 1e-3, 0.0),           // zero tolerance
            (0.0, f64::INFINITY, 1e-3), // non-finite hi
            (0.0, f64::NAN, 1e-3),      // NaN hi
        ] {
            match find_saturation(base, lo, hi, tol) {
                Err(SaturationError::InvalidBracket { .. }) => {}
                other => panic!("expected InvalidBracket for ({lo}, {hi}, {tol}), got {other:?}"),
            }
        }
    }
}
