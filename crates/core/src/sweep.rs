//! Load sweeps and saturation search.
//!
//! The figures of the paper are latency-vs-λ curves.  This module sweeps
//! the model across a λ grid and finds the saturation rate `λ*` by
//! bisection on model solvability.  Sweep points are independent, so the
//! sweep runs as a rayon parallel map: a bounded worker pool of at most
//! `available_parallelism()` threads, not one OS thread per λ point —
//! this is the hot path of every figure binary, where grids can reach
//! hundreds of points.

use crate::ncube::{NCubeConfig, NCubeModel, NCubeOutput};
use crate::solver::{HotSpotModel, ModelConfig, ModelError, ModelOutput};
use rayon::prelude::*;

/// One point of a latency curve.
#[derive(Clone, Debug)]
pub struct CurvePoint {
    /// The per-node generation rate of this point.
    pub lambda: f64,
    /// The model solution, or the saturation error past `λ*`.
    pub result: Result<ModelOutput, ModelError>,
}

/// Evaluate the model at each `lambda`, in parallel on the pooled worker
/// threads.  Points come back in input order.
pub fn latency_curve(base: ModelConfig, lambdas: &[f64]) -> Vec<CurvePoint> {
    lambdas
        .par_iter()
        .map(|&lambda| {
            let result = HotSpotModel::new(ModelConfig { lambda, ..base }).and_then(|m| m.solve());
            CurvePoint { lambda, result }
        })
        .collect()
}

/// One point of a generalized n-cube latency curve.
#[derive(Clone, Debug)]
pub struct NCubeCurvePoint {
    /// The per-node generation rate of this point.
    pub lambda: f64,
    /// The model solution, or the saturation error past `λ*`.
    pub result: Result<NCubeOutput, ModelError>,
}

/// Evaluate the generalized model at each `lambda`, in parallel on the
/// pooled worker threads.  Points come back in input order.
pub fn ncube_latency_curve(base: NCubeConfig, lambdas: &[f64]) -> Vec<NCubeCurvePoint> {
    lambdas
        .par_iter()
        .map(|&lambda| {
            let result = NCubeModel::new(NCubeConfig { lambda, ..base }).and_then(|m| m.solve());
            NCubeCurvePoint { lambda, result }
        })
        .collect()
}

/// Why [`find_saturation`] could not produce a saturation rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SaturationError {
    /// The requested bracket is malformed: `lo`/`hi`/`rel_tol` must be
    /// finite with `0 <= lo < hi` and `rel_tol > 0`.
    InvalidBracket {
        /// The lower edge as requested.
        lo: f64,
        /// The upper edge as requested.
        hi: f64,
        /// The requested relative tolerance.
        rel_tol: f64,
    },
    /// Geometric widening of `hi` never reached a saturated rate — the
    /// model stayed solvable up to `last_hi` (the last finite rate
    /// probed), so there is no `λ*` inside any reasonable bracket.
    BracketNotFound {
        /// The largest rate probed before giving up.
        last_hi: f64,
    },
}

impl std::fmt::Display for SaturationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SaturationError::InvalidBracket { lo, hi, rel_tol } => write!(
                f,
                "invalid saturation bracket: lo={lo}, hi={hi}, rel_tol={rel_tol} \
                 (need finite 0 <= lo < hi and rel_tol > 0)"
            ),
            SaturationError::BracketNotFound { last_hi } => write!(
                f,
                "saturation bracket not found: model still solvable at λ={last_hi:e}"
            ),
        }
    }
}

impl std::error::Error for SaturationError {}

/// Find the saturation rate `λ*` of `base` by bisection: the largest rate
/// at which the model still has a solution, bracketed to a relative width
/// of `rel_tol`.
///
/// `hi` should be saturated and `lo` solvable (or zero); the function
/// widens `hi` geometrically if it is not saturated yet.  If the widening
/// runs away — the model stays solvable until `hi` stops being a useful
/// rate — the search reports [`SaturationError::BracketNotFound`] instead
/// of panicking.
pub fn find_saturation(
    base: ModelConfig,
    lo: f64,
    hi: f64,
    rel_tol: f64,
) -> Result<f64, SaturationError> {
    bisect_saturation(lo, hi, rel_tol, |lambda| {
        HotSpotModel::new(ModelConfig { lambda, ..base })
            .map(|m| m.solve().is_ok())
            .unwrap_or(false)
    })
}

/// [`find_saturation`] for the generalized n-cube model: the largest rate
/// at which [`NCubeModel`] still has a solution, to relative width
/// `rel_tol`.
pub fn find_saturation_ncube(
    base: NCubeConfig,
    lo: f64,
    hi: f64,
    rel_tol: f64,
) -> Result<f64, SaturationError> {
    bisect_saturation(lo, hi, rel_tol, |lambda| {
        NCubeModel::new(NCubeConfig { lambda, ..base })
            .map(|m| m.solve().is_ok())
            .unwrap_or(false)
    })
}

/// The shared bisection behind both saturation searches.
fn bisect_saturation(
    mut lo: f64,
    mut hi: f64,
    rel_tol: f64,
    solvable: impl Fn(f64) -> bool,
) -> Result<f64, SaturationError> {
    if !(lo.is_finite() && hi.is_finite() && rel_tol.is_finite())
        || lo < 0.0
        || hi <= lo
        || rel_tol <= 0.0
    {
        return Err(SaturationError::InvalidBracket { lo, hi, rel_tol });
    }
    // Widen until hi is saturated (bounded: utilization grows linearly in
    // λ, so a few doublings always suffice for a solvable model; a model
    // that never saturates exhausts the guard instead).
    let mut guard = 0;
    while solvable(hi) {
        lo = hi;
        hi *= 2.0;
        guard += 1;
        if guard >= 64 || !hi.is_finite() {
            return Err(SaturationError::BracketNotFound { last_hi: lo });
        }
    }
    while (hi - lo) / hi > rel_tol {
        let mid = 0.5 * (lo + hi);
        if solvable(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_reports_points_in_input_order() {
        let base = ModelConfig::paper_validation(16, 2, 32, 0.0, 0.2);
        let lambdas = [1e-5, 1e-4, 2e-4, 9e-4];
        let curve = latency_curve(base, &lambdas);
        assert_eq!(curve.len(), 4);
        for (p, &l) in curve.iter().zip(&lambdas) {
            assert_eq!(p.lambda, l);
        }
        // Low points solve, the extreme one saturates.
        assert!(curve[0].result.is_ok());
        assert!(curve[1].result.is_ok());
        assert!(curve[3].result.is_err());
    }

    #[test]
    fn curve_latencies_monotone_until_saturation() {
        let base = ModelConfig::paper_validation(16, 2, 32, 0.0, 0.4);
        let lambdas: Vec<f64> = (1..=10).map(|i| i as f64 * 3e-5).collect();
        let curve = latency_curve(base, &lambdas);
        let mut prev = 0.0;
        for p in curve.iter().filter(|p| p.result.is_ok()) {
            let l = p.result.as_ref().unwrap().latency;
            assert!(l > prev);
            prev = l;
        }
    }

    #[test]
    fn wide_curve_handles_hundreds_of_points() {
        // The pooled sweep must digest a grid far wider than the CPU
        // count (the old code spawned one OS thread per point).
        let base = ModelConfig::paper_validation(16, 2, 32, 0.0, 0.2);
        let lambdas: Vec<f64> = (1..=400).map(|i| i as f64 * 2e-6).collect();
        let curve = latency_curve(base, &lambdas);
        assert_eq!(curve.len(), 400);
        for (p, &l) in curve.iter().zip(&lambdas) {
            assert_eq!(p.lambda, l);
        }
        assert!(curve.first().unwrap().result.is_ok());
        assert!(curve.last().unwrap().result.is_err());
    }

    #[test]
    fn saturation_orders_by_hot_fraction_and_length() {
        let sat = |lm: u32, h: f64| {
            find_saturation(
                ModelConfig::paper_validation(16, 2, lm, 0.0, h),
                1e-6,
                1e-3,
                1e-3,
            )
            .expect("paper configs saturate inside the bracket")
        };
        let s20 = sat(32, 0.2);
        let s40 = sat(32, 0.4);
        let s70 = sat(32, 0.7);
        assert!(s20 > s40 && s40 > s70, "{s20} {s40} {s70}");
        // Longer messages saturate earlier.
        let s20_long = sat(100, 0.2);
        assert!(s20_long < s20);
        // And the figures' axes bracket the saturation points: Fig. 1
        // h=20% plots to 6e-4, h=70% to 2e-4.
        assert!(s20 > 2e-4 && s20 < 9e-4, "λ*={s20}");
        assert!(s70 > 5e-5 && s70 < 3e-4, "λ*={s70}");
    }

    #[test]
    fn ncube_saturation_tracks_the_generalized_flit_bound() {
        use crate::ncube::{NCubeConfig, NCubeModel};
        for (k, n, h) in [(8u32, 3u32, 0.3f64), (4, 4, 0.5), (16, 2, 0.2)] {
            let base = NCubeConfig::new(k, n, 2, 16, 0.0, h);
            let bound = NCubeModel::new(base).unwrap().flit_bound();
            let sat = find_saturation_ncube(base, 1e-9, 1e-1, 1e-3)
                .expect("hot-spot n-cubes saturate inside the bracket");
            assert!(
                sat < bound && sat > 0.5 * bound,
                "k={k} n={n} h={h}: λ*={sat:.3e} vs flit bound {bound:.3e}"
            );
        }
    }

    #[test]
    fn ncube_curve_matches_2d_curve_at_n2() {
        let base2d = ModelConfig::paper_validation(8, 2, 16, 0.0, 0.3);
        let lambdas = [2e-5, 1e-4, 2e-4];
        let a = latency_curve(base2d, &lambdas);
        let b = ncube_latency_curve(base2d.as_ncube(), &lambdas);
        for (pa, pb) in a.iter().zip(&b) {
            match (&pa.result, &pb.result) {
                (Ok(x), Ok(y)) => assert_eq!(x.latency.to_bits(), y.latency.to_bits()),
                (Err(_), Err(_)) => {}
                other => panic!("solvability mismatch at λ={}: {other:?}", pa.lambda),
            }
        }
    }

    #[test]
    fn malformed_brackets_are_errors_not_panics() {
        let base = ModelConfig::paper_validation(16, 2, 32, 0.0, 0.2);
        for (lo, hi, tol) in [
            (1e-3, 1e-6, 1e-3),         // inverted
            (-1.0, 1e-3, 1e-3),         // negative lo
            (0.0, 1e-3, 0.0),           // zero tolerance
            (0.0, f64::INFINITY, 1e-3), // non-finite hi
            (0.0, f64::NAN, 1e-3),      // NaN hi
        ] {
            match find_saturation(base, lo, hi, tol) {
                Err(SaturationError::InvalidBracket { .. }) => {}
                other => panic!("expected InvalidBracket for ({lo}, {hi}, {tol}), got {other:?}"),
            }
        }
    }
}
