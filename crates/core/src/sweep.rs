//! Load sweeps and saturation search.
//!
//! The figures of the paper are latency-vs-λ curves.  This module sweeps
//! the model across a λ grid (in parallel — each point is independent) and
//! finds the saturation rate `λ*` by bisection on model solvability.

use crate::solver::{HotSpotModel, ModelConfig, ModelError, ModelOutput};

/// One point of a latency curve.
#[derive(Clone, Debug)]
pub struct CurvePoint {
    /// The per-node generation rate of this point.
    pub lambda: f64,
    /// The model solution, or the saturation error past `λ*`.
    pub result: Result<ModelOutput, ModelError>,
}

/// Evaluate the model at each `lambda`, in parallel.
pub fn latency_curve(base: ModelConfig, lambdas: &[f64]) -> Vec<CurvePoint> {
    let mut results: Vec<Option<CurvePoint>> = (0..lambdas.len()).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for (slot, &lambda) in results.iter_mut().zip(lambdas) {
            scope.spawn(move |_| {
                let result = HotSpotModel::new(ModelConfig { lambda, ..base })
                    .and_then(|m| m.solve());
                *slot = Some(CurvePoint { lambda, result });
            });
        }
    })
    .expect("sweep worker panicked");
    results.into_iter().map(|p| p.expect("slot filled")).collect()
}

/// Find the saturation rate `λ*` of `base` by bisection: the largest rate
/// at which the model still has a solution, bracketed to a relative width
/// of `rel_tol`.
///
/// `hi` must be saturated and `lo` solvable (or zero); the function widens
/// `hi` geometrically if it is not saturated yet.
pub fn find_saturation(base: ModelConfig, mut lo: f64, mut hi: f64, rel_tol: f64) -> f64 {
    assert!(lo >= 0.0 && hi > lo && rel_tol > 0.0);
    let solvable = |lambda: f64| {
        HotSpotModel::new(ModelConfig { lambda, ..base })
            .map(|m| m.solve().is_ok())
            .unwrap_or(false)
    };
    // Widen until hi is saturated (bounded: utilization grows linearly in
    // λ, so a few doublings always suffice).
    let mut guard = 0;
    while solvable(hi) {
        lo = hi;
        hi *= 2.0;
        guard += 1;
        assert!(guard < 64, "failed to bracket saturation");
    }
    while (hi - lo) / hi > rel_tol {
        let mid = 0.5 * (lo + hi);
        if solvable(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_reports_points_in_input_order() {
        let base = ModelConfig::paper_validation(16, 2, 32, 0.0, 0.2);
        let lambdas = [1e-5, 1e-4, 2e-4, 9e-4];
        let curve = latency_curve(base, &lambdas);
        assert_eq!(curve.len(), 4);
        for (p, &l) in curve.iter().zip(&lambdas) {
            assert_eq!(p.lambda, l);
        }
        // Low points solve, the extreme one saturates.
        assert!(curve[0].result.is_ok());
        assert!(curve[1].result.is_ok());
        assert!(curve[3].result.is_err());
    }

    #[test]
    fn curve_latencies_monotone_until_saturation() {
        let base = ModelConfig::paper_validation(16, 2, 32, 0.0, 0.4);
        let lambdas: Vec<f64> = (1..=10).map(|i| i as f64 * 3e-5).collect();
        let curve = latency_curve(base, &lambdas);
        let mut prev = 0.0;
        for p in curve.iter().filter(|p| p.result.is_ok()) {
            let l = p.result.as_ref().unwrap().latency;
            assert!(l > prev);
            prev = l;
        }
    }

    #[test]
    fn saturation_orders_by_hot_fraction_and_length() {
        let sat = |lm: u32, h: f64| {
            find_saturation(
                ModelConfig::paper_validation(16, 2, lm, 0.0, h),
                1e-6,
                1e-3,
                1e-3,
            )
        };
        let s20 = sat(32, 0.2);
        let s40 = sat(32, 0.4);
        let s70 = sat(32, 0.7);
        assert!(s20 > s40 && s40 > s70, "{s20} {s40} {s70}");
        // Longer messages saturate earlier.
        let s20_long = sat(100, 0.2);
        assert!(s20_long < s20);
        // And the figures' axes bracket the saturation points: Fig. 1
        // h=20% plots to 6e-4, h=70% to 2e-4.
        assert!(s20 > 2e-4 && s20 < 9e-4, "λ*={s20}");
        assert!(s70 > 5e-5 && s70 < 3e-4, "λ*={s70}");
    }
}
