//! Property-based tests of the faulty-network model: structural
//! invariants that must hold for *any* fault set, pinned over random
//! fault chains on random geometries.
//!
//! The vendored proptest shim draws deterministically per test name, so
//! these properties are exactly reproducible in CI — an empirically
//! validated property here cannot flake.

use kncube_core::{FaultyNCubeConfig, FaultyNCubeModel};
use kncube_topology::{Channel, ChannelId, Direction, FaultRouter, FaultSet, KAryNCube, NodeId};
use proptest::prelude::*;

/// A random element to fail: a router, or a physical link.
#[derive(Clone, Debug)]
enum FaultElem {
    Node(u32),
    Link { from: u32, dim: u32, plus: bool },
}

fn arb_elem() -> impl Strategy<Value = FaultElem> {
    (0u32..4, 0u32..1024, 0u32..4, proptest::bool::ANY).prop_map(|(kind, from, dim, plus)| {
        if kind == 0 {
            FaultElem::Node(from)
        } else {
            FaultElem::Link { from, dim, plus }
        }
    })
}

/// Small geometries the model enumerates quickly (N ≤ 36).
fn arb_topology() -> impl Strategy<Value = KAryNCube> {
    (0u32..5, 3u32..7).prop_map(|(which, k)| match which {
        0 => KAryNCube::unidirectional(k, 2).unwrap(),
        1 => KAryNCube::bidirectional(k, 2).unwrap(),
        2 => KAryNCube::mesh(k, 2).unwrap(),
        3 => KAryNCube::bidirectional(3, 3).unwrap(),
        _ => KAryNCube::mesh(3, 3).unwrap(),
    })
}

/// Apply one element to the set, reducing raw indices into range.
fn apply(faults: &mut FaultSet, elem: &FaultElem) {
    let topo = *faults.topology();
    match *elem {
        FaultElem::Node(raw) => {
            // Never fail node 0: it is the hot node in every test here,
            // which keeps the hot-traffic weighting stable along a chain.
            let node = NodeId(1 + raw % (topo.num_nodes() - 1));
            faults.fail_node(node);
        }
        FaultElem::Link { from, dim, plus } => {
            faults.fail_link(Channel {
                from: NodeId(from % topo.num_nodes()),
                dim: dim % topo.n(),
                direction: if plus {
                    Direction::Plus
                } else {
                    Direction::Minus
                },
            });
        }
    }
}

fn model(faults: FaultSet, lambda: f64) -> FaultyNCubeModel {
    FaultyNCubeModel::new(FaultyNCubeConfig::new(faults, 2, 16, lambda, 0.2))
        .expect("valid faulty config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Near zero load, latency is `Lm` plus the delivered-weighted mean
    /// surviving distance — and removing network elements can only
    /// lengthen surviving routes.  Monotonicity is only claimed while
    /// the reachable-pair census is unchanged: a disconnection removes
    /// (long) routes from the average and may legitimately lower it.
    #[test]
    fn zero_load_latency_monotone_while_reachability_is_preserved(
        topo in arb_topology(),
        chain in proptest::collection::vec(arb_elem(), 1..6),
    ) {
        let mut faults = FaultSet::none(topo);
        let mut prev = model(faults.clone(), 1e-7);
        let mut prev_latency = prev.solve().unwrap().latency;
        for elem in &chain {
            apply(&mut faults, elem);
            let cur = model(faults.clone(), 1e-7);
            let out = cur.solve().unwrap();
            if cur.channel_rates().reachable_pairs() == prev.channel_rates().reachable_pairs()
            {
                prop_assert!(
                    out.latency >= prev_latency - 1e-6,
                    "latency fell {} -> {} after {:?} on {:?}",
                    prev_latency, out.latency, elem, topo
                );
            }
            prev = cur;
            prev_latency = out.latency;
        }
    }

    /// The model's reachability numbers are the router's, exactly: the
    /// per-channel rate enumeration must walk precisely the pairs the
    /// BFS census counts — a silently skipped pair would desynchronize
    /// the delivered-traffic weighting from the simulator's drop
    /// accounting.
    #[test]
    fn reachable_pairs_match_the_router_census_exactly(
        topo in arb_topology(),
        chain in proptest::collection::vec(arb_elem(), 0..8),
    ) {
        let mut faults = FaultSet::none(topo);
        for elem in &chain {
            apply(&mut faults, elem);
        }
        let m = model(faults.clone(), 1e-6);
        let census = FaultRouter::new(faults).reachable_pairs();
        prop_assert_eq!(m.channel_rates().reachable_pairs(), census);
        let out = m.solve().unwrap();
        prop_assert_eq!(out.reachable_pairs, census);
        let n = topo.num_nodes() as u64;
        let expected_fraction = census as f64 / (n * (n - 1)) as f64;
        prop_assert!((out.reachable_fraction - expected_fraction).abs() < 1e-15);
    }

    /// The saturation story that *is* invariant.  Strict "λ* never rises
    /// under an added fault" is false — proptest found the counterexample
    /// on the 5-ary bidirectional torus, where rerouting around a failed
    /// link drains the binding funnel and raises λ* by ~10% (the
    /// engineered directional case lives in the `faulty` unit tests
    /// instead).  What holds for every fault set:
    ///
    /// 1. λ* never exceeds the bottleneck capacity bound
    ///    `1 / (max per-unit-λ channel load · (Lm + 1))` — when faults
    ///    concentrate load, the bound tightens and λ* falls with it;
    /// 2. whenever an added link fault *does* raise the per-unit
    ///    bottleneck load (reachability preserved, so demand is
    ///    unchanged), λ* does not rise.
    #[test]
    fn saturation_is_pinned_by_the_fault_concentrated_bottleneck(
        topo in arb_topology(),
        links in proptest::collection::vec(
            (0u32..1024, 0u32..4, proptest::bool::ANY), 1..5,
        ),
    ) {
        const REL_TOL: f64 = 1e-3;
        let hold = 17.0; // Lm + 1
        let max_unit = |m: &FaultyNCubeModel| -> f64 {
            (0..m.channel_rates().num_channels())
                .map(|i| m.channel_rates().total_rate(ChannelId(i as u32), 1.0))
                .fold(0.0f64, f64::max)
        };
        let mut faults = FaultSet::none(topo);
        let mut prev = model(faults.clone(), 0.0);
        let mut prev_sat = prev.saturation(1e-9, 1e-1, REL_TOL).unwrap().lambda_star;
        for &(from, dim, plus) in &links {
            apply(&mut faults, &FaultElem::Link { from, dim, plus });
            let cur = model(faults.clone(), 0.0);
            if cur.channel_rates().reachable_pairs() == 0 {
                break;
            }
            let sat = cur.saturation(1e-9, 1e-1, REL_TOL).unwrap().lambda_star;
            let bound = 1.0 / (max_unit(&cur) * hold);
            prop_assert!(
                sat <= bound * (1.0 + 4.0 * REL_TOL),
                "λ* {} exceeds the capacity bound {} on {:?}",
                sat, bound, topo
            );
            if cur.channel_rates().reachable_pairs() == prev.channel_rates().reachable_pairs()
                && max_unit(&cur) > max_unit(&prev) * (1.0 + 1e-9)
            {
                prop_assert!(
                    sat <= prev_sat * (1.0 + 4.0 * REL_TOL),
                    "bottleneck load rose but λ* rose too: {} -> {} on {:?}",
                    prev_sat, sat, topo
                );
            }
            prev = cur;
            prev_sat = sat;
        }
    }
}
