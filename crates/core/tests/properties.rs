//! Property-based tests of the analytical model.

use kncube_core::{
    solve_continued, HotSpotModel, ModelConfig, ModelError, NCubeConfig, NCubeModel, Rates,
    RegularRouteProbs, ServiceTimeModel, SolveCache,
};
use proptest::prelude::*;

/// Strategy over valid model configurations at a load comfortably below
/// the hot-channel flit bound.
fn sub_saturation_config() -> impl Strategy<Value = ModelConfig> {
    (
        4u32..=16,     // k
        2u32..=4,      // V
        8u32..=64,     // Lm
        0.0f64..=0.8,  // h
        0.05f64..=0.5, // fraction of the flit bound
    )
        .prop_map(|(k, v, lm, h, frac)| {
            let hot_bound = 1.0 / (h.max(0.01) * (k * (k - 1)) as f64 * (lm + 1) as f64);
            let uni_bound = 1.0 / ((k as f64 - 1.0) / 2.0 * (lm + 1) as f64);
            let lambda = frac * hot_bound.min(uni_bound);
            ModelConfig::paper_validation(k, v, lm, lambda, h)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solves_below_half_of_the_flit_bound(cfg in sub_saturation_config()) {
        let out = HotSpotModel::new(cfg).unwrap().solve();
        prop_assert!(out.is_ok(), "diverged at {cfg:?}: {:?}", out.err());
        let out = out.unwrap();
        prop_assert!(out.latency.is_finite() && out.latency > 0.0);
        prop_assert!(out.max_utilization < 1.0);
    }

    #[test]
    fn latency_at_least_zero_load(cfg in sub_saturation_config()) {
        let model = HotSpotModel::new(cfg).unwrap();
        let out = model.solve().unwrap();
        // Queueing can only add delay over the contention-free network.
        prop_assert!(
            out.latency >= model.zero_load_latency() - 1e-6,
            "latency {} below zero-load {}",
            out.latency,
            model.zero_load_latency()
        );
    }

    #[test]
    fn latency_monotone_in_lambda(cfg in sub_saturation_config()) {
        let lo = HotSpotModel::new(ModelConfig { lambda: cfg.lambda * 0.5, ..cfg })
            .unwrap().solve().unwrap();
        let hi = HotSpotModel::new(cfg).unwrap().solve().unwrap();
        prop_assert!(hi.latency >= lo.latency - 1e-9,
            "latency fell with load: {} -> {}", lo.latency, hi.latency);
    }

    #[test]
    fn multiplexing_factors_within_bounds(cfg in sub_saturation_config()) {
        let out = HotSpotModel::new(cfg).unwrap().solve().unwrap();
        let v = cfg.virtual_channels as f64;
        for (name, vbar) in [
            ("hot ring", out.vbar_hot_ring),
            ("non-hot", out.vbar_nonhot_ring),
            ("x", out.vbar_x),
        ] {
            prop_assert!(vbar >= 1.0 - 1e-9 && vbar <= v + 1e-9,
                "{name} multiplexing {vbar} outside [1, {v}]");
        }
    }

    #[test]
    fn hot_latency_dominates_regular_when_hot_ring_loaded(cfg in sub_saturation_config()) {
        prop_assume!(cfg.hot_fraction > 0.05);
        let out = HotSpotModel::new(cfg).unwrap().solve().unwrap();
        // Hot messages end at the most congested channels; their mean
        // cannot be lower than the overall regular mean minus the path
        // difference (hot paths can be shorter: they end at a fixed node).
        // A hard invariant that always holds: both components are finite
        // and the mix reproduces Eq. 10.
        let mix = (1.0 - cfg.hot_fraction) * out.regular_latency
            + cfg.hot_fraction * out.hot_latency;
        prop_assert!((mix - out.latency).abs() < 1e-9 * out.latency.max(1.0));
    }

    #[test]
    fn rates_are_consistent(k in 2u32..=32, lambda in 0.0f64..1e-2, h in 0.0f64..=1.0) {
        let r = Rates::new(k, lambda, h);
        // Eq. 8/9 are sums of Eq. 3 and Eqs. 6/7.
        for j in 1..=k {
            prop_assert!((r.total_rate_x(j) - r.regular_channel_rate() - r.hot_rate_x(j)).abs() < 1e-15);
            prop_assert!((r.total_rate_y(j) - r.regular_channel_rate() - r.hot_rate_y(j)).abs() < 1e-15);
        }
        // Hot rates integrate to the global hot hop count: Σ_j λ^h_y,j =
        // λ h k(k-1)/2 · k/k ... the closed form k²(k-1)/2 per dimension.
        let sum_y: f64 = (1..=k).map(|j| r.hot_rate_y(j)).sum();
        let expected = lambda * h * (k * k * (k - 1)) as f64 / 2.0;
        prop_assert!((sum_y - expected).abs() < 1e-12 + 1e-9 * expected);
    }

    #[test]
    fn route_probabilities_always_marginalise(k in 2u32..=64) {
        let p = RegularRouteProbs::new(k);
        prop_assert!((p.total() - 1.0).abs() < 1e-12);
        prop_assert!(p.y_only_hot_ring > 0.0);
        prop_assert!(p.x_then_nonhot_ring >= 0.0);
    }

    #[test]
    fn warm_continuation_agrees_with_cold_solves_on_random_grids(
        k in 4u32..=8,
        n in 2u32..=3,
        lm in 8u32..=32,
        h in 0.05f64..=0.7,
        top in 0.3f64..=0.9,
        iterative in 0u32..=1,
    ) {
        let iterative = iterative == 1;
        // A random ascending λ grid under either service model: the
        // warm-started chain must answer every point like a cold solve
        // of that exact point.  Under the default pipelined model the
        // agreement is bitwise (the update is load-only); under the
        // path-occupancy ablation both runs converge to the same fixed
        // point within the solver tolerance.
        let mut base = NCubeConfig::new(k, n, 2, lm, 0.0, h);
        if iterative {
            base.service_model = ServiceTimeModel::PathOccupancy;
        }
        let hot_bound = 1.0 / (h.max(0.01) * (k * (k - 1)) as f64 * (lm + 1) as f64);
        let uni_bound = 1.0 / ((k as f64 - 1.0) / 2.0 * (lm + 1) as f64);
        let cap = top * hot_bound.min(uni_bound) / (n - 1) as f64;
        let configs: Vec<NCubeConfig> = (1..=6)
            .map(|i| NCubeConfig { lambda: cap * i as f64 / 6.0, ..base })
            .collect();
        let chained = solve_continued(&configs);
        for (cfg, warm) in configs.iter().zip(&chained) {
            let cold = NCubeModel::new(*cfg).unwrap().solve();
            match (&cold, warm) {
                (Ok(c), Ok(w)) => {
                    let rel = (c.latency - w.latency).abs() / c.latency.max(1.0);
                    prop_assert!(rel < 1e-6,
                        "warm {} vs cold {} at λ={} (rel {rel:.3e})",
                        w.latency, c.latency, cfg.lambda);
                    if !iterative {
                        prop_assert_eq!(c.latency.to_bits(), w.latency.to_bits());
                    }
                }
                (Err(_), Err(_)) => {}
                other => prop_assert!(false,
                    "solvability mismatch at λ={}: {other:?}", cfg.lambda),
            }
        }
    }

    #[test]
    fn cache_never_returns_a_stale_entry_after_quantization(
        k in 4u32..=8,
        n in 2u32..=3,
        lm in 8u32..=32,
        h in 0.05f64..=0.7,
        frac in 0.05f64..=0.5,
        nudge_ulps in 0u64..=2000,
    ) {
        // Prime the cache with λ, then query a perturbed λ′ a few
        // thousand ulps away — sometimes inside the same quantization
        // bucket (a hit), sometimes not (a miss).  Either way the answer
        // must be the *exact* solution of quantize(λ′): a hit is only
        // legal because the two requests snapped to the same lattice
        // configuration.
        let hot_bound = 1.0 / (h.max(0.01) * (k * (k - 1)) as f64 * (lm + 1) as f64);
        let uni_bound = 1.0 / ((k as f64 - 1.0) / 2.0 * (lm + 1) as f64);
        let lambda = frac * hot_bound.min(uni_bound) / (n - 1) as f64;
        let a = NCubeConfig::new(k, n, 2, lm, lambda, h);
        let b = NCubeConfig {
            lambda: f64::from_bits(a.lambda.to_bits() + nudge_ulps),
            ..a
        };
        let cache = SolveCache::new();
        let via_a = cache.solve(&a);
        let via_b = cache.solve(&b);
        for (cfg, got) in [(&a, &via_a), (&b, &via_b)] {
            let direct = NCubeModel::new(SolveCache::quantize(cfg))
                .unwrap()
                .solve();
            match (&direct, got) {
                (Ok(d), Ok(g)) => prop_assert_eq!(
                    d.latency.to_bits(), g.latency.to_bits(),
                    "cache answer differs from the quantized config's exact solve"),
                (Err(d), Err(g)) => prop_assert_eq!(d, g),
                other => prop_assert!(false, "solvability mismatch: {other:?}"),
            }
        }
        prop_assert_eq!(cache.hits() + cache.misses(), 2);
        prop_assert_eq!(cache.len() as u64, cache.misses());
    }

    #[test]
    fn saturation_error_reports_above_the_bound(
        k in 4u32..=16, lm in 8u32..=64, h in 0.1f64..=0.8
    ) {
        // 2× the flit bound must be unsolvable.
        let bound = 1.0 / (h * (k * (k - 1)) as f64 * (lm + 1) as f64);
        let cfg = ModelConfig::paper_validation(k, 2, lm, 2.0 * bound, h);
        match HotSpotModel::new(cfg).unwrap().solve() {
            Err(ModelError::Saturated { max_utilization }) => {
                prop_assert!(max_utilization >= 1.0);
            }
            Err(ModelError::NotConverged) => {} // also an accepted witness
            Ok(out) => prop_assert!(false,
                "solved past the flit bound: latency {}", out.latency),
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }
}
