//! Flit-level discrete event simulator for wormhole-routed k-ary n-cubes.
//!
//! This is the validation vehicle of §4 of the paper, rebuilt from the
//! architectural assumptions its model states (§2–3):
//!
//! * every node couples a router to its processing element through an
//!   injection and an ejection channel;
//! * each physical channel carries `V` virtual channels, each with its own
//!   flit buffer; the physical channel transmits **one flit per cycle**,
//!   time-multiplexed over its virtual channels (the network cycle is the
//!   transmission time of one flit);
//! * routing is deterministic dimension-order (dimension 0 first, then 1,
//!   and so on), deadlock-free by Dally–Seitz virtual-channel classes on
//!   every ring;
//! * sources have infinite injection queues and generate messages by a
//!   Poisson process; destinations drain arrived messages at channel rate.
//!
//! The engine is dimension-agnostic: router ports and virtual-channel
//! classes are indexed by the topology's channel ids, so one flit pipeline
//! serves any radix and dimension count — build a generalized run with
//! [`SimConfig::ncube`] (the paper's 2-D torus is
//! [`SimConfig::paper_validation`], its `n = 2` instance; a binary
//! hypercube is `k = 2`).
//!
//! # Model
//!
//! The simulator is cycle-based with a compressed flit representation: a
//! virtual-channel buffer only ever holds flits of the single message the
//! VC is allocated to (wormhole invariant), so buffers are occupancy
//! counters rather than flit objects, and a message is a chain of held
//! virtual channels plus per-stage progress counters.  Determinism is
//! guaranteed by fixed phase ordering (generate → allocate → move →
//! complete), per-channel round-robin arbitration, FIFO virtual-channel
//! allocation and per-node seeded RNG streams — the same seed always
//! reproduces the same run, cycle for cycle.
//!
//! # Quick start
//!
//! ```
//! use kncube_sim::{SimConfig, Simulator};
//!
//! let config = SimConfig::paper_validation(8, 2, 32, 1e-3, 0.2, 42)
//!     .with_limits(20_000, 5_000, 2_000);
//! let report = Simulator::new(config).unwrap().run();
//! assert!(report.completed > 0);
//! assert!(report.mean_latency > 32.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod message;
pub mod replicate;
pub mod report;
pub mod stats;

pub use config::{EjectionPolicy, SimConfig, SimConfigError};
pub use engine::Simulator;
pub use replicate::{run_replications, run_replications_serial, ReplicatedReport};
pub use report::SimReport;
pub use stats::{BatchMeans, StreamingStats};
