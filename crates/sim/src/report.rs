//! Simulation results.

use std::fmt;

/// Everything a finished run reports.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Mean message latency over measured messages (cycles), generation to
    /// tail delivery.
    pub mean_latency: f64,
    /// 95% batch-means confidence half-width, when enough batches filled.
    pub ci_half_width: Option<f64>,
    /// Sample standard deviation of the measured latencies.
    pub latency_std_dev: f64,
    /// Largest measured latency.
    pub max_latency: f64,
    /// Measured messages completed.
    pub completed: u64,
    /// Measured regular messages completed.
    pub completed_regular: u64,
    /// Measured hot-spot messages completed.
    pub completed_hot: u64,
    /// Mean latency of regular messages (the model's `S_r` counterpart).
    pub mean_latency_regular: f64,
    /// Mean latency of hot-spot messages (the model's `S_h` counterpart).
    pub mean_latency_hot: f64,
    /// All messages generated (warm-up included).
    pub generated: u64,
    /// Messages dropped at generation because the fault set left their
    /// source and destination disconnected (0 without fault injection).
    pub dropped_unreachable: u64,
    /// Mean extra hops of measured messages over the fault-free minimal
    /// distance (0.0 without fault injection: dimension-order routes are
    /// minimal).
    pub mean_detour_hops: f64,
    /// Fraction of ordered node pairs that can still communicate under the
    /// sampled fault set (1.0 without fault injection).
    pub reachable_fraction: f64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Delivered messages per node per cycle over the measurement window.
    pub throughput: f64,
    /// Offered load `λ` (messages per node per cycle).
    pub offered_load: f64,
    /// Measured average virtual-channel multiplexing degree: busy VCs
    /// averaged over busy network channels (the quantity Eqs. 33–35
    /// model).
    pub vbar_measured: f64,
    /// Largest source-queue length observed.
    pub max_source_queue: usize,
    /// Messages still in flight when the run stopped.
    pub in_flight_at_end: u64,
    /// The run was cut short because a source queue exceeded the bound —
    /// the operating point is past saturation.
    pub saturated: bool,
    /// The deadlock watchdog fired (should never happen with `V >= 2`).
    pub deadlocked: bool,
}

impl SimReport {
    /// Relative 95% confidence half-width, when available.
    pub fn relative_ci(&self) -> Option<f64> {
        self.ci_half_width.map(|hw| {
            if self.mean_latency > 0.0 {
                hw / self.mean_latency
            } else {
                0.0
            }
        })
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "latency {:.1}±{} cycles (reg {:.1}, hot {:.1}), {} msgs in {} cycles, V̄={:.3}{}{}{}",
            self.mean_latency,
            match self.ci_half_width {
                Some(hw) => format!("{hw:.1}"),
                None => "?".to_string(),
            },
            self.mean_latency_regular,
            self.mean_latency_hot,
            self.completed,
            self.cycles,
            self.vbar_measured,
            if self.dropped_unreachable > 0 {
                format!(
                    " (reach {:.3}, {} dropped, detour {:.2})",
                    self.reachable_fraction, self.dropped_unreachable, self.mean_detour_hops
                )
            } else {
                String::new()
            },
            if self.saturated { " SATURATED" } else { "" },
            if self.deadlocked { " DEADLOCK" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            mean_latency: 100.0,
            ci_half_width: Some(5.0),
            latency_std_dev: 20.0,
            max_latency: 300.0,
            completed: 1000,
            completed_regular: 800,
            completed_hot: 200,
            mean_latency_regular: 90.0,
            mean_latency_hot: 140.0,
            generated: 1100,
            dropped_unreachable: 0,
            mean_detour_hops: 0.0,
            reachable_fraction: 1.0,
            cycles: 50_000,
            throughput: 1e-4,
            offered_load: 1e-4,
            vbar_measured: 1.2,
            max_source_queue: 3,
            in_flight_at_end: 7,
            saturated: false,
            deadlocked: false,
        }
    }

    #[test]
    fn relative_ci_divides_by_mean() {
        assert_eq!(report().relative_ci(), Some(0.05));
        let mut r = report();
        r.ci_half_width = None;
        assert_eq!(r.relative_ci(), None);
    }

    #[test]
    fn display_mentions_saturation() {
        let mut r = report();
        r.saturated = true;
        assert!(format!("{r}").contains("SATURATED"));
    }

    #[test]
    fn display_mentions_drops_only_under_faults() {
        let r = report();
        assert!(!format!("{r}").contains("dropped"));
        let mut r = report();
        r.dropped_unreachable = 12;
        r.reachable_fraction = 0.875;
        r.mean_detour_hops = 0.25;
        let s = format!("{r}");
        assert!(s.contains("12 dropped") && s.contains("reach 0.875"));
    }
}
