//! In-flight message state: the wormhole chain.
//!
//! A wormhole message stretches over a *chain* of resources: the injection
//! port of its source, then one virtual channel per network hop, then the
//! ejection stage at its destination.  Because a virtual channel only ever
//! buffers flits of the one message it is allocated to, the full flit state
//! compresses into, per chain stage, the count of flits that have crossed
//! that stage's channel so far.

use kncube_topology::NodeId;
use kncube_traffic::MessageClass;

/// Index of a message in the simulator's slab.
pub type MsgId = u32;

/// One stage of a message's resource chain: a (channel, virtual channel)
/// pair, identified by the simulator's flat port indexing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChainStage {
    /// Flat channel index (network channels, then injection ports).
    pub port: u32,
    /// Virtual-channel index within the port.
    pub vc: u32,
    /// Flits that have crossed this stage's channel so far (`<= length`).
    pub entered: u32,
}

/// Where the header currently is / what it waits for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HeadState {
    /// Waiting in the per-(port, class) allocation queue for a virtual
    /// channel on `port`.
    WaitingFor {
        /// The port whose allocation queue the header sits in.
        port: u32,
    },
    /// A virtual channel on the next port is allocated; the header has not
    /// yet crossed into its buffer.
    Crossing,
    /// Header sits in the buffer of the last chain stage, which is at the
    /// destination; the message is draining into the PE.
    Ejecting,
    /// All flits delivered (terminal state, message about to be retired).
    Done,
}

/// The state of one in-flight message.
#[derive(Clone, Debug)]
pub struct Message {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Regular or hot-spot (statistics bucket).
    pub class: MessageClass,
    /// Length in flits.
    pub length: u32,
    /// Cycle the message was generated (entered the source queue).
    pub birth: u64,
    /// Whether the message was born after warm-up (is measured).
    pub measured: bool,
    /// The chain of held resources, oldest (injection) first.
    pub chain: Vec<ChainStage>,
    /// Flits delivered to the destination PE.
    pub ejected: u32,
    /// Header progress.
    pub head: HeadState,
}

impl Message {
    /// Flits still at the source, not yet entered into the first stage.
    pub fn flits_at_source(&self) -> u32 {
        match self.chain.first() {
            Some(stage) => self.length - stage.entered,
            None => self.length,
        }
    }

    /// Occupancy of the buffer of stage `i`: flits that entered stage `i`
    /// but have not yet entered stage `i + 1` (or been ejected, for the
    /// last stage).
    pub fn stage_occupancy(&self, i: usize) -> u32 {
        let entered = self.chain[i].entered;
        let left = match self.chain.get(i + 1) {
            Some(next) => next.entered,
            None => self.ejected,
        };
        entered - left
    }

    /// True when every flit has been delivered.
    pub fn is_delivered(&self) -> bool {
        self.ejected == self.length
    }

    /// Latency if the message completed at `cycle`: generation to delivery
    /// of the tail flit, inclusive.
    pub fn latency_at(&self, cycle: u64) -> u64 {
        cycle - self.birth + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> Message {
        Message {
            src: NodeId(0),
            dest: NodeId(5),
            class: MessageClass::Regular,
            length: 4,
            birth: 100,
            measured: true,
            chain: Vec::new(),
            ejected: 0,
            head: HeadState::WaitingFor { port: 7 },
        }
    }

    #[test]
    fn source_flits_track_first_stage() {
        let mut m = msg();
        assert_eq!(m.flits_at_source(), 4);
        m.chain.push(ChainStage {
            port: 7,
            vc: 0,
            entered: 3,
        });
        assert_eq!(m.flits_at_source(), 1);
    }

    #[test]
    fn occupancy_is_entered_minus_left() {
        let mut m = msg();
        m.chain.push(ChainStage {
            port: 7,
            vc: 0,
            entered: 4,
        });
        m.chain.push(ChainStage {
            port: 9,
            vc: 1,
            entered: 2,
        });
        m.ejected = 1;
        assert_eq!(m.stage_occupancy(0), 2); // 4 entered, 2 moved on
        assert_eq!(m.stage_occupancy(1), 1); // 2 entered, 1 ejected
    }

    #[test]
    fn delivery_and_latency() {
        let mut m = msg();
        assert!(!m.is_delivered());
        m.ejected = 4;
        assert!(m.is_delivered());
        assert_eq!(m.latency_at(150), 51);
    }
}
