//! In-flight message state: the wormhole chain, stored arena-style.
//!
//! A wormhole message stretches over a *chain* of resources: the injection
//! port of its source, then one virtual channel per network hop, then the
//! ejection stage at its destination.  Because a virtual channel only ever
//! buffers flits of the one message it is allocated to, the full flit state
//! compresses into, per chain stage, the count of flits that have crossed
//! that stage's channel so far.
//!
//! Message state lives in a [`MessageArena`]: one flat `Vec` per field
//! (struct-of-arrays), indexed by [`MsgId`], with chains packed into a
//! single shared `Vec<ChainStage>` at a fixed stride (the topology's
//! longest possible route).  Inserting a message never allocates once the
//! arena has grown to the peak population — slots are recycled through a
//! free list — and the per-field layout keeps the simulator's hot loops on
//! dense, cache-friendly arrays instead of chasing per-message heap
//! allocations.

use kncube_topology::NodeId;
use kncube_traffic::MessageClass;

/// Index of a message in the simulator's arena.
pub type MsgId = u32;

/// Sentinel for "no message" in VC holders and intrusive queue links.
pub(crate) const NO_MSG: MsgId = MsgId::MAX;

/// One stage of a message's resource chain: a (channel, virtual channel)
/// pair, identified by the simulator's flat port indexing.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ChainStage {
    /// Flat channel index (network channels, then injection ports).
    pub port: u32,
    /// Virtual-channel index within the port.
    pub vc: u32,
    /// Flits that have crossed this stage's channel so far (`<= length`).
    pub entered: u32,
}

/// Where the header currently is / what it waits for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HeadState {
    /// Waiting in the per-(port, class) allocation queue for a virtual
    /// channel on `port`.
    WaitingFor {
        /// The port whose allocation queue the header sits in.
        port: u32,
    },
    /// A virtual channel on the next port is allocated; the header has not
    /// yet crossed into its buffer.
    Crossing,
    /// Header sits in the buffer of the last chain stage, which is at the
    /// destination; the message is draining into the PE.
    Ejecting,
    /// All flits delivered (terminal state, message about to be retired).
    Done,
}

/// Parameters of a freshly generated message, before it enters the arena.
#[derive(Clone, Copy, Debug)]
pub struct NewMessage {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Regular or hot-spot (statistics bucket).
    pub class: MessageClass,
    /// Length in flits.
    pub length: u32,
    /// Cycle the message was generated (entered the source queue).
    pub birth: u64,
    /// Whether the message was born after warm-up (is measured).
    pub measured: bool,
}

/// Struct-of-arrays storage for every in-flight message.
///
/// All per-message fields are parallel `Vec`s indexed by [`MsgId`]; chain
/// stages are packed into one shared arena at stride `max_chain` (the
/// longest route the topology admits, plus the injection stage).  Slots are
/// recycled through a free list, so steady-state insertion is allocation
/// free.
#[derive(Debug)]
pub struct MessageArena {
    /// Chain stride: the longest possible chain (injection stage + one
    /// stage per network hop of the longest route).
    pub(crate) max_chain: u32,
    pub(crate) src: Vec<NodeId>,
    pub(crate) dest: Vec<NodeId>,
    pub(crate) class: Vec<MessageClass>,
    pub(crate) length: Vec<u32>,
    pub(crate) birth: Vec<u64>,
    pub(crate) measured: Vec<bool>,
    pub(crate) ejected: Vec<u32>,
    pub(crate) head: Vec<HeadState>,
    pub(crate) chain_len: Vec<u32>,
    /// Intrusive FIFO link for the per-(port, class) allocation queues.
    pub(crate) wait_next: Vec<MsgId>,
    /// Packed chains: slot `id` owns `chain[id*max_chain .. +chain_len]`.
    pub(crate) chain: Vec<ChainStage>,
    pub(crate) live: Vec<bool>,
    free: Vec<MsgId>,
    n_live: usize,
}

impl MessageArena {
    /// An empty arena whose chains can hold up to `max_chain` stages.
    pub fn new(max_chain: u32) -> Self {
        assert!(max_chain >= 1);
        MessageArena {
            max_chain,
            src: Vec::new(),
            dest: Vec::new(),
            class: Vec::new(),
            length: Vec::new(),
            birth: Vec::new(),
            measured: Vec::new(),
            ejected: Vec::new(),
            head: Vec::new(),
            chain_len: Vec::new(),
            wait_next: Vec::new(),
            chain: Vec::new(),
            live: Vec::new(),
            free: Vec::new(),
            n_live: 0,
        }
    }

    /// Insert a message, recycling a free slot when one exists.
    pub fn insert(&mut self, m: NewMessage) -> MsgId {
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                let id = self.src.len() as MsgId;
                self.src.push(m.src);
                self.dest.push(m.dest);
                self.class.push(m.class);
                self.length.push(0);
                self.birth.push(0);
                self.measured.push(false);
                self.ejected.push(0);
                self.head.push(HeadState::Done);
                self.chain_len.push(0);
                self.wait_next.push(NO_MSG);
                self.chain.resize(
                    self.chain.len() + self.max_chain as usize,
                    ChainStage::default(),
                );
                self.live.push(false);
                id
            }
        };
        let i = id as usize;
        self.src[i] = m.src;
        self.dest[i] = m.dest;
        self.class[i] = m.class;
        self.length[i] = m.length;
        self.birth[i] = m.birth;
        self.measured[i] = m.measured;
        self.ejected[i] = 0;
        self.head[i] = HeadState::Done;
        self.chain_len[i] = 0;
        self.wait_next[i] = NO_MSG;
        self.live[i] = true;
        self.n_live += 1;
        id
    }

    /// Retire a message, returning its slot to the free list.
    pub fn remove(&mut self, id: MsgId) {
        debug_assert!(self.live[id as usize]);
        self.live[id as usize] = false;
        self.free.push(id);
        self.n_live -= 1;
    }

    /// Messages currently live (in flight, including source queues).
    pub fn live_count(&self) -> usize {
        self.n_live
    }

    /// Slot capacity (live + free).
    pub fn capacity(&self) -> usize {
        self.src.len()
    }

    /// First index of `id`'s chain span in the packed arena.
    #[inline]
    pub(crate) fn chain_base(&self, id: MsgId) -> usize {
        id as usize * self.max_chain as usize
    }

    /// The chain of `id` as a slice.
    #[inline]
    pub fn chain(&self, id: MsgId) -> &[ChainStage] {
        let base = self.chain_base(id);
        &self.chain[base..base + self.chain_len[id as usize] as usize]
    }

    /// Append a stage to `id`'s chain; returns the stage index.
    #[inline]
    pub(crate) fn push_stage(&mut self, id: MsgId, port: u32, vc: u32) -> u32 {
        let len = self.chain_len[id as usize];
        debug_assert!(len < self.max_chain, "route exceeded the chain stride");
        let base = self.chain_base(id);
        self.chain[base + len as usize] = ChainStage {
            port,
            vc,
            entered: 0,
        };
        self.chain_len[id as usize] = len + 1;
        len
    }

    /// Flits still at the source, not yet entered into the first stage.
    pub fn flits_at_source(&self, id: MsgId) -> u32 {
        let i = id as usize;
        if self.chain_len[i] == 0 {
            self.length[i]
        } else {
            self.length[i] - self.chain[self.chain_base(id)].entered
        }
    }

    /// Occupancy of the buffer of stage `i` of `id`: flits that entered
    /// stage `i` but have not yet entered stage `i + 1` (or been ejected,
    /// for the last stage).
    pub fn stage_occupancy(&self, id: MsgId, i: usize) -> u32 {
        let base = self.chain_base(id);
        let entered = self.chain[base + i].entered;
        let left = if (i as u32) + 1 < self.chain_len[id as usize] {
            self.chain[base + i + 1].entered
        } else {
            self.ejected[id as usize]
        };
        entered - left
    }

    /// True when every flit of `id` has been delivered.
    #[inline]
    pub fn is_delivered(&self, id: MsgId) -> bool {
        self.ejected[id as usize] == self.length[id as usize]
    }

    /// Latency if `id` completed at `cycle`: generation to delivery of the
    /// tail flit, inclusive.
    pub fn latency_at(&self, id: MsgId, cycle: u64) -> u64 {
        cycle - self.birth[id as usize] + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena() -> (MessageArena, MsgId) {
        let mut a = MessageArena::new(8);
        let id = a.insert(NewMessage {
            src: NodeId(0),
            dest: NodeId(5),
            class: MessageClass::Regular,
            length: 4,
            birth: 100,
            measured: true,
        });
        (a, id)
    }

    #[test]
    fn source_flits_track_first_stage() {
        let (mut a, id) = arena();
        assert_eq!(a.flits_at_source(id), 4);
        a.push_stage(id, 7, 0);
        let base = a.chain_base(id);
        a.chain[base].entered = 3;
        assert_eq!(a.flits_at_source(id), 1);
    }

    #[test]
    fn occupancy_is_entered_minus_left() {
        let (mut a, id) = arena();
        a.push_stage(id, 7, 0);
        a.push_stage(id, 9, 1);
        let base = a.chain_base(id);
        a.chain[base].entered = 4;
        a.chain[base + 1].entered = 2;
        a.ejected[id as usize] = 1;
        assert_eq!(a.stage_occupancy(id, 0), 2); // 4 entered, 2 moved on
        assert_eq!(a.stage_occupancy(id, 1), 1); // 2 entered, 1 ejected
    }

    #[test]
    fn delivery_and_latency() {
        let (mut a, id) = arena();
        assert!(!a.is_delivered(id));
        a.ejected[id as usize] = 4;
        assert!(a.is_delivered(id));
        assert_eq!(a.latency_at(id, 150), 51);
    }

    #[test]
    fn slots_are_recycled() {
        let (mut a, id) = arena();
        a.push_stage(id, 1, 0);
        assert_eq!(a.live_count(), 1);
        a.remove(id);
        assert_eq!(a.live_count(), 0);
        let id2 = a.insert(NewMessage {
            src: NodeId(1),
            dest: NodeId(2),
            class: MessageClass::HotSpot,
            length: 9,
            birth: 7,
            measured: false,
        });
        assert_eq!(id, id2, "free slot must be reused");
        assert_eq!(a.capacity(), 1);
        assert_eq!(a.chain_len[id2 as usize], 0, "chain reset on reuse");
        assert_eq!(a.flits_at_source(id2), 9);
    }

    #[test]
    fn chains_of_distinct_slots_do_not_alias() {
        let (mut a, id0) = arena();
        let id1 = a.insert(NewMessage {
            src: NodeId(3),
            dest: NodeId(4),
            class: MessageClass::Regular,
            length: 2,
            birth: 0,
            measured: false,
        });
        a.push_stage(id0, 10, 0);
        a.push_stage(id1, 20, 1);
        assert_eq!(a.chain(id0).len(), 1);
        assert_eq!(a.chain(id0)[0].port, 10);
        assert_eq!(a.chain(id1)[0].port, 20);
    }
}
