//! Simulator configuration.

use kncube_topology::{Boundary, KAryNCube, LinkKind, NodeId, TopologyError};
use kncube_traffic::{ArrivalProcess, FaultSpec, TrafficPattern};
use std::fmt;

/// How arrived messages leave the network at their destination.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EjectionPolicy {
    /// Every arrived message drains into the local PE at one flit per
    /// cycle, independently of other arrivals — "messages are transferred
    /// to the local PE as soon as they arrive" (assumption iv).  This is
    /// the reading the analytical model's `Lm` drain term corresponds to.
    #[default]
    PerMessageSink,
    /// A single ejection channel per node: one flit per cycle total,
    /// round-robin over the messages draining at the node (ablation
    /// `ABL-EJECT`).
    SharedChannel,
}

/// Full configuration of a simulation run.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Radix `k` (nodes per dimension).
    pub k: u32,
    /// Dimension count `n` (the paper validates `n = 2`; the simulator is
    /// general).
    pub n: u32,
    /// Link kind (the paper's analysis is unidirectional; bidirectional
    /// links route the shorter way around each ring).
    pub link_kind: LinkKind,
    /// Boundary condition (torus with wrap-around, or mesh without; meshes
    /// require bidirectional links).
    pub boundary: Boundary,
    /// Optional fault injection: router/link failure probabilities sampled
    /// deterministically from the master seed.  When set, routing runs on
    /// the fault-aware shortest-path router and messages whose endpoints
    /// cannot communicate are dropped at generation (counted in the
    /// report).
    pub faults: Option<FaultSpec>,
    /// Virtual channels per physical channel (`V >= 2` for deadlock-free
    /// torus routing).
    pub virtual_channels: u32,
    /// Flit capacity of each virtual-channel buffer.
    ///
    /// The default is 2: one slot covering the flit in flight plus one
    /// covering the single-cycle credit return, which is the minimum that
    /// sustains one flit/cycle through a pipeline — the rate the paper's
    /// cycle definition and the model's `Lm` terms assume.  Depth 1 is
    /// accepted (halves sustained bandwidth; ablation `ABL-BUF`).
    pub buffer_depth: u32,
    /// Message length in flits.
    pub message_length: u32,
    /// Per-node arrival process (rate `λ` messages/cycle).
    pub arrivals: ArrivalProcess,
    /// Destination pattern.
    pub pattern: TrafficPattern,
    /// Ejection model.
    pub ejection: EjectionPolicy,
    /// Master RNG seed.
    pub seed: u64,
    /// Cycles to run before statistics collection starts (messages born
    /// during warm-up never enter the statistics).
    pub warmup_cycles: u64,
    /// Hard stop: total cycles simulated (warm-up included).
    pub max_cycles: u64,
    /// Stop early once this many measured messages completed (0 = run to
    /// `max_cycles`).
    pub target_messages: u64,
    /// Number of batches for the batch-means confidence interval.
    pub batches: u32,
    /// Consider the run saturated if any source queue exceeds this many
    /// waiting messages (0 disables the check).
    pub max_source_queue: usize,
}

/// Configuration errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimConfigError {
    /// Underlying topology rejected the parameters.
    Topology(TopologyError),
    /// A parameter is out of range.
    Invalid(&'static str),
}

impl fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimConfigError::Topology(e) => write!(f, "topology: {e}"),
            SimConfigError::Invalid(msg) => write!(f, "invalid simulator config: {msg}"),
        }
    }
}

impl std::error::Error for SimConfigError {}

impl SimConfig {
    /// A generalized k-ary n-cube hot-spot run: a unidirectional cube of
    /// radix `k` and dimension count `n`, Poisson sources of rate
    /// `lambda`, Pfister–Norton hot-spot pattern with fraction `h` towards
    /// node 0, fixed `lm`-flit messages.
    ///
    /// The engine itself is dimension-agnostic — router ports and
    /// Dally–Seitz virtual-channel classes come from the topology's
    /// channel ids, so the same flit pipeline serves a ring (`n = 1`), the
    /// paper's torus (`n = 2`), a binary hypercube (`k = 2`) or any other
    /// cube.  Warm-up and run lengths default to values suitable for the
    /// paper's loads; tune with [`SimConfig::with_limits`].
    pub fn ncube(k: u32, n: u32, v: u32, lm: u32, lambda: f64, h: f64, seed: u64) -> Self {
        SimConfig {
            k,
            n,
            link_kind: LinkKind::Unidirectional,
            boundary: Boundary::Torus,
            faults: None,
            virtual_channels: v,
            buffer_depth: 2,
            message_length: lm,
            arrivals: ArrivalProcess::Poisson(lambda),
            pattern: if h > 0.0 {
                TrafficPattern::HotSpot { h, hot: NodeId(0) }
            } else {
                TrafficPattern::Uniform
            },
            ejection: EjectionPolicy::PerMessageSink,
            seed,
            warmup_cycles: 100_000,
            max_cycles: 2_000_000,
            target_messages: 60_000,
            batches: 10,
            max_source_queue: 2_000,
        }
    }

    /// The paper's validation setup: [`SimConfig::ncube`] at `n = 2` (a
    /// `k × k` unidirectional torus).
    pub fn paper_validation(k: u32, v: u32, lm: u32, lambda: f64, h: f64, seed: u64) -> Self {
        Self::ncube(k, 2, v, lm, lambda, h, seed)
    }

    /// Override run lengths: `max_cycles`, `warmup_cycles` and the early
    /// stop at `target_messages` measured completions.
    pub fn with_limits(mut self, max_cycles: u64, warmup_cycles: u64, target: u64) -> Self {
        self.max_cycles = max_cycles;
        self.warmup_cycles = warmup_cycles;
        self.target_messages = target;
        self
    }

    /// Override the link kind and boundary condition.
    pub fn with_topology(mut self, link_kind: LinkKind, boundary: Boundary) -> Self {
        self.link_kind = link_kind;
        self.boundary = boundary;
        self
    }

    /// Enable fault injection with the given failure probabilities.
    pub fn with_faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Build the topology this configuration describes.
    pub fn topology(&self) -> Result<KAryNCube, SimConfigError> {
        KAryNCube::with_boundary(self.k, self.n, self.link_kind, self.boundary)
            .map_err(SimConfigError::Topology)
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        if let Some(spec) = self.faults {
            if !spec.is_valid() {
                return Err(SimConfigError::Invalid(
                    "fault probabilities must lie in [0, 1]",
                ));
            }
        }
        if self.virtual_channels < 1 {
            return Err(SimConfigError::Invalid("need at least 1 virtual channel"));
        }
        if self.virtual_channels > 64 {
            return Err(SimConfigError::Invalid("more than 64 virtual channels"));
        }
        if self.buffer_depth < 1 {
            return Err(SimConfigError::Invalid("buffer depth must be >= 1"));
        }
        if self.message_length < 1 {
            return Err(SimConfigError::Invalid("messages need at least 1 flit"));
        }
        if self.warmup_cycles >= self.max_cycles {
            return Err(SimConfigError::Invalid(
                "warm-up must be shorter than the total run",
            ));
        }
        if self.batches < 1 {
            return Err(SimConfigError::Invalid("need at least one batch"));
        }
        if !self.arrivals.rate().is_finite() || self.arrivals.rate() < 0.0 {
            return Err(SimConfigError::Invalid("arrival rate must be >= 0"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_validation_defaults_are_valid() {
        let c = SimConfig::paper_validation(16, 2, 32, 1e-4, 0.2, 1);
        assert!(c.validate().is_ok());
        assert_eq!(c.topology().unwrap().num_nodes(), 256);
        assert!(matches!(c.pattern, TrafficPattern::HotSpot { .. }));
    }

    #[test]
    fn ncube_constructor_generalizes_paper_validation() {
        let c = SimConfig::ncube(8, 3, 2, 16, 1e-4, 0.2, 1);
        assert!(c.validate().is_ok());
        let t = c.topology().unwrap();
        assert_eq!((t.k(), t.n(), t.num_nodes()), (8, 3, 512));
        // A binary hypercube is the 2-ary n-cube.
        let hc = SimConfig::ncube(2, 6, 2, 16, 1e-4, 0.2, 1);
        assert_eq!(hc.topology().unwrap().num_nodes(), 64);
        // paper_validation is exactly the n = 2 instance.
        let p = SimConfig::paper_validation(8, 2, 16, 1e-4, 0.2, 1);
        assert_eq!(p.n, 2);
        assert_eq!(p.k, SimConfig::ncube(8, 2, 2, 16, 1e-4, 0.2, 1).k);
    }

    #[test]
    fn zero_h_becomes_uniform() {
        let c = SimConfig::paper_validation(8, 2, 32, 1e-4, 0.0, 1);
        assert_eq!(c.pattern, TrafficPattern::Uniform);
    }

    #[test]
    fn rejects_bad_parameters() {
        let base = SimConfig::paper_validation(8, 2, 32, 1e-4, 0.2, 1);
        let mut c = base;
        c.virtual_channels = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.buffer_depth = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.message_length = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.warmup_cycles = c.max_cycles;
        assert!(c.validate().is_err());
        let mut c = base;
        c.k = 1;
        assert!(c.topology().is_err());
    }

    #[test]
    fn with_limits_overrides() {
        let c = SimConfig::paper_validation(8, 2, 32, 1e-4, 0.2, 1).with_limits(9, 3, 7);
        assert_eq!(
            (c.max_cycles, c.warmup_cycles, c.target_messages),
            (9, 3, 7)
        );
    }
}
