//! The cycle-based simulation engine.
//!
//! # Resources
//!
//! Ports are the transmitting resources, one flit per cycle each:
//!
//! * **network channels** — flat indices `0..C` (from `kncube-topology`'s
//!   channel ids);
//! * **injection ports** — indices `C..C+N`, one per node, carrying flits
//!   from the infinite source queue into the local router;
//! * **ejection** is not a port: per the ejection policy, arrived messages
//!   drain one flit per cycle each (default) or share one per-node sink.
//!
//! Each port multiplexes `V` virtual channels, each with a `buffer_depth`
//! flit buffer at the receiving side.  Buffer accounting distinguishes
//! flits present *since the cycle start* (eligible to move on) from flits
//! that arrived this cycle, so a flit crosses at most one channel per cycle
//! regardless of port processing order; space admits a flit when the
//! *start-of-cycle* occupancy is below capacity, modelling the one-cycle
//! credit loop.  Depth 2 (the default) therefore sustains the full one
//! flit/cycle pipeline the paper's model assumes; depth 1 halves it.
//!
//! # State layout (struct of arrays)
//!
//! Router state is flat arrays, not an object graph: per-VC counters
//! (`vc_occ`, `vc_arrived`, `vc_departed`), the VC's holding message
//! (`vc_msg`) and its chain-stage index (`vc_stage`) are `Vec`s indexed by
//! `port * V + vc`; per-port state (`port_rr`, `port_busy`, `port_flits`,
//! worklist membership flags) is indexed by the flat port id.  The
//! allocation queues are intrusive FIFOs threaded through the message
//! arena (`wait_head`/`wait_tail` per `(port, class)`, `wait_next` per
//! message), and message state itself lives in the struct-of-arrays
//! [`MessageArena`] — so a simulation cycle touches a handful of dense
//! arrays instead of chasing per-port and per-message heap objects, and
//! steady-state execution performs no allocation at all.
//!
//! Work is driven by explicit worklists, all O(live state) rather than
//! O(network size): the `active` list holds exactly the ports with at
//! least one allocated VC (maintained by `grant`/`free_vc` via the
//! `port_in_active` flag), `pending_alloc` holds the ports whose
//! allocation queues may be grantable (`port_in_pending`), `ejecting`
//! holds draining messages, and the arrival heap orders future source
//! events so fully idle stretches are skipped in O(log N).  Idle channels
//! are therefore never scanned — at the low-to-mid loads where validation
//! sweeps live, almost all ports are idle almost always.
//!
//! # Cycle phases
//!
//! 1. **generate** — Poisson sources emit messages into source queues and
//!    the injection-port allocation queues;
//! 2. **allocate** — free virtual channels are granted to the FIFO of
//!    waiting headers, per Dally–Seitz class on network ports;
//! 3. **move** — every active port transfers at most one flit, arbitrating
//!    round-robin over its virtual channels; headers that land pick their
//!    next hop (dimension-order) or start ejecting;
//! 4. **eject/complete** — draining messages deliver flits; completed
//!    messages are retired into the statistics.
//!
//! All four phases are deterministic; a run is a pure function of its
//! configuration (including the seed).  The struct-of-arrays refactor is
//! pinned to the original object-graph engine by fixed-seed report
//! snapshots (`tests/engine_snapshots.rs`): same seed, bit-identical
//! report.

use crate::config::{EjectionPolicy, SimConfig, SimConfigError};
use crate::message::{HeadState, MessageArena, MsgId, NewMessage, NO_MSG};
use crate::report::SimReport;
use crate::stats::{BatchMeans, StreamingStats};
use kncube_topology::{Boundary, Channel, ChannelId, FaultRouter, KAryNCube, NodeId, VcClass};
use kncube_traffic::{
    sample_fault_set, GeneratedMessage, MessageClass, NodeWorkload, WorkloadConfig,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Packed `vc_cnt` fields (16 bits each): `occ`, `arrived`, `departed`,
/// and the low 16 bits of the cycle the word was last written (its
/// *stamp*).  `arrived`/`departed` are per-cycle quantities: a reader
/// treats them as zero whenever the stamp is not the current cycle, which
/// replaces an explicit end-of-cycle reset pass (there is no "touched"
/// list to drain).  A periodic sweep (every 2¹⁶ cycles) clears stale
/// words so a wrapped stamp can never false-match.
const CNT_OCC: u64 = 1;
const CNT_ARR: u64 = 1 << 16;
const CNT_DEP: u64 = 1 << 32;
const CNT_F: u64 = 0xFFFF;
/// Everything below the stamp.
const CNT_MASK: u64 = (1 << 48) - 1;

/// Normalize a counter word read at stamp `stamp`: stale per-cycle fields
/// read as zero.
#[inline]
fn cnt_norm(w: u64, stamp: u64) -> u64 {
    if w >> 48 == stamp {
        w
    } else {
        w & CNT_F
    }
}

/// `occ` field of a packed count (valid regardless of stamp).
#[inline]
fn cnt_occ(w: u64) -> u64 {
    w & CNT_F
}

/// Flits eligible to move on: `occ - arrived` (present since cycle
/// start).  Takes a normalized word.
#[inline]
fn cnt_ready(w: u64) -> u64 {
    (w & CNT_F) - ((w >> 16) & CNT_F)
}

/// Start-of-cycle occupancy: `occ - arrived + departed` (credit-loop
/// view).  Takes a normalized word.
#[inline]
fn cnt_start_occ(w: u64) -> u64 {
    (w & CNT_F) - ((w >> 16) & CNT_F) + ((w >> 32) & CNT_F)
}

/// The simulator.
pub struct Simulator {
    config: SimConfig,
    topo: KAryNCube,
    /// Fault-aware router, present iff the configuration enables fault
    /// injection (even when the sampled fault set happens to be empty, so
    /// behaviour is a function of the configuration, not of sampling
    /// luck).  Routing then takes deterministic shortest surviving paths
    /// instead of dimension-order routes.
    fault_router: Option<FaultRouter>,
    /// Virtual channels per port (copied out of `config` for indexing).
    v: u32,
    /// First injection-port index (= number of network channels).
    inj_base: u32,
    // --- virtual-channel state, indexed by `port * V + vc` ---
    /// Holder, chain stage, and flits still to receive, in one word: the
    /// holding message in bits 0..32 (`NO_MSG` when free), the stage index
    /// within its chain in bits 32..48, and `remaining = length - entered`
    /// in bits 48..64 — one load answers "is there anything to move here"
    /// without touching the message arena at all.
    vc_slot: Vec<u64>,
    /// Packed, cycle-stamped per-VC flit accounting: `occ` (flits
    /// currently buffered), `arrived` (this cycle) and `departed` (this
    /// cycle) — see the `CNT_*` constants.  A flit arrival is one add of
    /// `CNT_OCC + CNT_ARR`, a departure one add of `CNT_DEP - CNT_OCC`;
    /// per-cycle fields expire via the stamp instead of a reset pass.
    vc_cnt: Vec<u64>,
    /// Flat index of the previous chain stage's VC (`u32::MAX` for
    /// injection stages), cached at grant time so the move hot path needs
    /// no chain lookup to find its upstream buffer.
    vc_prev: Vec<u32>,
    // --- per-port state, indexed by the flat port id ---
    /// Round-robin cursor over VCs.
    port_rr: Vec<u32>,
    /// Allocated VCs (kept incrementally; drives the active list and the
    /// multiplexing measurement).
    port_busy: Vec<u32>,
    /// Allocated VCs that still have flits left to receive
    /// (`entered < length`).  A port with none can move nothing this
    /// cycle — or any cycle until a new grant — so the move phase skips
    /// it outright instead of scanning its VCs.
    port_movable: Vec<u32>,
    /// Flits transferred (total, for utilization statistics).
    port_flits: Vec<u64>,
    port_in_active: Vec<bool>,
    port_in_pending: Vec<bool>,
    // --- allocation queues: intrusive FIFO per (port, class), indexed by
    // `port * 2 + class` (injection ports use class 0 only) ---
    wait_head: Vec<MsgId>,
    wait_tail: Vec<MsgId>,
    wait_len: Vec<u32>,
    messages: MessageArena,
    workloads: Vec<NodeWorkload>,
    /// Min-heap of (next arrival cycle, node) — generation only touches
    /// nodes that actually have an arrival due, and lets the run loop
    /// fast-forward across fully idle stretches.
    arrival_heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Ports with at least one allocated VC.
    active: Vec<u32>,
    /// Ports with waiting headers that may be grantable.
    pending_alloc: Vec<u32>,
    /// Scratch list swapped with `pending_alloc` each allocation pass so
    /// no cycle allocates.
    pending_scratch: Vec<u32>,
    /// Messages draining at their destination.
    ejecting: Vec<MsgId>,
    /// Scratch buffer for generated messages.
    gen_scratch: Vec<GeneratedMessage>,
    cycle: u64,
    /// Next cycle at which stale `vc_cnt` stamps must be swept (so a
    /// wrapped 16-bit stamp can never alias a current cycle).
    next_sweep: u64,
    last_progress: u64,
    // --- statistics ---
    generated: u64,
    /// Messages dropped at generation: the sampled fault set disconnects
    /// their endpoints (or kills one of them).
    dropped_unreachable: u64,
    /// Σ extra hops (beyond the fault-free minimum) over measured
    /// completions, for the mean-detour statistic.
    detour_hops_total: u64,
    completed_measured: u64,
    latency_all: StreamingStats,
    latency_regular: StreamingStats,
    latency_hot: StreamingStats,
    batches: BatchMeans,
    /// Current Σv over network channels (v = busy VCs), maintained
    /// incrementally by `grant`/`free_vc` so the per-cycle measurement is
    /// O(1) instead of a scan of the active list.
    busy_v: u64,
    /// Current Σv² over network channels.
    busy_v2: u64,
    /// Σv over busy network channels and measured cycles.  Every addend
    /// is a small integer, so the u64 total converts to the same f64 the
    /// original per-port f64 accumulation produced (both are exact below
    /// 2⁵³) — Dally's V̄ is the flit-weighted ratio Σv²/Σv.
    vbar_total_v: u64,
    /// Σv² over the same.
    vbar_total_v2: u64,
    measured_flits_ejected: u64,
    max_queue_seen: usize,
    saturated: bool,
    deadlocked: bool,
}

/// Size of the High VC class: `ceil(V/2)` (the rest are Low).
fn high_class_size(v: u32) -> u32 {
    v.div_ceil(2)
}

impl Simulator {
    /// Build a simulator for `config`.
    pub fn new(config: SimConfig) -> Result<Self, SimConfigError> {
        config.validate()?;
        let topo = config.topology()?;
        let n_nodes = topo.num_nodes();
        let n_channels = topo.num_channels();
        let n_ports = (n_channels + n_nodes) as usize;
        let v = config.virtual_channels;
        let n_vcs = n_ports * v as usize;
        let wl_config = WorkloadConfig {
            arrivals: config.arrivals,
            pattern: config.pattern,
            message_length: config.message_length,
            seed: config.seed,
        };
        let workloads: Vec<NodeWorkload> = topo
            .nodes()
            .map(|node| NodeWorkload::new(node, wl_config))
            .collect();
        let arrival_heap = workloads
            .iter()
            .filter_map(|wl| wl.next_arrival_cycle().map(|c| Reverse((c, wl.node().0))))
            .collect();
        let per_batch = if config.target_messages > 0 {
            (config.target_messages / config.batches as u64).max(1)
        } else {
            1_000
        };
        let fault_router = config
            .faults
            .map(|spec| FaultRouter::new(sample_fault_set(topo, spec, config.seed)));
        // Longest chain: the injection stage plus one stage per hop of the
        // longest route — the longest dimension-order route without
        // faults, the longest surviving shortest path with them (detours
        // can exceed the fault-free diameter).
        let max_chain = match &fault_router {
            Some(router) => router.max_finite_distance() + 1,
            None => topo.max_hops() + 1,
        };
        // The packed VC words hold lengths, stages and buffer counts in
        // 16-bit fields.
        assert!(
            config.message_length < (1 << 16) && config.buffer_depth < (1 << 16),
            "message length and buffer depth must fit 16 bits"
        );
        assert!(max_chain < (1 << 16), "chain stages must fit 16 bits");
        Ok(Simulator {
            config,
            topo,
            fault_router,
            v,
            inj_base: n_channels,
            vc_slot: vec![NO_MSG as u64; n_vcs],
            vc_cnt: vec![0; n_vcs],
            vc_prev: vec![u32::MAX; n_vcs],
            port_rr: vec![0; n_ports],
            port_busy: vec![0; n_ports],
            port_movable: vec![0; n_ports],
            port_flits: vec![0; n_ports],
            port_in_active: vec![false; n_ports],
            port_in_pending: vec![false; n_ports],
            wait_head: vec![NO_MSG; n_ports * 2],
            wait_tail: vec![NO_MSG; n_ports * 2],
            wait_len: vec![0; n_ports * 2],
            messages: MessageArena::new(max_chain),
            workloads,
            arrival_heap,
            active: Vec::new(),
            pending_alloc: Vec::new(),
            pending_scratch: Vec::new(),
            ejecting: Vec::new(),
            gen_scratch: Vec::new(),
            cycle: 0,
            next_sweep: 1 << 16,
            last_progress: 0,
            generated: 0,
            dropped_unreachable: 0,
            detour_hops_total: 0,
            completed_measured: 0,
            latency_all: StreamingStats::new(),
            latency_regular: StreamingStats::new(),
            latency_hot: StreamingStats::new(),
            batches: BatchMeans::new(config.batches, per_batch),
            busy_v: 0,
            busy_v2: 0,
            vbar_total_v: 0,
            vbar_total_v2: 0,
            measured_flits_ejected: 0,
            max_queue_seen: 0,
            saturated: false,
            deadlocked: false,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Messages currently in flight (including source queues).
    pub fn in_flight(&self) -> usize {
        self.messages.live_count()
    }

    /// The injection-port index of `node`.
    fn inj_port(&self, node: NodeId) -> u32 {
        self.inj_base + node.0
    }

    /// Flat VC-state index of `(port, vc)`.
    #[inline]
    fn pv(&self, port: u32, vc: u32) -> usize {
        (port * self.v + vc) as usize
    }

    /// The node that receives flits crossing `port`.
    fn port_sink(&self, port: u32) -> NodeId {
        if port >= self.inj_base {
            NodeId(port - self.inj_base)
        } else {
            Channel::from_id(&self.topo, ChannelId(port)).to(&self.topo)
        }
    }

    /// VC indices `[lo, hi)` of `class` on a network port.  Meshes have no
    /// wrap-around links, so no hop ever needs the Low class and the High
    /// class gets the whole VC pool; tori split it `ceil(V/2)` / rest.
    fn class_range(&self, class: usize) -> (u32, u32) {
        let v = self.v;
        if self.topo.boundary() == Boundary::Mesh {
            return if class == 0 { (0, v) } else { (v, v) };
        }
        let high = high_class_size(v);
        if class == 0 {
            (0, high)
        } else {
            (high, v)
        }
    }

    // ------------------------------------------------------------------
    // Phase 1: generation
    // ------------------------------------------------------------------

    fn generate(&mut self) {
        let mut scratch = std::mem::take(&mut self.gen_scratch);
        scratch.clear();
        while let Some(&Reverse((due, node))) = self.arrival_heap.peek() {
            debug_assert!(due >= self.cycle, "skipped past an arrival");
            if due != self.cycle {
                break;
            }
            self.arrival_heap.pop();
            let wl = &mut self.workloads[node as usize];
            wl.generate_into(&self.topo, self.cycle, &mut scratch);
            if let Some(next) = wl.next_arrival_cycle() {
                self.arrival_heap.push(Reverse((next, node)));
            }
        }
        for gm in scratch.drain(..) {
            if let Some(router) = &self.fault_router {
                // Sources on failed routers generate nothing that can move,
                // and no route exists to a failed or disconnected
                // destination: count the message and drop it at the source.
                if router.distance(gm.src, gm.dest).is_none() {
                    self.generated += 1;
                    self.dropped_unreachable += 1;
                    continue;
                }
            }
            let measured = gm.birth_cycle >= self.config.warmup_cycles;
            let id = self.messages.insert(NewMessage {
                src: gm.src,
                dest: gm.dest,
                class: gm.class,
                length: gm.length,
                birth: gm.birth_cycle,
                measured,
            });
            self.generated += 1;
            let port = self.inj_port(gm.src);
            self.enqueue_request(id, port, 0);
        }
        self.gen_scratch = scratch;
    }

    fn enqueue_request(&mut self, id: MsgId, port: u32, class: usize) {
        let q = port as usize * 2 + class;
        self.messages.wait_next[id as usize] = NO_MSG;
        let tail = self.wait_tail[q];
        if tail == NO_MSG {
            self.wait_head[q] = id;
        } else {
            self.messages.wait_next[tail as usize] = id;
        }
        self.wait_tail[q] = id;
        self.wait_len[q] += 1;
        self.messages.head[id as usize] = HeadState::WaitingFor { port };
        if !self.port_in_pending[port as usize] {
            self.port_in_pending[port as usize] = true;
            self.pending_alloc.push(port);
        }
    }

    /// Pop the FIFO head of allocation queue `q` (which must be
    /// non-empty).
    fn pop_waiting(&mut self, q: usize) -> MsgId {
        let id = self.wait_head[q];
        debug_assert_ne!(id, NO_MSG, "pop from empty allocation queue");
        let next = self.messages.wait_next[id as usize];
        self.wait_head[q] = next;
        if next == NO_MSG {
            self.wait_tail[q] = NO_MSG;
        }
        self.wait_len[q] -= 1;
        id
    }

    /// Waiting headers on `port`, over both classes.
    #[inline]
    fn port_waiting(&self, port: u32) -> u32 {
        let q = port as usize * 2;
        self.wait_len[q] + self.wait_len[q + 1]
    }

    // ------------------------------------------------------------------
    // Phase 2: virtual-channel allocation
    // ------------------------------------------------------------------

    fn allocate(&mut self) {
        // Swap the two persistent lists: drain last cycle's pending set,
        // refill `pending_alloc` with the still-blocked survivors.
        std::mem::swap(&mut self.pending_alloc, &mut self.pending_scratch);
        debug_assert!(self.pending_alloc.is_empty());
        let mut pending = std::mem::take(&mut self.pending_scratch);
        for port_idx in pending.drain(..) {
            let is_injection = port_idx >= self.inj_base;
            for class in 0..2 {
                let (lo, hi) = if is_injection {
                    (0, self.v)
                } else {
                    self.class_range(class)
                };
                let q = port_idx as usize * 2 + class;
                while self.wait_len[q] > 0 {
                    let base = (port_idx * self.v) as usize;
                    let Some(vc_idx) =
                        (lo..hi).find(|&v| self.vc_slot[base + v as usize] as u32 == NO_MSG)
                    else {
                        break;
                    };
                    let id = self.pop_waiting(q);
                    self.grant(id, port_idx, vc_idx);
                }
                if is_injection {
                    break; // injection uses class 0 only
                }
            }
            if self.port_waiting(port_idx) > 0 {
                // Still blocked on a busy class; re-examined when a VC of
                // this port frees.
                self.pending_alloc.push(port_idx);
            } else {
                self.port_in_pending[port_idx as usize] = false;
            }
        }
        self.pending_scratch = pending;
    }

    fn grant(&mut self, id: MsgId, port_idx: u32, vc_idx: u32) {
        let stage = self.messages.push_stage(id, port_idx, vc_idx);
        self.messages.head[id as usize] = HeadState::Crossing;
        let pv = self.pv(port_idx, vc_idx);
        debug_assert_eq!(self.vc_slot[pv] as u32, NO_MSG);
        let length = self.messages.length[id as usize];
        self.vc_slot[pv] = (length as u64) << 48 | (stage as u64) << 32 | id as u64;
        self.vc_prev[pv] = if stage == 0 {
            u32::MAX
        } else {
            let prev = self.messages.chain[self.messages.chain_base(id) + stage as usize - 1];
            self.pv(prev.port, prev.vc) as u32
        };
        let busy = self.port_busy[port_idx as usize] + 1;
        self.port_busy[port_idx as usize] = busy;
        self.port_movable[port_idx as usize] += 1;
        if port_idx < self.inj_base {
            // Incremental Σv / Σv² over network channels.
            self.busy_v += 1;
            self.busy_v2 += (2 * busy - 1) as u64;
        }
        if !self.port_in_active[port_idx as usize] {
            self.port_in_active[port_idx as usize] = true;
            self.active.push(port_idx);
        }
    }

    /// Free the VC `(port, vc)` (its buffer must be empty).
    fn free_vc(&mut self, port: u32, vc: u32) {
        let pv = self.pv(port, vc);
        debug_assert_eq!(cnt_occ(self.vc_cnt[pv]), 0);
        self.vc_slot[pv] = NO_MSG as u64;
        let busy = self.port_busy[port as usize] - 1;
        self.port_busy[port as usize] = busy;
        if port < self.inj_base {
            self.busy_v -= 1;
            self.busy_v2 -= (2 * busy + 1) as u64;
        }
        if self.port_waiting(port) > 0 && !self.port_in_pending[port as usize] {
            self.port_in_pending[port as usize] = true;
            self.pending_alloc.push(port);
        }
    }

    // ------------------------------------------------------------------
    // Phase 3: flit movement
    // ------------------------------------------------------------------

    fn move_flits(&mut self) {
        let cap = self.config.buffer_depth as u64;
        // Iterate a snapshot: ports becoming active this cycle (they can't
        // move flits yet anyway — their buffers' flits arrive this cycle)
        // are picked up next cycle.
        let mut idx = 0;
        while idx < self.active.len() {
            let port_idx = self.active[idx];
            idx += 1;
            if self.port_movable[port_idx as usize] == 0 {
                // Every allocated VC is fully transferred: nothing can
                // move here until a fresh grant, and skipping has no
                // observable effect (a scan would find no movable flit).
                continue;
            }
            let v = self.v;
            let rr = self.port_rr[port_idx as usize];
            for off in 0..v {
                let vc_idx = (rr + off) % v;
                if self.try_move(port_idx, vc_idx, cap) {
                    self.port_rr[port_idx as usize] = (vc_idx + 1) % v;
                    break;
                }
            }
        }
    }

    /// Attempt to move one flit of the message on `(port, vc)` across the
    /// port; returns whether a flit moved.
    fn try_move(&mut self, port_idx: u32, vc_idx: u32, cap: u64) -> bool {
        let pv = self.pv(port_idx, vc_idx);
        let slot = self.vc_slot[pv];
        let id = slot as u32;
        if id == NO_MSG {
            return false;
        }
        let rem = (slot >> 48) as u32;
        if rem == 0 {
            return false; // fully transferred; waiting for downstream drain
        }
        let stamp = self.cycle & 0xFFFF;
        // Upstream flit available since cycle start?  (For injection
        // stages — no upstream VC — all not-yet-injected flits are.)
        let prev_pv = self.vc_prev[pv] as usize;
        let mut w_prev = 0;
        if prev_pv != u32::MAX as usize {
            debug_assert_eq!(self.vc_slot[prev_pv] as u32, id);
            w_prev = cnt_norm(self.vc_cnt[prev_pv], stamp);
            if cnt_ready(w_prev) == 0 {
                return false;
            }
        }
        // Space in this VC's buffer (start-of-cycle occupancy rule)?
        let w = cnt_norm(self.vc_cnt[pv], stamp);
        if cnt_start_occ(w) >= cap {
            return false;
        }
        // --- Commit the move.
        let stage_idx = ((slot >> 32) & 0xFFFF) as usize;
        let length = self.messages.length[id as usize];
        let base = self.messages.chain_base(id);
        debug_assert_eq!(
            (
                self.messages.chain[base + stage_idx].port,
                self.messages.chain[base + stage_idx].vc,
                length - self.messages.chain[base + stage_idx].entered,
            ),
            (port_idx, vc_idx, rem)
        );
        let entered = length - rem + 1;
        self.messages.chain[base + stage_idx].entered = entered;
        self.vc_slot[pv] = slot - (1 << 48);
        if rem == 1 {
            // This VC has now received every flit; it can never move one
            // in again.
            self.port_movable[port_idx as usize] -= 1;
        }
        let is_head_arrival =
            entered == 1 && stage_idx as u32 + 1 == self.messages.chain_len[id as usize];
        self.vc_cnt[pv] = (w + (CNT_OCC + CNT_ARR)) & CNT_MASK | stamp << 48;
        self.port_flits[port_idx as usize] += 1;
        if prev_pv != u32::MAX as usize {
            self.vc_cnt[prev_pv] = (w_prev + (CNT_DEP - CNT_OCC)) & CNT_MASK | stamp << 48;
            if rem == 1 {
                // The tail just left the previous stage: release it.
                let prev = self.messages.chain[base + stage_idx - 1];
                self.free_vc(prev.port, prev.vc);
            }
        }
        self.last_progress = self.cycle;
        if is_head_arrival {
            self.on_head_arrival(id, port_idx);
        }
        true
    }

    /// The header landed in the buffer at the sink of `port`: route it.
    fn on_head_arrival(&mut self, id: MsgId, port_idx: u32) {
        let node = self.port_sink(port_idx);
        let dest = self.messages.dest[id as usize];
        if node == dest {
            self.messages.head[id as usize] = HeadState::Ejecting;
            self.ejecting.push(id);
            return;
        }
        // Invariant: a header can only be at an intermediate node if the
        // destination is reachable from it.  `generate` drops any message
        // whose (src, dest) pair has no surviving route (including the
        // fully-partitioned network where *no* pair survives), and every
        // hop taken so far followed `next_hop`, which only moves along
        // finite-distance paths — so `next_hop` here is total even under
        // arbitrary fault sets.  The fault-free branch is total because
        // `node != dest` was checked above.
        debug_assert!(
            self.fault_router
                .as_ref()
                .is_none_or(|r| r.distance(node, dest).is_some()),
            "in-flight message at a node that cannot reach its destination"
        );
        let hop = match &self.fault_router {
            Some(router) => router
                .next_hop(node, dest)
                .expect("unreachable destinations are dropped at generation"),
            None => self
                .topo
                .dor_next_hop(node, dest)
                .expect("not at destination"),
        };
        let next_port = hop.channel.id(&self.topo).0;
        let class = match hop.vc_class {
            VcClass::High => 0,
            VcClass::Low => 1,
        };
        self.enqueue_request(id, next_port, class);
    }

    // ------------------------------------------------------------------
    // Phase 4: ejection & completion
    // ------------------------------------------------------------------

    fn eject(&mut self) {
        match self.config.ejection {
            EjectionPolicy::PerMessageSink => {
                let mut i = 0;
                while i < self.ejecting.len() {
                    let id = self.ejecting[i];
                    if self.try_eject_one(id) && self.messages.is_delivered(id) {
                        self.complete(id);
                        self.ejecting.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
            }
            EjectionPolicy::SharedChannel => {
                // One flit per node per cycle: group by destination and
                // serve round-robin by rotating the ejecting list.
                let mut served: Vec<NodeId> = Vec::new();
                let mut i = 0;
                while i < self.ejecting.len() {
                    let id = self.ejecting[i];
                    let dest = self.messages.dest[id as usize];
                    if served.contains(&dest) {
                        i += 1;
                        continue;
                    }
                    if self.try_eject_one(id) {
                        served.push(dest);
                        if self.messages.is_delivered(id) {
                            self.complete(id);
                            self.ejecting.swap_remove(i);
                            continue;
                        }
                        // Rotate: move to the back so co-located messages
                        // alternate fairly across cycles.
                        let m = self.ejecting.remove(i);
                        self.ejecting.push(m);
                        continue;
                    }
                    i += 1;
                }
            }
        }
    }

    /// Deliver one flit of `id` to the PE if one is ready.
    fn try_eject_one(&mut self, id: MsgId) -> bool {
        let i = id as usize;
        let chain_len = self.messages.chain_len[i] as usize;
        debug_assert!(chain_len > 0, "ejecting message has a chain");
        let last = self.messages.chain[self.messages.chain_base(id) + chain_len - 1];
        let pv = self.pv(last.port, last.vc);
        let stamp = self.cycle & 0xFFFF;
        let w = cnt_norm(self.vc_cnt[pv], stamp);
        if cnt_ready(w) == 0 {
            return false;
        }
        self.vc_cnt[pv] = (w + (CNT_DEP - CNT_OCC)) & CNT_MASK | stamp << 48;
        self.messages.ejected[i] += 1;
        if self.messages.measured[i] {
            self.measured_flits_ejected += 1;
        }
        self.last_progress = self.cycle;
        if self.messages.is_delivered(id) {
            self.free_vc(last.port, last.vc);
        }
        true
    }

    fn complete(&mut self, id: MsgId) {
        debug_assert!(self.messages.is_delivered(id));
        let i = id as usize;
        if self.messages.measured[i] {
            let latency = self.messages.latency_at(id, self.cycle) as f64;
            if self.fault_router.is_some() {
                // Chain stages are the injection stage plus one per hop;
                // the fault-free minimum is the dimension-order hop count.
                let hops = self.messages.chain_len[i] as u64 - 1;
                let minimal = self
                    .topo
                    .hop_count(self.messages.src[i], self.messages.dest[i]);
                self.detour_hops_total += hops - minimal as u64;
            }
            self.completed_measured += 1;
            self.latency_all.push(latency);
            self.batches.push(latency);
            match self.messages.class[i] {
                MessageClass::Regular => self.latency_regular.push(latency),
                MessageClass::HotSpot => self.latency_hot.push(latency),
            }
        }
        self.messages.remove(id);
    }

    // ------------------------------------------------------------------
    // Cycle driver
    // ------------------------------------------------------------------

    /// Advance the simulation by one cycle.
    pub fn step(&mut self) {
        // Periodic stamp sweep: clear per-cycle fields everywhere so a
        // wrapped 16-bit stamp can never alias the current cycle.  Runs
        // once per 2¹⁶ cycles — amortized noise.
        if self.cycle >= self.next_sweep {
            for w in &mut self.vc_cnt {
                *w &= CNT_F;
            }
            self.next_sweep = (self.cycle | 0xFFFF) + 1;
        }
        self.generate();
        self.allocate();
        self.move_flits();
        self.eject();
        // Multiplexing measurement (after warm-up): average busy VCs over
        // busy physical channels, the quantity Eqs. (33)-(35) model.  The
        // Σv / Σv² snapshot is maintained incrementally by grant/free_vc,
        // so sampling it is O(1) per cycle.
        if self.cycle >= self.config.warmup_cycles {
            self.vbar_total_v += self.busy_v;
            self.vbar_total_v2 += self.busy_v2;
        }
        // Compact the active worklist: drop ports that went idle.
        let port_busy = &self.port_busy;
        let port_in_active = &mut self.port_in_active;
        self.active.retain(|&p| {
            if port_busy[p as usize] == 0 {
                port_in_active[p as usize] = false;
                false
            } else {
                true
            }
        });
        self.cycle += 1;
    }

    /// Periodic health checks; returns false when the run should stop.
    fn healthy(&mut self) -> bool {
        if self.config.max_source_queue > 0 {
            let n_ports = self.port_busy.len() as u32;
            let worst = (self.inj_base..n_ports)
                .map(|p| self.port_waiting(p) as usize)
                .max()
                .unwrap_or(0);
            self.max_queue_seen = self.max_queue_seen.max(worst);
            if worst > self.config.max_source_queue {
                self.saturated = true;
                return false;
            }
        }
        // Deadlock watchdog: in-flight messages but no flit movement for a
        // long stretch cannot happen in a correct deadlock-free network.
        if self.messages.live_count() > 0
            && self.cycle - self.last_progress > 10_000 + 100 * self.config.message_length as u64
        {
            self.deadlocked = true;
            return false;
        }
        true
    }

    /// Run to completion (max cycles, message target, or failure) and
    /// report.
    pub fn run(mut self) -> SimReport {
        while self.cycle < self.config.max_cycles {
            // Fast-forward across fully idle stretches: with nothing in
            // flight, nothing can happen until the next arrival.
            if self.messages.live_count() == 0 {
                match self.arrival_heap.peek() {
                    Some(&Reverse((next, _))) if next > self.cycle => {
                        self.cycle = next.min(self.config.max_cycles);
                        self.last_progress = self.cycle;
                        if self.cycle == self.config.max_cycles {
                            break;
                        }
                    }
                    Some(_) => {}
                    None => {
                        // No further arrivals, ever.
                        self.cycle = self.config.max_cycles;
                        break;
                    }
                }
            }
            self.step();
            if self.cycle.is_multiple_of(1024) {
                if !self.healthy() {
                    break;
                }
                if self.config.target_messages > 0
                    && self.completed_measured >= self.config.target_messages
                {
                    break;
                }
            }
        }
        self.into_report()
    }

    /// Produce the report for the cycles simulated so far.
    pub fn into_report(self) -> SimReport {
        let measured_cycles = self.cycle.saturating_sub(self.config.warmup_cycles);
        let n = self.topo.num_nodes() as f64;
        SimReport {
            mean_latency: self.latency_all.mean(),
            ci_half_width: self.batches.confidence_half_width(),
            latency_std_dev: self.latency_all.std_dev(),
            max_latency: self.latency_all.max(),
            completed: self.completed_measured,
            completed_regular: self.latency_regular.count(),
            completed_hot: self.latency_hot.count(),
            mean_latency_regular: self.latency_regular.mean(),
            mean_latency_hot: self.latency_hot.mean(),
            generated: self.generated,
            dropped_unreachable: self.dropped_unreachable,
            mean_detour_hops: if self.completed_measured > 0 {
                self.detour_hops_total as f64 / self.completed_measured as f64
            } else {
                0.0
            },
            reachable_fraction: match &self.fault_router {
                Some(router) => router.reachable_fraction(),
                None => 1.0,
            },
            cycles: self.cycle,
            throughput: if measured_cycles > 0 {
                self.completed_measured as f64 / measured_cycles as f64 / n
            } else {
                0.0
            },
            offered_load: self.config.arrivals.rate(),
            vbar_measured: if self.vbar_total_v > 0 {
                self.vbar_total_v2 as f64 / self.vbar_total_v as f64
            } else {
                1.0
            },
            max_source_queue: self.max_queue_seen,
            in_flight_at_end: self.messages.live_count() as u64,
            saturated: self.saturated,
            deadlocked: self.deadlocked,
        }
    }

    // ------------------------------------------------------------------
    // Inspection hooks
    // ------------------------------------------------------------------

    /// Flits transferred so far by the network channel `channel`
    /// (injection ports excluded).  Dividing by the elapsed cycles gives
    /// the channel's flit utilization, whose message-rate counterpart is
    /// exactly what Eqs. (3)-(9) predict — the rate-equation validation
    /// tests use this hook.
    pub fn channel_flits(&self, channel: kncube_topology::ChannelId) -> u64 {
        assert!(channel.0 < self.inj_base, "network channels only");
        self.port_flits[channel.index()]
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &KAryNCube {
        &self.topo
    }

    /// The fault-aware router in force, when fault injection is enabled.
    pub fn fault_router(&self) -> Option<&FaultRouter> {
        self.fault_router.as_ref()
    }

    /// Total flits currently buffered anywhere in the network, plus flits
    /// still at sources and flits delivered — must always equal
    /// `Σ length` over live messages plus delivered flits (conservation).
    pub fn flit_conservation_check(&self) -> bool {
        for id in 0..self.messages.capacity() as MsgId {
            if !self.messages.live[id as usize] {
                continue;
            }
            let length = self.messages.length[id as usize];
            let chain = self.messages.chain(id);
            let mut accounted =
                self.messages.flits_at_source(id) + self.messages.ejected[id as usize];
            for i in 0..chain.len() {
                accounted += self.messages.stage_occupancy(id, i);
            }
            if accounted != length {
                return false;
            }
            // Per-stage entered counts must be monotone along the chain.
            for w in chain.windows(2) {
                if w[1].entered > w[0].entered {
                    return false;
                }
            }
            // Stages that still hold their VC (the next stage has not seen
            // the tail yet) must agree with the VC-side accounting.
            for (i, stage) in chain.iter().enumerate() {
                let released = match chain.get(i + 1) {
                    Some(next) => next.entered == length,
                    None => self.messages.ejected[id as usize] == length,
                };
                if released {
                    continue;
                }
                let pv = self.pv(stage.port, stage.vc);
                let slot = self.vc_slot[pv];
                if slot as u32 != id
                    || ((slot >> 32) & 0xFFFF) as usize != i
                    || (slot >> 48) as u32 != self.messages.length[id as usize] - stage.entered
                    || cnt_occ(self.vc_cnt[pv]) != self.messages.stage_occupancy(id, i) as u64
                {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kncube_traffic::{ArrivalProcess, TrafficPattern};

    fn quiet_config(k: u32) -> SimConfig {
        SimConfig {
            arrivals: ArrivalProcess::Poisson(0.0),
            ..SimConfig::paper_validation(k, 2, 4, 0.0, 0.0, 1)
        }
    }

    /// Inject a single message by hand and run it to completion.  The
    /// dimension count is taken from the coordinate arity of `src`.
    fn single_message_latency(k: u32, src: &[u32], dest: &[u32], lm: u32, v: u32) -> u64 {
        assert_eq!(src.len(), dest.len());
        let mut cfg = quiet_config(k);
        cfg.n = src.len() as u32;
        cfg.message_length = lm;
        cfg.virtual_channels = v;
        let topo = cfg.topology().unwrap();
        let mut sim = Simulator::new(cfg).unwrap();
        let src = topo.node_at(src);
        let dest = topo.node_at(dest);
        let id = sim.messages.insert(NewMessage {
            src,
            dest,
            class: MessageClass::Regular,
            length: lm,
            birth: 0,
            measured: false,
        });
        let inj = sim.inj_port(src);
        sim.enqueue_request(id, inj, 0);
        for _ in 0..10_000 {
            sim.step();
            assert!(sim.flit_conservation_check());
            if !sim.messages.live[id as usize] {
                // Completed during the previous cycle; latency recorded at
                // completion time = cycle - 1 (step increments afterwards).
                return sim.cycle();
            }
        }
        panic!("message did not complete");
    }

    #[test]
    fn zero_load_single_hop_latency() {
        // 1 network hop: inject (1 cycle) + hop (1 cycle) + Lm ejection
        // cycles. Completion observed the cycle after the tail ejects.
        let done_by = single_message_latency(4, &[0, 0], &[1, 0], 4, 2);
        // Tail ejects at cycle d + Lm = 1 + 4 = 5 → observed at cycle 6.
        assert_eq!(done_by, 6);
    }

    #[test]
    fn zero_load_latency_scales_with_distance_and_length() {
        let a = single_message_latency(8, &[0, 0], &[3, 0], 8, 2);
        let b = single_message_latency(8, &[0, 0], &[3, 2], 8, 2);
        assert_eq!(b - a, 2, "two extra hops cost two cycles");
        let c = single_message_latency(8, &[0, 0], &[3, 2], 16, 2);
        assert_eq!(c - b, 8, "eight extra flits cost eight cycles");
    }

    #[test]
    fn zero_load_latency_in_three_dimensions() {
        // The flit pipeline is dimension-agnostic: a 3-D route costs its
        // total hop count exactly as a 2-D route does.  4 hops + Lm = 8
        // drain cycles, observed one cycle after the tail ejects, plus the
        // injection cycle.
        let l2 = single_message_latency(4, &[0, 0], &[2, 2], 8, 2);
        let l3 = single_message_latency(4, &[0, 0, 0], &[2, 2, 0], 8, 2);
        assert_eq!(l2, l3, "same hop count must cost the same in 2-D and 3-D");
        let extra = single_message_latency(4, &[0, 0, 0], &[2, 2, 3], 8, 2);
        assert_eq!(
            extra - l3,
            3,
            "three extra dimension-2 hops cost three cycles"
        );
    }

    #[test]
    fn hypercube_dimension_traversal() {
        // 2-ary 4-cube: a route flipping every coordinate crosses n
        // channels (one per dimension, no wrap-around class pressure).
        let all = single_message_latency(2, &[0, 0, 0, 0], &[1, 1, 1, 1], 4, 2);
        let one = single_message_latency(2, &[0, 0, 0, 0], &[1, 0, 0, 0], 4, 2);
        assert_eq!(all - one, 3, "each additional dimension costs one hop");
    }

    #[test]
    fn wraparound_routes_complete() {
        // Forced wrap in both dimensions (unidirectional ring 3→1 wraps).
        let l = single_message_latency(4, &[3, 3], &[1, 1], 4, 2);
        assert_eq!(l, 4 + 4 + 1); // d hops + Lm drain, observed a cycle later
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg =
            SimConfig::paper_validation(8, 2, 16, 5e-3, 0.3, 1234).with_limits(30_000, 2_000, 0);
        let a = Simulator::new(cfg).unwrap().run();
        let b = Simulator::new(cfg).unwrap().run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_latency, b.mean_latency);
        assert_eq!(a.generated, b.generated);
    }

    #[test]
    fn different_seeds_differ() {
        let base =
            SimConfig::paper_validation(8, 2, 16, 5e-3, 0.3, 1).with_limits(30_000, 2_000, 0);
        let a = Simulator::new(base).unwrap().run();
        let b = Simulator::new(SimConfig { seed: 2, ..base }).unwrap().run();
        assert_ne!(a.mean_latency, b.mean_latency);
    }

    #[test]
    fn conservation_under_load() {
        let cfg = SimConfig {
            pattern: TrafficPattern::HotSpot {
                h: 0.5,
                hot: NodeId(5),
            },
            arrivals: ArrivalProcess::Poisson(0.02),
            ..SimConfig::paper_validation(4, 2, 8, 0.02, 0.5, 7)
        };
        let mut sim = Simulator::new(cfg).unwrap();
        for _ in 0..5_000 {
            sim.step();
            if sim.cycle().is_multiple_of(64) {
                assert!(sim.flit_conservation_check());
            }
        }
        assert!(sim.in_flight() < 5_000, "network must not leak messages");
    }

    #[test]
    fn no_deadlock_under_heavy_wrap_traffic() {
        // Tornado-like stress: heavy load with wrapping routes on a small
        // torus exercises the Dally-Seitz classes hard.
        let cfg = SimConfig {
            pattern: TrafficPattern::Tornado,
            arrivals: ArrivalProcess::Poisson(0.05),
            ..SimConfig::paper_validation(4, 2, 8, 0.05, 0.0, 99)
        }
        .with_limits(60_000, 1_000, 0);
        let report = Simulator::new(cfg).unwrap().run();
        assert!(!report.deadlocked, "deadlock detected");
        assert!(report.completed > 1_000);
    }

    #[test]
    fn no_deadlock_in_three_dimensions_under_hot_spot_load() {
        // The Dally-Seitz class discipline must hold per ring in every
        // dimension; a 4-ary 3-cube under hot-spot traffic exercises the
        // funnel through all three dimensions' hot rings.
        let cfg = SimConfig::ncube(4, 3, 2, 8, 0.01, 0.4, 17).with_limits(80_000, 5_000, 4_000);
        let report = Simulator::new(cfg).unwrap().run();
        assert!(!report.deadlocked, "deadlock in the 3-D cube");
        assert!(!report.saturated);
        assert!(report.completed_hot > 0, "hot-spot messages must arrive");
    }

    #[test]
    fn conservation_in_three_dimensions() {
        let cfg = SimConfig {
            pattern: TrafficPattern::HotSpot {
                h: 0.5,
                hot: NodeId(13),
            },
            ..SimConfig::ncube(3, 3, 2, 8, 0.02, 0.5, 29)
        };
        let mut sim = Simulator::new(cfg).unwrap();
        for _ in 0..5_000 {
            sim.step();
            if sim.cycle().is_multiple_of(64) {
                assert!(sim.flit_conservation_check());
            }
        }
        assert!(
            sim.in_flight() < 5_000,
            "3-D network must not leak messages"
        );
    }

    #[test]
    fn v1_on_a_ring_with_wrap_would_deadlock_watchdog_fires_or_completes() {
        // With V=1 the torus is not deadlock-free in general; the watchdog
        // must catch a deadlock rather than hang. (At this tiny load the
        // run may also complete without ever forming a cycle — both
        // outcomes are acceptable; what is not acceptable is an infinite
        // loop, which the cycle bound prevents.)
        let cfg = SimConfig {
            virtual_channels: 1,
            pattern: TrafficPattern::Tornado,
            arrivals: ArrivalProcess::Poisson(0.1),
            ..SimConfig::paper_validation(4, 1, 8, 0.1, 0.0, 3)
        }
        .with_limits(100_000, 1_000, 0);
        let report = Simulator::new(cfg).unwrap().run();
        assert!(report.deadlocked || report.completed > 0);
    }

    #[test]
    fn hot_spot_messages_arrive_at_hot_node() {
        let hot = NodeId(9);
        let cfg = SimConfig {
            pattern: TrafficPattern::HotSpot { h: 1.0, hot },
            arrivals: ArrivalProcess::Poisson(0.001),
            ..SimConfig::paper_validation(4, 2, 8, 0.001, 1.0, 5)
        }
        .with_limits(50_000, 0, 500);
        let report = Simulator::new(cfg).unwrap().run();
        assert!(report.completed_hot > 0);
        // With h = 1 every non-hot-node message is hot-spot class.
        assert!(report.completed_hot as f64 / report.completed as f64 > 0.9);
    }

    #[test]
    fn shared_ejection_is_slower_at_the_hot_node() {
        let mk = |policy| {
            let cfg = SimConfig {
                ejection: policy,
                ..SimConfig::paper_validation(8, 2, 32, 3e-3, 0.4, 11)
            }
            .with_limits(150_000, 10_000, 5_000);
            Simulator::new(cfg).unwrap().run()
        };
        let sink = mk(EjectionPolicy::PerMessageSink);
        let shared = mk(EjectionPolicy::SharedChannel);
        assert!(
            shared.mean_latency >= sink.mean_latency,
            "shared ejection cannot be faster: {} vs {}",
            shared.mean_latency,
            sink.mean_latency
        );
    }

    #[test]
    fn buffer_depth_one_halves_throughput() {
        let mk = |depth| {
            let cfg = SimConfig {
                buffer_depth: depth,
                ..SimConfig::paper_validation(8, 2, 32, 2e-3, 0.0, 21)
            }
            .with_limits(80_000, 5_000, 3_000);
            Simulator::new(cfg).unwrap().run()
        };
        let d2 = mk(2);
        let d1 = mk(1);
        // Depth 1 stalls every other cycle once a chain backs up, so the
        // same offered load shows clearly higher latency.
        assert!(d1.mean_latency > d2.mean_latency);
    }

    #[test]
    fn saturation_detected_past_capacity() {
        // Far past the hot-channel flit bound: queues must blow up.
        let cfg = SimConfig {
            max_source_queue: 200,
            ..SimConfig::paper_validation(8, 2, 32, 0.02, 0.7, 13)
        }
        .with_limits(400_000, 10_000, 0);
        let report = Simulator::new(cfg).unwrap().run();
        assert!(report.saturated, "expected saturation flag");
    }
}
