//! The cycle-based simulation engine.
//!
//! # Resources
//!
//! Ports are the transmitting resources, one flit per cycle each:
//!
//! * **network channels** — flat indices `0..C` (from `kncube-topology`'s
//!   channel ids);
//! * **injection ports** — indices `C..C+N`, one per node, carrying flits
//!   from the infinite source queue into the local router;
//! * **ejection** is not a port: per the ejection policy, arrived messages
//!   drain one flit per cycle each (default) or share one per-node sink.
//!
//! Each port multiplexes `V` virtual channels, each with a `buffer_depth`
//! flit buffer at the receiving side.  Buffer accounting distinguishes
//! flits present *since the cycle start* (eligible to move on) from flits
//! that arrived this cycle, so a flit crosses at most one channel per cycle
//! regardless of port processing order; space admits a flit when the
//! *start-of-cycle* occupancy is below capacity, modelling the one-cycle
//! credit loop.  Depth 2 (the default) therefore sustains the full one
//! flit/cycle pipeline the paper's model assumes; depth 1 halves it.
//!
//! # Cycle phases
//!
//! 1. **generate** — Poisson sources emit messages into source queues and
//!    the injection-port allocation queues;
//! 2. **allocate** — free virtual channels are granted to the FIFO of
//!    waiting headers, per Dally–Seitz class on network ports;
//! 3. **move** — every active port transfers at most one flit, arbitrating
//!    round-robin over its virtual channels; headers that land pick their
//!    next hop (dimension-order) or start ejecting;
//! 4. **eject/complete** — draining messages deliver flits; completed
//!    messages are retired into the statistics.
//!
//! All four phases are deterministic; a run is a pure function of its
//! configuration (including the seed).

use crate::config::{EjectionPolicy, SimConfig, SimConfigError};
use crate::message::{ChainStage, HeadState, Message, MsgId};
use crate::report::SimReport;
use crate::stats::{BatchMeans, StreamingStats};
use kncube_topology::{Channel, ChannelId, KAryNCube, NodeId, VcClass};
use kncube_traffic::{GeneratedMessage, MessageClass, NodeWorkload, WorkloadConfig};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A virtual channel and its receive buffer.
#[derive(Clone, Debug, Default)]
struct Vc {
    /// Message currently holding this VC.
    msg: Option<MsgId>,
    /// Index of this VC's stage within the holder's chain.
    stage: u32,
    /// Flits currently buffered.
    occ: u32,
    /// Flits that arrived this cycle (not yet eligible to move on).
    arrived: u32,
    /// Flits that departed this cycle (their space frees next cycle).
    departed: u32,
}

impl Vc {
    /// Flits present since the cycle start (eligible to leave).
    #[inline]
    fn ready(&self) -> u32 {
        self.occ - self.arrived
    }

    /// Occupancy at the start of the cycle (governs admission).
    #[inline]
    fn occ_at_cycle_start(&self) -> u32 {
        self.occ - self.arrived + self.departed
    }
}

/// One transmitting port (network channel or injection port).
#[derive(Clone, Debug)]
struct Port {
    vcs: Vec<Vc>,
    /// FIFO of headers waiting for a VC, per Dally–Seitz class
    /// (injection ports use class 0 only).
    waiting: [VecDeque<MsgId>; 2],
    /// Round-robin cursor over VCs.
    rr: u32,
    /// Allocated VCs (kept incrementally; drives the active list and the
    /// multiplexing measurement).
    busy: u32,
    /// Flits transferred (total, for utilization statistics).
    flits: u64,
    in_active: bool,
    in_pending: bool,
}

impl Port {
    fn new(v: u32) -> Self {
        Port {
            vcs: vec![Vc::default(); v as usize],
            waiting: [VecDeque::new(), VecDeque::new()],
            rr: 0,
            busy: 0,
            flits: 0,
            in_active: false,
            in_pending: false,
        }
    }
}

/// Message slab with free-list reuse.
#[derive(Default)]
struct Slab {
    entries: Vec<Option<Message>>,
    free: Vec<MsgId>,
}

impl Slab {
    fn insert(&mut self, m: Message) -> MsgId {
        if let Some(id) = self.free.pop() {
            self.entries[id as usize] = Some(m);
            id
        } else {
            self.entries.push(Some(m));
            (self.entries.len() - 1) as MsgId
        }
    }
    fn get(&self, id: MsgId) -> &Message {
        self.entries[id as usize].as_ref().expect("live message")
    }
    fn get_mut(&mut self, id: MsgId) -> &mut Message {
        self.entries[id as usize].as_mut().expect("live message")
    }
    fn remove(&mut self, id: MsgId) -> Message {
        let m = self.entries[id as usize].take().expect("live message");
        self.free.push(id);
        m
    }
    fn live(&self) -> usize {
        self.entries.len() - self.free.len()
    }
}

/// The simulator.
pub struct Simulator {
    config: SimConfig,
    topo: KAryNCube,
    ports: Vec<Port>,
    /// First injection-port index (= number of network channels).
    inj_base: u32,
    messages: Slab,
    workloads: Vec<NodeWorkload>,
    /// Min-heap of (next arrival cycle, node) — generation only touches
    /// nodes that actually have an arrival due, and lets the run loop
    /// fast-forward across fully idle stretches.
    arrival_heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Ports with at least one allocated VC.
    active: Vec<u32>,
    /// Ports with waiting headers that may be grantable.
    pending_alloc: Vec<u32>,
    /// Buffers touched this cycle (for resetting per-cycle counters).
    touched: Vec<(u32, u32)>,
    /// Messages draining at their destination.
    ejecting: Vec<MsgId>,
    /// Scratch buffer for generated messages.
    gen_scratch: Vec<GeneratedMessage>,
    cycle: u64,
    last_progress: u64,
    // --- statistics ---
    generated: u64,
    completed_measured: u64,
    latency_all: StreamingStats,
    latency_regular: StreamingStats,
    latency_hot: StreamingStats,
    batches: BatchMeans,
    /// Σv over busy network channels and cycles (v = busy VCs).
    vbar_sum_v: f64,
    /// Σv² over the same — Dally's V̄ is the flit-weighted ratio Σv²/Σv.
    vbar_sum_v2: f64,
    measured_flits_ejected: u64,
    max_queue_seen: usize,
    saturated: bool,
    deadlocked: bool,
}

/// Size of the High VC class: `ceil(V/2)` (the rest are Low).
fn high_class_size(v: u32) -> u32 {
    v.div_ceil(2)
}

impl Simulator {
    /// Build a simulator for `config`.
    pub fn new(config: SimConfig) -> Result<Self, SimConfigError> {
        config.validate()?;
        let topo = config.topology()?;
        let n_nodes = topo.num_nodes();
        let n_channels = topo.num_channels();
        let ports = (0..n_channels + n_nodes)
            .map(|_| Port::new(config.virtual_channels))
            .collect();
        let wl_config = WorkloadConfig {
            arrivals: config.arrivals,
            pattern: config.pattern,
            message_length: config.message_length,
            seed: config.seed,
        };
        let workloads: Vec<NodeWorkload> = topo
            .nodes()
            .map(|node| NodeWorkload::new(node, wl_config))
            .collect();
        let arrival_heap = workloads
            .iter()
            .filter_map(|wl| wl.next_arrival_cycle().map(|c| Reverse((c, wl.node().0))))
            .collect();
        let per_batch = if config.target_messages > 0 {
            (config.target_messages / config.batches as u64).max(1)
        } else {
            1_000
        };
        Ok(Simulator {
            config,
            topo,
            ports,
            inj_base: n_channels,
            messages: Slab::default(),
            workloads,
            arrival_heap,
            active: Vec::new(),
            pending_alloc: Vec::new(),
            touched: Vec::new(),
            ejecting: Vec::new(),
            gen_scratch: Vec::new(),
            cycle: 0,
            last_progress: 0,
            generated: 0,
            completed_measured: 0,
            latency_all: StreamingStats::new(),
            latency_regular: StreamingStats::new(),
            latency_hot: StreamingStats::new(),
            batches: BatchMeans::new(config.batches, per_batch),
            vbar_sum_v: 0.0,
            vbar_sum_v2: 0.0,
            measured_flits_ejected: 0,
            max_queue_seen: 0,
            saturated: false,
            deadlocked: false,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Messages currently in flight (including source queues).
    pub fn in_flight(&self) -> usize {
        self.messages.live()
    }

    /// The injection-port index of `node`.
    fn inj_port(&self, node: NodeId) -> u32 {
        self.inj_base + node.0
    }

    /// The node that receives flits crossing `port`.
    fn port_sink(&self, port: u32) -> NodeId {
        if port >= self.inj_base {
            NodeId(port - self.inj_base)
        } else {
            Channel::from_id(&self.topo, ChannelId(port)).to(&self.topo)
        }
    }

    /// VC indices `[lo, hi)` of `class` on a network port.
    fn class_range(&self, class: usize) -> (u32, u32) {
        let v = self.config.virtual_channels;
        let high = high_class_size(v);
        if class == 0 {
            (0, high)
        } else {
            (high, v)
        }
    }

    // ------------------------------------------------------------------
    // Phase 1: generation
    // ------------------------------------------------------------------

    fn generate(&mut self) {
        let mut scratch = std::mem::take(&mut self.gen_scratch);
        scratch.clear();
        while let Some(&Reverse((due, node))) = self.arrival_heap.peek() {
            debug_assert!(due >= self.cycle, "skipped past an arrival");
            if due != self.cycle {
                break;
            }
            self.arrival_heap.pop();
            let wl = &mut self.workloads[node as usize];
            wl.generate_into(&self.topo, self.cycle, &mut scratch);
            if let Some(next) = wl.next_arrival_cycle() {
                self.arrival_heap.push(Reverse((next, node)));
            }
        }
        for gm in scratch.drain(..) {
            let measured = gm.birth_cycle >= self.config.warmup_cycles;
            let id = self.messages.insert(Message {
                src: gm.src,
                dest: gm.dest,
                class: gm.class,
                length: gm.length,
                birth: gm.birth_cycle,
                measured,
                chain: Vec::with_capacity(8),
                ejected: 0,
                head: HeadState::WaitingFor {
                    port: self.inj_port(gm.src),
                },
            });
            self.generated += 1;
            let port = self.inj_port(gm.src);
            self.enqueue_request(id, port, 0);
        }
        self.gen_scratch = scratch;
    }

    fn enqueue_request(&mut self, id: MsgId, port: u32, class: usize) {
        self.ports[port as usize].waiting[class].push_back(id);
        self.messages.get_mut(id).head = HeadState::WaitingFor { port };
        if !self.ports[port as usize].in_pending {
            self.ports[port as usize].in_pending = true;
            self.pending_alloc.push(port);
        }
    }

    // ------------------------------------------------------------------
    // Phase 2: virtual-channel allocation
    // ------------------------------------------------------------------

    fn allocate(&mut self) {
        let mut pending = std::mem::take(&mut self.pending_alloc);
        let mut still_pending = Vec::with_capacity(pending.len());
        for port_idx in pending.drain(..) {
            let is_injection = port_idx >= self.inj_base;
            for class in 0..2 {
                let (lo, hi) = if is_injection {
                    (0, self.config.virtual_channels)
                } else {
                    self.class_range(class)
                };
                while !self.ports[port_idx as usize].waiting[class].is_empty() {
                    let Some(vc_idx) = (lo..hi)
                        .find(|&v| self.ports[port_idx as usize].vcs[v as usize].msg.is_none())
                    else {
                        break;
                    };
                    let id = self.ports[port_idx as usize].waiting[class]
                        .pop_front()
                        .expect("non-empty checked");
                    self.grant(id, port_idx, vc_idx);
                }
                if is_injection {
                    break; // injection uses class 0 only
                }
            }
            let port = &mut self.ports[port_idx as usize];
            if port.waiting.iter().any(|q| !q.is_empty()) {
                // Still blocked on a busy class; re-examined when a VC of
                // this port frees.
                still_pending.push(port_idx);
            } else {
                port.in_pending = false;
            }
        }
        // Re-set flags for carried-over entries (they stayed pending).
        for &p in &still_pending {
            self.ports[p as usize].in_pending = true;
        }
        self.pending_alloc = still_pending;
    }

    fn grant(&mut self, id: MsgId, port_idx: u32, vc_idx: u32) {
        let msg = self.messages.get_mut(id);
        let stage = msg.chain.len() as u32;
        msg.chain.push(ChainStage {
            port: port_idx,
            vc: vc_idx,
            entered: 0,
        });
        msg.head = HeadState::Crossing;
        let port = &mut self.ports[port_idx as usize];
        let vc = &mut port.vcs[vc_idx as usize];
        debug_assert!(vc.msg.is_none());
        vc.msg = Some(id);
        vc.stage = stage;
        port.busy += 1;
        if !port.in_active {
            port.in_active = true;
            self.active.push(port_idx);
        }
    }

    /// Free the VC of `stage` (its buffer must be empty).
    fn free_vc(&mut self, stage: ChainStage) {
        let port = &mut self.ports[stage.port as usize];
        let vc = &mut port.vcs[stage.vc as usize];
        debug_assert_eq!(vc.occ, 0);
        vc.msg = None;
        port.busy -= 1;
        if port.waiting.iter().any(|q| !q.is_empty()) && !port.in_pending {
            port.in_pending = true;
            self.pending_alloc.push(stage.port);
        }
    }

    // ------------------------------------------------------------------
    // Phase 3: flit movement
    // ------------------------------------------------------------------

    fn move_flits(&mut self) {
        let cap = self.config.buffer_depth;
        // Iterate a snapshot: ports becoming active this cycle (they can't
        // move flits yet anyway — their buffers' flits arrive this cycle)
        // are picked up next cycle.
        let mut idx = 0;
        while idx < self.active.len() {
            let port_idx = self.active[idx];
            idx += 1;
            let v = self.ports[port_idx as usize].vcs.len() as u32;
            let rr = self.ports[port_idx as usize].rr;
            for off in 0..v {
                let vc_idx = (rr + off) % v;
                if self.try_move(port_idx, vc_idx, cap) {
                    self.ports[port_idx as usize].rr = (vc_idx + 1) % v;
                    break;
                }
            }
        }
    }

    /// Attempt to move one flit of the message on `(port, vc)` across the
    /// port; returns whether a flit moved.
    fn try_move(&mut self, port_idx: u32, vc_idx: u32, cap: u32) -> bool {
        let Some(id) = self.ports[port_idx as usize].vcs[vc_idx as usize].msg else {
            return false;
        };
        let stage_idx = self.ports[port_idx as usize].vcs[vc_idx as usize].stage as usize;
        let msg = self.messages.get(id);
        let stage = msg.chain[stage_idx];
        debug_assert_eq!((stage.port, stage.vc), (port_idx, vc_idx));
        if stage.entered >= msg.length {
            return false; // fully transferred; waiting for downstream drain
        }
        // Upstream flit available since cycle start?
        if stage_idx == 0 {
            // Source queue: all not-yet-injected flits are available.
            debug_assert!(msg.flits_at_source() > 0);
        } else {
            let prev = msg.chain[stage_idx - 1];
            let prev_vc = &self.ports[prev.port as usize].vcs[prev.vc as usize];
            debug_assert_eq!(prev_vc.msg, Some(id));
            if prev_vc.ready() == 0 {
                return false;
            }
        }
        // Space in this VC's buffer (start-of-cycle occupancy rule)?
        {
            let vc = &self.ports[port_idx as usize].vcs[vc_idx as usize];
            if vc.occ_at_cycle_start() >= cap {
                return false;
            }
        }
        // --- Commit the move.
        let msg = self.messages.get_mut(id);
        msg.chain[stage_idx].entered += 1;
        let entered = msg.chain[stage_idx].entered;
        let length = msg.length;
        let is_head_arrival = entered == 1 && stage_idx + 1 == msg.chain.len();
        let prev_stage = if stage_idx > 0 {
            Some(msg.chain[stage_idx - 1])
        } else {
            None
        };
        {
            let vc = &mut self.ports[port_idx as usize].vcs[vc_idx as usize];
            vc.occ += 1;
            vc.arrived += 1;
        }
        self.touched.push((port_idx, vc_idx));
        self.ports[port_idx as usize].flits += 1;
        if let Some(prev) = prev_stage {
            let prev_vc = &mut self.ports[prev.port as usize].vcs[prev.vc as usize];
            prev_vc.occ -= 1;
            prev_vc.departed += 1;
            self.touched.push((prev.port, prev.vc));
            if entered == length {
                // The tail just left the previous stage: release it.
                self.free_vc(prev);
            }
        }
        self.last_progress = self.cycle;
        if is_head_arrival {
            self.on_head_arrival(id, port_idx);
        }
        true
    }

    /// The header landed in the buffer at the sink of `port`: route it.
    fn on_head_arrival(&mut self, id: MsgId, port_idx: u32) {
        let node = self.port_sink(port_idx);
        let dest = self.messages.get(id).dest;
        if node == dest {
            self.messages.get_mut(id).head = HeadState::Ejecting;
            self.ejecting.push(id);
            return;
        }
        let hop = self
            .topo
            .dor_next_hop(node, dest)
            .expect("not at destination");
        let next_port = hop.channel.id(&self.topo).0;
        let class = match hop.vc_class {
            VcClass::High => 0,
            VcClass::Low => 1,
        };
        self.enqueue_request(id, next_port, class);
    }

    // ------------------------------------------------------------------
    // Phase 4: ejection & completion
    // ------------------------------------------------------------------

    fn eject(&mut self) {
        match self.config.ejection {
            EjectionPolicy::PerMessageSink => {
                let mut i = 0;
                while i < self.ejecting.len() {
                    let id = self.ejecting[i];
                    if self.try_eject_one(id) && self.messages.get(id).is_delivered() {
                        self.complete(id);
                        self.ejecting.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
            }
            EjectionPolicy::SharedChannel => {
                // One flit per node per cycle: group by destination and
                // serve round-robin by rotating the ejecting list.
                let mut served: Vec<NodeId> = Vec::new();
                let mut i = 0;
                while i < self.ejecting.len() {
                    let id = self.ejecting[i];
                    let dest = self.messages.get(id).dest;
                    if served.contains(&dest) {
                        i += 1;
                        continue;
                    }
                    if self.try_eject_one(id) {
                        served.push(dest);
                        if self.messages.get(id).is_delivered() {
                            self.complete(id);
                            self.ejecting.swap_remove(i);
                            continue;
                        }
                        // Rotate: move to the back so co-located messages
                        // alternate fairly across cycles.
                        let m = self.ejecting.remove(i);
                        self.ejecting.push(m);
                        continue;
                    }
                    i += 1;
                }
            }
        }
    }

    /// Deliver one flit of `id` to the PE if one is ready.
    fn try_eject_one(&mut self, id: MsgId) -> bool {
        let msg = self.messages.get(id);
        let last = *msg.chain.last().expect("ejecting message has a chain");
        let measured = msg.measured;
        let ready = self.ports[last.port as usize].vcs[last.vc as usize].ready();
        if ready == 0 {
            return false;
        }
        {
            let vc = &mut self.ports[last.port as usize].vcs[last.vc as usize];
            vc.occ -= 1;
            vc.departed += 1;
        }
        self.touched.push((last.port, last.vc));
        let msg = self.messages.get_mut(id);
        msg.ejected += 1;
        if measured {
            self.measured_flits_ejected += 1;
        }
        self.last_progress = self.cycle;
        if self.messages.get(id).is_delivered() {
            self.free_vc(last);
        }
        true
    }

    fn complete(&mut self, id: MsgId) {
        let msg = self.messages.remove(id);
        debug_assert!(msg.is_delivered());
        if msg.measured {
            let latency = msg.latency_at(self.cycle) as f64;
            self.completed_measured += 1;
            self.latency_all.push(latency);
            self.batches.push(latency);
            match msg.class {
                MessageClass::Regular => self.latency_regular.push(latency),
                MessageClass::HotSpot => self.latency_hot.push(latency),
            }
        }
    }

    // ------------------------------------------------------------------
    // Cycle driver
    // ------------------------------------------------------------------

    /// Advance the simulation by one cycle.
    pub fn step(&mut self) {
        // Reset per-cycle buffer accounting from the previous cycle.
        for (p, v) in self.touched.drain(..) {
            let vc = &mut self.ports[p as usize].vcs[v as usize];
            vc.arrived = 0;
            vc.departed = 0;
        }
        self.generate();
        self.allocate();
        self.move_flits();
        self.eject();
        // Multiplexing measurement (after warm-up): average busy VCs over
        // busy physical channels, the quantity Eqs. (33)-(35) model.
        if self.cycle >= self.config.warmup_cycles {
            for &p in &self.active {
                let busy = self.ports[p as usize].busy;
                if busy > 0 && p < self.inj_base {
                    self.vbar_sum_v += busy as f64;
                    self.vbar_sum_v2 += (busy * busy) as f64;
                }
            }
        }
        // Compact the active list.
        self.active.retain(|&p| {
            let port = &mut self.ports[p as usize];
            if port.busy == 0 {
                port.in_active = false;
                false
            } else {
                true
            }
        });
        self.cycle += 1;
    }

    /// Periodic health checks; returns false when the run should stop.
    fn healthy(&mut self) -> bool {
        if self.config.max_source_queue > 0 {
            let worst = (self.inj_base..self.inj_base + self.topo.num_nodes())
                .map(|p| {
                    self.ports[p as usize]
                        .waiting
                        .iter()
                        .map(VecDeque::len)
                        .sum::<usize>()
                })
                .max()
                .unwrap_or(0);
            self.max_queue_seen = self.max_queue_seen.max(worst);
            if worst > self.config.max_source_queue {
                self.saturated = true;
                return false;
            }
        }
        // Deadlock watchdog: in-flight messages but no flit movement for a
        // long stretch cannot happen in a correct deadlock-free network.
        if self.messages.live() > 0
            && self.cycle - self.last_progress > 10_000 + 100 * self.config.message_length as u64
        {
            self.deadlocked = true;
            return false;
        }
        true
    }

    /// Run to completion (max cycles, message target, or failure) and
    /// report.
    pub fn run(mut self) -> SimReport {
        while self.cycle < self.config.max_cycles {
            // Fast-forward across fully idle stretches: with nothing in
            // flight, nothing can happen until the next arrival.
            if self.messages.live() == 0 {
                match self.arrival_heap.peek() {
                    Some(&Reverse((next, _))) if next > self.cycle => {
                        self.cycle = next.min(self.config.max_cycles);
                        self.last_progress = self.cycle;
                        if self.cycle == self.config.max_cycles {
                            break;
                        }
                    }
                    Some(_) => {}
                    None => {
                        // No further arrivals, ever.
                        self.cycle = self.config.max_cycles;
                        break;
                    }
                }
            }
            self.step();
            if self.cycle.is_multiple_of(1024) {
                if !self.healthy() {
                    break;
                }
                if self.config.target_messages > 0
                    && self.completed_measured >= self.config.target_messages
                {
                    break;
                }
            }
        }
        self.into_report()
    }

    /// Produce the report for the cycles simulated so far.
    pub fn into_report(self) -> SimReport {
        let measured_cycles = self.cycle.saturating_sub(self.config.warmup_cycles);
        let n = self.topo.num_nodes() as f64;
        SimReport {
            mean_latency: self.latency_all.mean(),
            ci_half_width: self.batches.confidence_half_width(),
            latency_std_dev: self.latency_all.std_dev(),
            max_latency: self.latency_all.max(),
            completed: self.completed_measured,
            completed_regular: self.latency_regular.count(),
            completed_hot: self.latency_hot.count(),
            mean_latency_regular: self.latency_regular.mean(),
            mean_latency_hot: self.latency_hot.mean(),
            generated: self.generated,
            cycles: self.cycle,
            throughput: if measured_cycles > 0 {
                self.completed_measured as f64 / measured_cycles as f64 / n
            } else {
                0.0
            },
            offered_load: self.config.arrivals.rate(),
            vbar_measured: if self.vbar_sum_v > 0.0 {
                self.vbar_sum_v2 / self.vbar_sum_v
            } else {
                1.0
            },
            max_source_queue: self.max_queue_seen,
            in_flight_at_end: self.messages.live() as u64,
            saturated: self.saturated,
            deadlocked: self.deadlocked,
        }
    }

    // ------------------------------------------------------------------
    // Inspection hooks
    // ------------------------------------------------------------------

    /// Flits transferred so far by the network channel `channel`
    /// (injection ports excluded).  Dividing by the elapsed cycles gives
    /// the channel's flit utilization, whose message-rate counterpart is
    /// exactly what Eqs. (3)-(9) predict — the rate-equation validation
    /// tests use this hook.
    pub fn channel_flits(&self, channel: kncube_topology::ChannelId) -> u64 {
        assert!(channel.0 < self.inj_base, "network channels only");
        self.ports[channel.index()].flits
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &KAryNCube {
        &self.topo
    }

    /// Total flits currently buffered anywhere in the network, plus flits
    /// still at sources and flits delivered — must always equal
    /// `Σ length` over live messages plus delivered flits (conservation).
    pub fn flit_conservation_check(&self) -> bool {
        for (id, entry) in self.messages.entries.iter().enumerate() {
            let Some(entry) = entry else { continue };
            let mut accounted = entry.flits_at_source() + entry.ejected;
            for i in 0..entry.chain.len() {
                accounted += entry.stage_occupancy(i);
            }
            if accounted != entry.length {
                return false;
            }
            // Per-stage entered counts must be monotone along the chain.
            for w in entry.chain.windows(2) {
                if w[1].entered > w[0].entered {
                    return false;
                }
            }
            // Stages that still hold their VC (the next stage has not seen
            // the tail yet) must agree with the VC-side accounting.
            for (i, stage) in entry.chain.iter().enumerate() {
                let released = match entry.chain.get(i + 1) {
                    Some(next) => next.entered == entry.length,
                    None => entry.ejected == entry.length,
                };
                if released {
                    continue;
                }
                let vc = &self.ports[stage.port as usize].vcs[stage.vc as usize];
                if vc.msg != Some(id as MsgId)
                    || vc.stage as usize != i
                    || vc.occ != entry.stage_occupancy(i)
                {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kncube_traffic::{ArrivalProcess, TrafficPattern};

    fn quiet_config(k: u32) -> SimConfig {
        SimConfig {
            arrivals: ArrivalProcess::Poisson(0.0),
            ..SimConfig::paper_validation(k, 2, 4, 0.0, 0.0, 1)
        }
    }

    /// Inject a single message by hand and run it to completion.  The
    /// dimension count is taken from the coordinate arity of `src`.
    fn single_message_latency(k: u32, src: &[u32], dest: &[u32], lm: u32, v: u32) -> u64 {
        assert_eq!(src.len(), dest.len());
        let mut cfg = quiet_config(k);
        cfg.n = src.len() as u32;
        cfg.message_length = lm;
        cfg.virtual_channels = v;
        let topo = cfg.topology().unwrap();
        let mut sim = Simulator::new(cfg).unwrap();
        let src = topo.node_at(src);
        let dest = topo.node_at(dest);
        let id = sim.messages.insert(Message {
            src,
            dest,
            class: MessageClass::Regular,
            length: lm,
            birth: 0,
            measured: false,
            chain: Vec::new(),
            ejected: 0,
            head: HeadState::WaitingFor { port: 0 },
        });
        let inj = sim.inj_port(src);
        sim.enqueue_request(id, inj, 0);
        for _ in 0..10_000 {
            sim.step();
            assert!(sim.flit_conservation_check());
            if sim.messages.entries[id as usize].is_none() {
                // Completed during the previous cycle; latency recorded at
                // completion time = cycle - 1 (step increments afterwards).
                return sim.cycle();
            }
        }
        panic!("message did not complete");
    }

    #[test]
    fn zero_load_single_hop_latency() {
        // 1 network hop: inject (1 cycle) + hop (1 cycle) + Lm ejection
        // cycles. Completion observed the cycle after the tail ejects.
        let done_by = single_message_latency(4, &[0, 0], &[1, 0], 4, 2);
        // Tail ejects at cycle d + Lm = 1 + 4 = 5 → observed at cycle 6.
        assert_eq!(done_by, 6);
    }

    #[test]
    fn zero_load_latency_scales_with_distance_and_length() {
        let a = single_message_latency(8, &[0, 0], &[3, 0], 8, 2);
        let b = single_message_latency(8, &[0, 0], &[3, 2], 8, 2);
        assert_eq!(b - a, 2, "two extra hops cost two cycles");
        let c = single_message_latency(8, &[0, 0], &[3, 2], 16, 2);
        assert_eq!(c - b, 8, "eight extra flits cost eight cycles");
    }

    #[test]
    fn zero_load_latency_in_three_dimensions() {
        // The flit pipeline is dimension-agnostic: a 3-D route costs its
        // total hop count exactly as a 2-D route does.  4 hops + Lm = 8
        // drain cycles, observed one cycle after the tail ejects, plus the
        // injection cycle.
        let l2 = single_message_latency(4, &[0, 0], &[2, 2], 8, 2);
        let l3 = single_message_latency(4, &[0, 0, 0], &[2, 2, 0], 8, 2);
        assert_eq!(l2, l3, "same hop count must cost the same in 2-D and 3-D");
        let extra = single_message_latency(4, &[0, 0, 0], &[2, 2, 3], 8, 2);
        assert_eq!(
            extra - l3,
            3,
            "three extra dimension-2 hops cost three cycles"
        );
    }

    #[test]
    fn hypercube_dimension_traversal() {
        // 2-ary 4-cube: a route flipping every coordinate crosses n
        // channels (one per dimension, no wrap-around class pressure).
        let all = single_message_latency(2, &[0, 0, 0, 0], &[1, 1, 1, 1], 4, 2);
        let one = single_message_latency(2, &[0, 0, 0, 0], &[1, 0, 0, 0], 4, 2);
        assert_eq!(all - one, 3, "each additional dimension costs one hop");
    }

    #[test]
    fn wraparound_routes_complete() {
        // Forced wrap in both dimensions (unidirectional ring 3→1 wraps).
        let l = single_message_latency(4, &[3, 3], &[1, 1], 4, 2);
        assert_eq!(l, 4 + 4 + 1); // d hops + Lm drain, observed a cycle later
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg =
            SimConfig::paper_validation(8, 2, 16, 5e-3, 0.3, 1234).with_limits(30_000, 2_000, 0);
        let a = Simulator::new(cfg).unwrap().run();
        let b = Simulator::new(cfg).unwrap().run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_latency, b.mean_latency);
        assert_eq!(a.generated, b.generated);
    }

    #[test]
    fn different_seeds_differ() {
        let base =
            SimConfig::paper_validation(8, 2, 16, 5e-3, 0.3, 1).with_limits(30_000, 2_000, 0);
        let a = Simulator::new(base).unwrap().run();
        let b = Simulator::new(SimConfig { seed: 2, ..base }).unwrap().run();
        assert_ne!(a.mean_latency, b.mean_latency);
    }

    #[test]
    fn conservation_under_load() {
        let cfg = SimConfig {
            pattern: TrafficPattern::HotSpot {
                h: 0.5,
                hot: NodeId(5),
            },
            arrivals: ArrivalProcess::Poisson(0.02),
            ..SimConfig::paper_validation(4, 2, 8, 0.02, 0.5, 7)
        };
        let mut sim = Simulator::new(cfg).unwrap();
        for _ in 0..5_000 {
            sim.step();
            if sim.cycle().is_multiple_of(64) {
                assert!(sim.flit_conservation_check());
            }
        }
        assert!(sim.in_flight() < 5_000, "network must not leak messages");
    }

    #[test]
    fn no_deadlock_under_heavy_wrap_traffic() {
        // Tornado-like stress: heavy load with wrapping routes on a small
        // torus exercises the Dally-Seitz classes hard.
        let cfg = SimConfig {
            pattern: TrafficPattern::Tornado,
            arrivals: ArrivalProcess::Poisson(0.05),
            ..SimConfig::paper_validation(4, 2, 8, 0.05, 0.0, 99)
        }
        .with_limits(60_000, 1_000, 0);
        let report = Simulator::new(cfg).unwrap().run();
        assert!(!report.deadlocked, "deadlock detected");
        assert!(report.completed > 1_000);
    }

    #[test]
    fn no_deadlock_in_three_dimensions_under_hot_spot_load() {
        // The Dally-Seitz class discipline must hold per ring in every
        // dimension; a 4-ary 3-cube under hot-spot traffic exercises the
        // funnel through all three dimensions' hot rings.
        let cfg = SimConfig::ncube(4, 3, 2, 8, 0.01, 0.4, 17).with_limits(80_000, 5_000, 4_000);
        let report = Simulator::new(cfg).unwrap().run();
        assert!(!report.deadlocked, "deadlock in the 3-D cube");
        assert!(!report.saturated);
        assert!(report.completed_hot > 0, "hot-spot messages must arrive");
    }

    #[test]
    fn conservation_in_three_dimensions() {
        let cfg = SimConfig {
            pattern: TrafficPattern::HotSpot {
                h: 0.5,
                hot: NodeId(13),
            },
            ..SimConfig::ncube(3, 3, 2, 8, 0.02, 0.5, 29)
        };
        let mut sim = Simulator::new(cfg).unwrap();
        for _ in 0..5_000 {
            sim.step();
            if sim.cycle().is_multiple_of(64) {
                assert!(sim.flit_conservation_check());
            }
        }
        assert!(
            sim.in_flight() < 5_000,
            "3-D network must not leak messages"
        );
    }

    #[test]
    fn v1_on_a_ring_with_wrap_would_deadlock_watchdog_fires_or_completes() {
        // With V=1 the torus is not deadlock-free in general; the watchdog
        // must catch a deadlock rather than hang. (At this tiny load the
        // run may also complete without ever forming a cycle — both
        // outcomes are acceptable; what is not acceptable is an infinite
        // loop, which the cycle bound prevents.)
        let cfg = SimConfig {
            virtual_channels: 1,
            pattern: TrafficPattern::Tornado,
            arrivals: ArrivalProcess::Poisson(0.1),
            ..SimConfig::paper_validation(4, 1, 8, 0.1, 0.0, 3)
        }
        .with_limits(100_000, 1_000, 0);
        let report = Simulator::new(cfg).unwrap().run();
        assert!(report.deadlocked || report.completed > 0);
    }

    #[test]
    fn hot_spot_messages_arrive_at_hot_node() {
        let hot = NodeId(9);
        let cfg = SimConfig {
            pattern: TrafficPattern::HotSpot { h: 1.0, hot },
            arrivals: ArrivalProcess::Poisson(0.001),
            ..SimConfig::paper_validation(4, 2, 8, 0.001, 1.0, 5)
        }
        .with_limits(50_000, 0, 500);
        let report = Simulator::new(cfg).unwrap().run();
        assert!(report.completed_hot > 0);
        // With h = 1 every non-hot-node message is hot-spot class.
        assert!(report.completed_hot as f64 / report.completed as f64 > 0.9);
    }

    #[test]
    fn shared_ejection_is_slower_at_the_hot_node() {
        let mk = |policy| {
            let cfg = SimConfig {
                ejection: policy,
                ..SimConfig::paper_validation(8, 2, 32, 3e-3, 0.4, 11)
            }
            .with_limits(150_000, 10_000, 5_000);
            Simulator::new(cfg).unwrap().run()
        };
        let sink = mk(EjectionPolicy::PerMessageSink);
        let shared = mk(EjectionPolicy::SharedChannel);
        assert!(
            shared.mean_latency >= sink.mean_latency,
            "shared ejection cannot be faster: {} vs {}",
            shared.mean_latency,
            sink.mean_latency
        );
    }

    #[test]
    fn buffer_depth_one_halves_throughput() {
        let mk = |depth| {
            let cfg = SimConfig {
                buffer_depth: depth,
                ..SimConfig::paper_validation(8, 2, 32, 2e-3, 0.0, 21)
            }
            .with_limits(80_000, 5_000, 3_000);
            Simulator::new(cfg).unwrap().run()
        };
        let d2 = mk(2);
        let d1 = mk(1);
        // Depth 1 stalls every other cycle once a chain backs up, so the
        // same offered load shows clearly higher latency.
        assert!(d1.mean_latency > d2.mean_latency);
    }

    #[test]
    fn saturation_detected_past_capacity() {
        // Far past the hot-channel flit bound: queues must blow up.
        let cfg = SimConfig {
            max_source_queue: 200,
            ..SimConfig::paper_validation(8, 2, 32, 0.02, 0.7, 13)
        }
        .with_limits(400_000, 10_000, 0);
        let report = Simulator::new(cfg).unwrap().run();
        assert!(report.saturated, "expected saturation flag");
    }
}
