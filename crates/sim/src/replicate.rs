//! Independent replications, run in parallel.
//!
//! A single run's batch-means interval is only as good as its batch
//! count; independent replications tighten it for free on a multicore
//! host: each replication re-runs the same configuration under a seed
//! derived by [`kncube_traffic::replication_seed`] (replication 0 *is*
//! the master seed), and the per-replication reports are pooled.
//!
//! Determinism is preserved per replication — each run is still a pure
//! function of `(config, derived seed)` — and the pooling is performed on
//! the reports **in replication order**, so the combined result is
//! bit-identical no matter how the replications were scheduled across
//! threads.  [`run_replications`] (rayon) and [`run_replications_serial`]
//! therefore produce identical [`ReplicatedReport`]s; a property test
//! pins this.

use crate::config::{SimConfig, SimConfigError};
use crate::engine::Simulator;
use crate::report::SimReport;
use crate::stats::{BatchMeans, StreamingStats};
use kncube_traffic::replication_seed;
use rayon::prelude::*;

/// Pooled result of `R` independent replications.
#[derive(Clone, Debug)]
pub struct ReplicatedReport {
    /// Per-replication reports, in replication (seed) order.
    pub reports: Vec<SimReport>,
    /// The derived seed of each replication.
    pub seeds: Vec<u64>,
    /// Measured messages completed, over all replications.
    pub completed: u64,
    /// All messages generated, over all replications.
    pub generated: u64,
    /// Total cycles simulated across replications.
    pub cycles: u64,
    /// Pooled mean latency (weighted by per-replication completions).
    pub mean_latency: f64,
    /// Pooled sample standard deviation of the measured latencies.
    pub latency_std_dev: f64,
    /// Largest measured latency across replications.
    pub max_latency: f64,
    /// 95% Student-t confidence half-width of the mean latency computed
    /// across the replication means — the replication analogue of the
    /// single-run batch-means interval (`None` with fewer than two
    /// completing replications).
    pub ci_half_width: Option<f64>,
    /// Mean per-replication throughput (messages per node per cycle).
    pub throughput: f64,
    /// Completion-weighted mean of the measured multiplexing degrees.
    pub vbar_measured: f64,
    /// Any replication hit the saturation guard.
    pub saturated: bool,
    /// Any replication tripped the deadlock watchdog.
    pub deadlocked: bool,
}

/// Pool per-replication reports (in replication order) into a
/// [`ReplicatedReport`].  Shared by the parallel and serial drivers so
/// the two cannot drift apart.
fn combine(reports: Vec<SimReport>, seeds: Vec<u64>) -> ReplicatedReport {
    let mut pooled = StreamingStats::new();
    let mut across = BatchMeans::new(reports.len().max(1) as u32, 1);
    let mut vbar_weighted = 0.0;
    for r in &reports {
        pooled.merge(&StreamingStats::from_moments(
            r.completed,
            r.mean_latency,
            r.latency_std_dev * r.latency_std_dev,
            r.max_latency,
        ));
        if r.completed > 0 {
            across.push(r.mean_latency);
            vbar_weighted += r.vbar_measured * r.completed as f64;
        }
    }
    let n = reports.len().max(1) as f64;
    ReplicatedReport {
        completed: reports.iter().map(|r| r.completed).sum(),
        generated: reports.iter().map(|r| r.generated).sum(),
        cycles: reports.iter().map(|r| r.cycles).sum(),
        mean_latency: pooled.mean(),
        latency_std_dev: pooled.std_dev(),
        max_latency: pooled.max(),
        ci_half_width: across.confidence_half_width(),
        throughput: reports.iter().map(|r| r.throughput).sum::<f64>() / n,
        vbar_measured: if pooled.count() > 0 {
            vbar_weighted / pooled.count() as f64
        } else {
            1.0
        },
        saturated: reports.iter().any(|r| r.saturated),
        deadlocked: reports.iter().any(|r| r.deadlocked),
        reports,
        seeds,
    }
}

/// The configurations of `replications` replications of `base`.
fn replication_configs(
    base: SimConfig,
    replications: u32,
) -> Result<(Vec<SimConfig>, Vec<u64>), SimConfigError> {
    assert!(replications >= 1, "need at least one replication");
    base.validate()?;
    let seeds: Vec<u64> = (0..replications)
        .map(|r| replication_seed(base.seed, r))
        .collect();
    let configs = seeds
        .iter()
        .map(|&seed| SimConfig { seed, ..base })
        .collect();
    Ok((configs, seeds))
}

/// Run `replications` independent replications of `base` in parallel
/// (rayon) and pool the reports.
///
/// Replication `r` runs under `replication_seed(base.seed, r)`;
/// replication 0 is exactly the single run `base` describes.  Results are
/// pooled in replication order, so the output is identical to
/// [`run_replications_serial`] regardless of thread scheduling.
pub fn run_replications(
    base: SimConfig,
    replications: u32,
) -> Result<ReplicatedReport, SimConfigError> {
    let (configs, seeds) = replication_configs(base, replications)?;
    let reports: Vec<SimReport> = configs
        .par_iter()
        .map(|&cfg| Simulator::new(cfg).expect("validated above").run())
        .collect();
    Ok(combine(reports, seeds))
}

/// [`run_replications`] without the thread pool: same replications, same
/// pooling, one at a time.
pub fn run_replications_serial(
    base: SimConfig,
    replications: u32,
) -> Result<ReplicatedReport, SimConfigError> {
    let (configs, seeds) = replication_configs(base, replications)?;
    let reports: Vec<SimReport> = configs
        .iter()
        .map(|&cfg| Simulator::new(cfg).expect("validated above").run())
        .collect();
    Ok(combine(reports, seeds))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimConfig {
        SimConfig::paper_validation(8, 2, 16, 3e-3, 0.3, 99).with_limits(20_000, 2_000, 0)
    }

    #[test]
    fn replication_zero_matches_plain_run() {
        let rep = run_replications(base(), 1).unwrap();
        let plain = Simulator::new(base()).unwrap().run();
        assert_eq!(rep.seeds, vec![99]);
        assert_eq!(rep.reports[0].completed, plain.completed);
        assert_eq!(
            rep.reports[0].mean_latency.to_bits(),
            plain.mean_latency.to_bits()
        );
        assert_eq!(rep.completed, plain.completed);
    }

    #[test]
    fn replications_use_distinct_seeds_and_workloads() {
        let rep = run_replications(base(), 4).unwrap();
        assert_eq!(rep.reports.len(), 4);
        for i in 0..4 {
            for j in i + 1..4 {
                assert_ne!(rep.seeds[i], rep.seeds[j]);
                assert_ne!(
                    rep.reports[i].mean_latency.to_bits(),
                    rep.reports[j].mean_latency.to_bits(),
                    "replications {i} and {j} produced identical runs"
                );
            }
        }
        assert_eq!(
            rep.completed,
            rep.reports.iter().map(|r| r.completed).sum::<u64>()
        );
    }

    #[test]
    fn pooled_mean_is_completion_weighted() {
        let rep = run_replications(base(), 3).unwrap();
        let total: u64 = rep.reports.iter().map(|r| r.completed).sum();
        let weighted: f64 = rep
            .reports
            .iter()
            .map(|r| r.mean_latency * r.completed as f64)
            .sum::<f64>()
            / total as f64;
        assert!((rep.mean_latency - weighted).abs() < 1e-9);
        assert!(rep.ci_half_width.is_some());
    }
}
