//! Statistics collection: streaming moments and batch means.
//!
//! §4 of the paper: "Each simulation experiment was run until the network
//! reached its steady state, that is, until a further increase in simulated
//! network cycles does not change the collected statistics appreciably."
//! We implement the standard machinery for that: warm-up deletion (handled
//! by the engine: messages born during warm-up are unmeasured), Welford
//! streaming moments, and non-overlapping batch means with a Student-t
//! confidence interval to quantify "does not change appreciably".

/// Streaming mean/variance accumulator (Welford).
#[derive(Clone, Debug, Default)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Reconstruct an accumulator from externally-stored moments: `count`
    /// observations with sample `mean`, unbiased `variance` and largest
    /// observation `max`.  Used to pool per-replication report statistics
    /// without access to the raw observations; the minimum is not
    /// recoverable from a report and is left unset.
    pub fn from_moments(count: u64, mean: f64, variance: f64, max: f64) -> Self {
        StreamingStats {
            count,
            mean: if count == 0 { 0.0 } else { mean },
            m2: if count < 2 {
                0.0
            } else {
                variance * (count - 1) as f64
            },
            min: f64::INFINITY,
            max: if count == 0 { f64::NEG_INFINITY } else { max },
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Non-overlapping batch means over a fixed number of batches.
///
/// Observations are assigned to batches round-robin-free: the first
/// `per_batch` observations form batch 0, the next batch 1, … (completion
/// order, the standard construction).  The confidence half-width uses the
/// Student-t quantile for the batch count.
#[derive(Clone, Debug)]
pub struct BatchMeans {
    batches: Vec<StreamingStats>,
    per_batch: u64,
    seen: u64,
}

impl BatchMeans {
    /// `n_batches` batches of `per_batch` observations each; observations
    /// past the last batch spill into it.
    pub fn new(n_batches: u32, per_batch: u64) -> Self {
        assert!(n_batches >= 1 && per_batch >= 1);
        BatchMeans {
            batches: vec![StreamingStats::new(); n_batches as usize],
            per_batch,
            seen: 0,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        let idx = ((self.seen / self.per_batch) as usize).min(self.batches.len() - 1);
        self.batches[idx].push(x);
        self.seen += 1;
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.seen
    }

    /// Grand mean over all observations.
    pub fn mean(&self) -> f64 {
        let total: u64 = self.batches.iter().map(|b| b.count()).sum();
        if total == 0 {
            return 0.0;
        }
        self.batches
            .iter()
            .map(|b| b.mean() * b.count() as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Number of non-empty batches.
    pub fn filled_batches(&self) -> usize {
        self.batches.iter().filter(|b| b.count() > 0).count()
    }

    /// 95% confidence half-width of the mean from the batch means, or
    /// `None` with fewer than two non-empty batches.
    pub fn confidence_half_width(&self) -> Option<f64> {
        let means: Vec<f64> = self
            .batches
            .iter()
            .filter(|b| b.count() > 0)
            .map(|b| b.mean())
            .collect();
        let n = means.len();
        if n < 2 {
            return None;
        }
        let grand = means.iter().sum::<f64>() / n as f64;
        let var = means.iter().map(|m| (m - grand) * (m - grand)).sum::<f64>() / (n - 1) as f64;
        let se = (var / n as f64).sqrt();
        Some(t_quantile_975(n - 1) * se)
    }
}

/// Two-sided 95% Student-t quantile for `dof` degrees of freedom
/// (tabulated; asymptote 1.96 past 30).
fn t_quantile_975(dof: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if dof == 0 {
        f64::INFINITY
    } else if dof <= TABLE.len() {
        TABLE[dof - 1]
    } else {
        1.96
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_moments_match_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = StreamingStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Direct unbiased variance: Σ(x-5)²/7 = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = StreamingStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = StreamingStats::new();
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for (i, &x) in xs.iter().enumerate() {
            all.push(x);
            if i < 20 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn batch_means_mean_matches_grand_mean() {
        let mut bm = BatchMeans::new(5, 10);
        let mut sum = 0.0;
        for i in 0..50 {
            let x = (i % 7) as f64;
            bm.push(x);
            sum += x;
        }
        assert!((bm.mean() - sum / 50.0).abs() < 1e-12);
        assert_eq!(bm.filled_batches(), 5);
    }

    #[test]
    fn iid_confidence_interval_covers_truth() {
        // Deterministic pseudo-random uniform [0,1): mean 0.5.
        let mut bm = BatchMeans::new(10, 500);
        let mut state = 0x12345678u64;
        for _ in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            bm.push(u);
        }
        let hw = bm.confidence_half_width().unwrap();
        assert!((bm.mean() - 0.5).abs() < 3.0 * hw.max(0.005));
        assert!(hw < 0.05);
    }

    #[test]
    fn too_few_batches_yield_no_interval() {
        let mut bm = BatchMeans::new(4, 100);
        for _ in 0..50 {
            bm.push(1.0);
        }
        // All 50 observations landed in batch 0.
        assert_eq!(bm.filled_batches(), 1);
        assert!(bm.confidence_half_width().is_none());
    }

    #[test]
    fn spill_goes_to_last_batch() {
        let mut bm = BatchMeans::new(2, 3);
        for i in 0..10 {
            bm.push(i as f64);
        }
        assert_eq!(bm.count(), 10);
        assert_eq!(bm.filled_batches(), 2);
        // Batch 0 has 0,1,2; batch 1 has the remaining 7 observations.
        assert!((bm.mean() - 4.5).abs() < 1e-12);
    }
}
