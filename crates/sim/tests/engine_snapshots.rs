//! Fixed-seed report snapshots pinning the engine's observable behaviour.
//!
//! Each case runs a fixed configuration (fixed seed) and compares every
//! `SimReport` field against values recorded from the engine before the
//! struct-of-arrays refactor — floating-point fields down to the bit
//! (`f64::to_bits`).  A run is a pure function of (config, seed); these
//! tests prove the SoA engine is *observably identical* to the original
//! object-graph engine, not merely statistically close, for n ∈ {2, 3}
//! and for both ejection policies and buffer depths.
//!
//! If an intentional behaviour change ever lands (new arbitration rule,
//! different accumulation order), re-record the constants in the same
//! change and say so in the commit — a silent diff here is a determinism
//! regression.

use kncube_sim::{EjectionPolicy, SimConfig, Simulator};

struct Snapshot {
    name: &'static str,
    config: SimConfig,
    mean_latency: u64,
    ci_half_width: Option<u64>,
    latency_std_dev: u64,
    max_latency: u64,
    completed: u64,
    completed_regular: u64,
    completed_hot: u64,
    mean_latency_regular: u64,
    mean_latency_hot: u64,
    generated: u64,
    dropped_unreachable: u64,
    mean_detour_hops: u64,
    reachable_fraction: u64,
    cycles: u64,
    throughput: u64,
    vbar_measured: u64,
    max_source_queue: usize,
    in_flight_at_end: u64,
}

fn check(s: Snapshot) {
    let r = Simulator::new(s.config).unwrap().run();
    let ctx = s.name;
    assert!(!r.saturated, "{ctx}: unexpectedly saturated");
    assert!(!r.deadlocked, "{ctx}: unexpectedly deadlocked");
    assert_eq!(
        r.mean_latency.to_bits(),
        s.mean_latency,
        "{ctx}: mean_latency"
    );
    assert_eq!(
        r.ci_half_width.map(f64::to_bits),
        s.ci_half_width,
        "{ctx}: ci_half_width"
    );
    assert_eq!(
        r.latency_std_dev.to_bits(),
        s.latency_std_dev,
        "{ctx}: latency_std_dev"
    );
    assert_eq!(r.max_latency.to_bits(), s.max_latency, "{ctx}: max_latency");
    assert_eq!(r.completed, s.completed, "{ctx}: completed");
    assert_eq!(
        r.completed_regular, s.completed_regular,
        "{ctx}: completed_regular"
    );
    assert_eq!(r.completed_hot, s.completed_hot, "{ctx}: completed_hot");
    assert_eq!(
        r.mean_latency_regular.to_bits(),
        s.mean_latency_regular,
        "{ctx}: mean_latency_regular"
    );
    assert_eq!(
        r.mean_latency_hot.to_bits(),
        s.mean_latency_hot,
        "{ctx}: mean_latency_hot"
    );
    assert_eq!(r.generated, s.generated, "{ctx}: generated");
    assert_eq!(
        r.dropped_unreachable, s.dropped_unreachable,
        "{ctx}: dropped_unreachable"
    );
    assert_eq!(
        r.mean_detour_hops.to_bits(),
        s.mean_detour_hops,
        "{ctx}: mean_detour_hops"
    );
    assert_eq!(
        r.reachable_fraction.to_bits(),
        s.reachable_fraction,
        "{ctx}: reachable_fraction"
    );
    assert_eq!(r.cycles, s.cycles, "{ctx}: cycles");
    assert_eq!(r.throughput.to_bits(), s.throughput, "{ctx}: throughput");
    assert_eq!(
        r.vbar_measured.to_bits(),
        s.vbar_measured,
        "{ctx}: vbar_measured"
    );
    assert_eq!(
        r.max_source_queue, s.max_source_queue,
        "{ctx}: max_source_queue"
    );
    assert_eq!(
        r.in_flight_at_end, s.in_flight_at_end,
        "{ctx}: in_flight_at_end"
    );
}

#[test]
fn snapshot_paper_k8_v2_lm16_h30() {
    check(Snapshot {
        name: "paper_k8_v2_lm16_h30",
        config: SimConfig::paper_validation(8, 2, 16, 5e-3, 0.3, 1234)
            .with_limits(30_000, 2_000, 0),
        mean_latency: 0x40903d606f4647f8,
        ci_half_width: Some(0x408e6698be2907eb),
        latency_std_dev: 0x40a923cb07377eed,
        max_latency: 0x40d88d0000000000,
        completed: 5227,
        completed_regular: 3681,
        completed_hot: 1546,
        mean_latency_regular: 0x40905fc594c2739a,
        mean_latency_hot: 0x408fd6f70ee72965,
        generated: 9536,
        dropped_unreachable: 0,
        mean_detour_hops: 0x0,
        reachable_fraction: 0x3ff0000000000000,
        cycles: 30000,
        throughput: 0x3f67e5155b9329d6,
        vbar_measured: 0x3ff1dc68a0636ada,
        max_source_queue: 174,
        in_flight_at_end: 3733,
    });
}

#[test]
fn snapshot_paper_k16_v2_lm32_h20() {
    check(Snapshot {
        name: "paper_k16_v2_lm32_h20",
        config: SimConfig::paper_validation(16, 2, 32, 3e-4, 0.2, 42).with_limits(60_000, 5_000, 0),
        mean_latency: 0x404cc60c7ff81442,
        ci_half_width: Some(0x3ff43c67fae4d26e),
        latency_std_dev: 0x40361e2486051673,
        max_latency: 0x4072300000000000,
        completed: 4137,
        completed_regular: 3314,
        completed_hot: 823,
        mean_latency_regular: 0x404b320e85cb2998,
        mean_latency_hot: 0x4051906883e361f5,
        generated: 4529,
        dropped_unreachable: 0,
        mean_detour_hops: 0x0,
        reachable_fraction: 0x3ff0000000000000,
        cycles: 60000,
        throughput: 0x3f33417faef9429e,
        vbar_measured: 0x3ff09cb0be17b697,
        max_source_queue: 0,
        in_flight_at_end: 3,
    });
}

#[test]
fn snapshot_cube_k4_n3_v2_lm8_h40() {
    check(Snapshot {
        name: "cube_k4_n3_v2_lm8_h40",
        config: SimConfig::ncube(4, 3, 2, 8, 0.01, 0.4, 17).with_limits(50_000, 5_000, 0),
        mean_latency: 0x409d4abb5b1856ae,
        ci_half_width: Some(0x408293b8acd40be3),
        latency_std_dev: 0x40b5d27fe8f81292,
        max_latency: 0x40e412c000000000,
        completed: 18039,
        completed_regular: 11052,
        completed_hot: 6987,
        mean_latency_regular: 0x409d01aaf1d2f849,
        mean_latency_hot: 0x409dbe4de540d0be,
        generated: 32195,
        dropped_unreachable: 0,
        mean_detour_hops: 0x0,
        reachable_fraction: 0x3ff0000000000000,
        cycles: 50000,
        throughput: 0x3f79a7cca9d8f393,
        vbar_measured: 0x3ff0907e272bc37d,
        max_source_queue: 512,
        in_flight_at_end: 11289,
    });
}

#[test]
fn snapshot_cube_k3_n3_v2_lm8_h50() {
    check(Snapshot {
        name: "cube_k3_n3_v2_lm8_h50",
        config: SimConfig::ncube(3, 3, 2, 8, 0.02, 0.5, 29).with_limits(30_000, 2_000, 0),
        mean_latency: 0x409928f67ddbda98,
        ci_half_width: Some(0x40853b99c649974f),
        latency_std_dev: 0x40ad7cbc63d1dc2b,
        max_latency: 0x40d87f4000000000,
        completed: 10581,
        completed_regular: 5620,
        completed_hot: 4961,
        mean_latency_regular: 0x409767927e7384ce,
        mean_latency_hot: 0x409b260c7ce0c7c5,
        generated: 16226,
        dropped_unreachable: 0,
        mean_detour_hops: 0x0,
        reachable_fraction: 0x3ff0000000000000,
        cycles: 30000,
        throughput: 0x3f8ca9f394fbdf1a,
        vbar_measured: 0x3ff0a112a757a11b,
        max_source_queue: 556,
        in_flight_at_end: 4604,
    });
}

#[test]
fn snapshot_shared_ejection_k8() {
    check(Snapshot {
        name: "shared_ejection_k8",
        config: SimConfig {
            ejection: EjectionPolicy::SharedChannel,
            ..SimConfig::paper_validation(8, 2, 32, 3e-3, 0.4, 11)
        }
        .with_limits(40_000, 4_000, 0),
        mean_latency: 0x409dee0cf7a24d01,
        ci_half_width: Some(0x40a6aee1c48e7349),
        latency_std_dev: 0x40b24ea0278de6c5,
        max_latency: 0x40de56c000000000,
        completed: 2448,
        completed_regular: 1514,
        completed_hot: 934,
        mean_latency_regular: 0x409e0b74abcb3e95,
        mean_latency_hot: 0x409dbe62ac20e40d,
        generated: 7715,
        dropped_unreachable: 0,
        mean_detour_hops: 0x0,
        reachable_fraction: 0x3ff0000000000000,
        cycles: 40000,
        throughput: 0x3f516872b020c49c,
        vbar_measured: 0x3ff165d99563ac26,
        max_source_queue: 139,
        in_flight_at_end: 4791,
    });
}

#[test]
fn snapshot_buffer_depth1_k8() {
    check(Snapshot {
        name: "buffer_depth1_k8",
        config: SimConfig {
            buffer_depth: 1,
            ..SimConfig::paper_validation(8, 2, 32, 2e-3, 0.0, 21)
        }
        .with_limits(40_000, 4_000, 0),
        mean_latency: 0x40924645aba63c13,
        ci_half_width: Some(0x408507c2bd03f733),
        latency_std_dev: 0x40a239de77d3e182,
        max_latency: 0x40d5998000000000,
        completed: 4255,
        completed_regular: 4255,
        completed_hot: 0,
        mean_latency_regular: 0x40924645aba63c13,
        mean_latency_hot: 0x0000000000000000,
        generated: 5051,
        dropped_unreachable: 0,
        mean_detour_hops: 0x0,
        reachable_fraction: 0x3ff0000000000000,
        cycles: 40000,
        throughput: 0x3f5e41fdb97530ed,
        vbar_measured: 0x3ff5673887b2fce9,
        max_source_queue: 38,
        in_flight_at_end: 286,
    });
}

#[test]
fn snapshot_bidirectional_torus_k8() {
    use kncube_topology::{Boundary, LinkKind};
    check(Snapshot {
        name: "bidi_torus_k8",
        config: SimConfig::paper_validation(8, 2, 16, 5e-3, 0.3, 77)
            .with_topology(LinkKind::Bidirectional, Boundary::Torus)
            .with_limits(30_000, 2_000, 0),
        mean_latency: 0x4058d44bcd50d909,
        ci_half_width: Some(0x4045d18121095c31),
        latency_std_dev: 0x40755bb7ca601c2f,
        max_latency: 0x40b4530000000000,
        completed: 9132,
        completed_regular: 6547,
        completed_hot: 2585,
        mean_latency_regular: 0x4055bfaaea10583b,
        mean_latency_hot: 0x406050d2bdf1eff0,
        generated: 9821,
        dropped_unreachable: 0,
        mean_detour_hops: 0x0,
        reachable_fraction: 0x3ff0000000000000,
        cycles: 30000,
        throughput: 0x3f74df864a502a21,
        vbar_measured: 0x3ff0af9dd0fd27dd,
        max_source_queue: 22,
        in_flight_at_end: 32,
    });
}

#[test]
fn snapshot_mesh_k8() {
    use kncube_topology::{Boundary, LinkKind};
    check(Snapshot {
        name: "mesh_k8",
        config: SimConfig::paper_validation(8, 2, 16, 5e-3, 0.3, 78)
            .with_topology(LinkKind::Bidirectional, Boundary::Mesh)
            .with_limits(30_000, 2_000, 0),
        mean_latency: 0x4088f2714007ba1f,
        ci_half_width: Some(0x407d64b8f57fee86),
        latency_std_dev: 0x40a4cf3f933609ea,
        max_latency: 0x40d9d54000000000,
        completed: 6361,
        completed_regular: 4427,
        completed_hot: 1934,
        mean_latency_regular: 0x40871f5ad89ead5b,
        mean_latency_hot: 0x408d1f9fa2d01534,
        generated: 9727,
        dropped_unreachable: 0,
        mean_detour_hops: 0x0,
        reachable_fraction: 0x3ff0000000000000,
        cycles: 30000,
        throughput: 0x3f6d142ffb51a09f,
        vbar_measured: 0x3ffcf181f76e6509,
        max_source_queue: 159,
        in_flight_at_end: 2731,
    });
}
