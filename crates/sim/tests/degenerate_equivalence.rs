//! Degenerate equivalence at `k = 2`: with two nodes per ring the "other"
//! node is one hop away in either direction, so unidirectional and
//! bidirectional k-ary n-cubes are the *same network* — every route is a
//! single `Plus` hop per differing dimension, with identical Dally–Seitz
//! classes.  The engine must therefore produce **bit-identical** reports
//! for the two link kinds at every load: same channels used (the `Minus`
//! ports of the bidirectional cube stay idle forever), same event order,
//! same statistics accumulation order.

use kncube_sim::{SimConfig, SimReport, Simulator};
use kncube_topology::{Boundary, LinkKind};

fn assert_reports_bit_identical(a: &SimReport, b: &SimReport, ctx: &str) {
    assert_eq!(
        a.mean_latency.to_bits(),
        b.mean_latency.to_bits(),
        "{ctx}: mean_latency {} vs {}",
        a.mean_latency,
        b.mean_latency
    );
    assert_eq!(
        a.ci_half_width.map(f64::to_bits),
        b.ci_half_width.map(f64::to_bits),
        "{ctx}: ci_half_width"
    );
    assert_eq!(
        a.latency_std_dev.to_bits(),
        b.latency_std_dev.to_bits(),
        "{ctx}: latency_std_dev"
    );
    assert_eq!(a.max_latency.to_bits(), b.max_latency.to_bits(), "{ctx}");
    assert_eq!(a.completed, b.completed, "{ctx}: completed");
    assert_eq!(a.completed_regular, b.completed_regular, "{ctx}");
    assert_eq!(a.completed_hot, b.completed_hot, "{ctx}");
    assert_eq!(
        a.mean_latency_regular.to_bits(),
        b.mean_latency_regular.to_bits(),
        "{ctx}"
    );
    assert_eq!(
        a.mean_latency_hot.to_bits(),
        b.mean_latency_hot.to_bits(),
        "{ctx}"
    );
    assert_eq!(a.generated, b.generated, "{ctx}: generated");
    assert_eq!(a.cycles, b.cycles, "{ctx}: cycles");
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits(), "{ctx}");
    assert_eq!(
        a.vbar_measured.to_bits(),
        b.vbar_measured.to_bits(),
        "{ctx}: vbar"
    );
    assert_eq!(a.max_source_queue, b.max_source_queue, "{ctx}");
    assert_eq!(a.in_flight_at_end, b.in_flight_at_end, "{ctx}");
    assert_eq!(a.dropped_unreachable, b.dropped_unreachable, "{ctx}");
    assert_eq!(
        a.mean_detour_hops.to_bits(),
        b.mean_detour_hops.to_bits(),
        "{ctx}"
    );
    assert_eq!(
        a.reachable_fraction.to_bits(),
        b.reachable_fraction.to_bits(),
        "{ctx}"
    );
    assert_eq!(a.saturated, b.saturated, "{ctx}");
    assert_eq!(a.deadlocked, b.deadlocked, "{ctx}");
}

#[test]
fn k2_rings_coincide_across_a_lambda_grid() {
    // Hypercubes of 1 to 4 dimensions, a hot-spot and a uniform pattern,
    // across a λ grid spanning light to moderate load.
    for n in [1u32, 2, 4] {
        for h in [0.0, 0.3] {
            for &lambda in &[5e-4, 2e-3, 8e-3] {
                let uni =
                    SimConfig::ncube(2, n, 4, 8, lambda, h, 0xD06).with_limits(20_000, 1_000, 0);
                let bi = uni.with_topology(LinkKind::Bidirectional, Boundary::Torus);
                let ru = Simulator::new(uni).unwrap().run();
                let rb = Simulator::new(bi).unwrap().run();
                assert!(
                    ru.completed > 0,
                    "n={n} h={h} λ={lambda}: nothing completed"
                );
                assert_reports_bit_identical(&ru, &rb, &format!("n={n} h={h} λ={lambda}"));
            }
        }
    }
}

#[test]
fn k2_bidirectional_minus_channels_stay_idle() {
    // The equivalence holds *because* no k=2 route ever takes a Minus
    // channel: verify directly on the channel flit counters.
    use kncube_topology::{Channel, Direction, KAryNCube};
    let cfg = SimConfig::ncube(2, 3, 4, 8, 5e-3, 0.3, 7)
        .with_topology(LinkKind::Bidirectional, Boundary::Torus)
        .with_limits(10_000, 0, 0);
    let topo: KAryNCube = cfg.topology().unwrap();
    let mut sim = Simulator::new(cfg).unwrap();
    for _ in 0..10_000 {
        sim.step();
    }
    let mut plus_flits = 0;
    for from in topo.nodes() {
        for dim in 0..topo.n() {
            let plus = Channel {
                from,
                dim,
                direction: Direction::Plus,
            };
            let minus = Channel {
                from,
                dim,
                direction: Direction::Minus,
            };
            plus_flits += sim.channel_flits(plus.id(&topo));
            assert_eq!(
                sim.channel_flits(minus.id(&topo)),
                0,
                "a k=2 route took a Minus channel"
            );
        }
    }
    assert!(plus_flits > 0, "traffic must have flowed");
}
