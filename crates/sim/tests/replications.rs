//! Parallel replications must be observably identical to serial ones.
//!
//! The rayon path schedules replications across worker threads; the
//! pooling is defined over the reports in replication order, so the
//! combined report — including every floating-point field, down to the
//! bit — must not depend on how the runs were scheduled.

use kncube_sim::{run_replications, run_replications_serial, ReplicatedReport, SimConfig};
use proptest::prelude::*;

fn assert_identical(a: &ReplicatedReport, b: &ReplicatedReport) {
    assert_eq!(a.seeds, b.seeds);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.generated, b.generated);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.mean_latency.to_bits(), b.mean_latency.to_bits());
    assert_eq!(a.latency_std_dev.to_bits(), b.latency_std_dev.to_bits());
    assert_eq!(a.max_latency.to_bits(), b.max_latency.to_bits());
    assert_eq!(
        a.ci_half_width.map(f64::to_bits),
        b.ci_half_width.map(f64::to_bits)
    );
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
    assert_eq!(a.vbar_measured.to_bits(), b.vbar_measured.to_bits());
    assert_eq!(a.saturated, b.saturated);
    assert_eq!(a.deadlocked, b.deadlocked);
    assert_eq!(a.reports.len(), b.reports.len());
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.completed, rb.completed);
        assert_eq!(ra.mean_latency.to_bits(), rb.mean_latency.to_bits());
        assert_eq!(ra.vbar_measured.to_bits(), rb.vbar_measured.to_bits());
        assert_eq!(ra.cycles, rb.cycles);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The same replications pooled the same way: rayon scheduling must
    /// not leak into any reported number.
    #[test]
    fn parallel_equals_serial(
        seed in 0u64..1_000_000,
        reps in 1u32..5,
        kpick in 0u32..2,
    ) {
        let k = if kpick == 0 { 4 } else { 8 };
        let cfg = SimConfig::paper_validation(k, 2, 8, 2e-3, 0.3, seed)
            .with_limits(10_000, 1_000, 0);
        let par = run_replications(cfg, reps).unwrap();
        let ser = run_replications_serial(cfg, reps).unwrap();
        assert_identical(&par, &ser);
    }

    /// Replications tighten the across-replication interval as more are
    /// added (more degrees of freedom, same per-replication noise) — and
    /// stay deterministic.
    #[test]
    fn replicated_runs_are_reproducible(seed in 0u64..1_000_000) {
        let cfg = SimConfig::paper_validation(4, 2, 8, 5e-3, 0.2, seed)
            .with_limits(10_000, 1_000, 0);
        let a = run_replications(cfg, 3).unwrap();
        let b = run_replications(cfg, 3).unwrap();
        assert_identical(&a, &b);
    }
}
