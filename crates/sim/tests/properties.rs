//! Property-based tests of the flit-level simulator.

use kncube_sim::{SimConfig, Simulator};
use kncube_topology::NodeId;
use kncube_traffic::{ArrivalProcess, TrafficPattern};
use proptest::prelude::*;

/// Strategy over small sub-saturation configurations that finish quickly,
/// spanning dimension counts 1..=3 (ring, torus, 3-D cube).
fn small_config() -> impl Strategy<Value = SimConfig> {
    (
        3u32..=6,      // k
        1u32..=3,      // n
        2u32..=3,      // V
        4u32..=16,     // Lm
        0.0f64..=0.6,  // h
        1u64..1000,    // seed
        0.05f64..=0.4, // fraction of the flit bound
    )
        .prop_map(|(k, n, v, lm, h, seed, frac)| {
            // Generalized hot-channel flit bound: the last channel into the
            // hot node funnels k^{n-1}(k-1) hot sources.
            let funnel = (k as f64).powi(n as i32 - 1) * (k - 1) as f64;
            let hot_bound = 1.0 / (h.max(0.02) * funnel * (lm + 1) as f64);
            let uni_bound = 1.0 / ((k as f64 - 1.0) / 2.0 * (lm + 1) as f64);
            let lambda = frac * hot_bound.min(uni_bound);
            SimConfig::ncube(k, n, v, lm, lambda, h, seed).with_limits(40_000, 2_000, 1_500)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conservation_holds_throughout(cfg in small_config()) {
        let mut sim = Simulator::new(cfg).unwrap();
        for _ in 0..3_000 {
            sim.step();
            if sim.cycle().is_multiple_of(256) {
                prop_assert!(sim.flit_conservation_check(),
                    "conservation violated at cycle {}", sim.cycle());
            }
        }
    }

    #[test]
    fn runs_are_reproducible(cfg in small_config()) {
        let a = Simulator::new(cfg).unwrap().run();
        let b = Simulator::new(cfg).unwrap().run();
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.generated, b.generated);
        prop_assert!((a.mean_latency - b.mean_latency).abs() == 0.0);
    }

    #[test]
    fn no_deadlock_below_saturation(cfg in small_config()) {
        let report = Simulator::new(cfg).unwrap().run();
        prop_assert!(!report.deadlocked, "deadlock at {cfg:?}");
        prop_assert!(report.completed > 0, "nothing completed at {cfg:?}");
    }

    #[test]
    fn latencies_at_least_the_pipeline_minimum(cfg in small_config()) {
        // Every message needs at least Lm + 2 cycles (one network hop,
        // injection, drain); the minimum observed latency must respect
        // the shortest possible path.
        let report = Simulator::new(cfg).unwrap().run();
        prop_assume!(report.completed > 10);
        prop_assert!(
            report.mean_latency >= (cfg.message_length + 2) as f64,
            "mean latency {} below pipeline minimum {}",
            report.mean_latency,
            cfg.message_length + 2
        );
    }

    #[test]
    fn hot_share_of_completions_tracks_h(
        seed in 1u64..500,
        h in 0.1f64..=0.9,
    ) {
        let lambda = 0.3 / (h * 12.0 * 9.0); // 30% of the k=4, Lm=8 bound
        let cfg = SimConfig {
            pattern: TrafficPattern::HotSpot { h, hot: NodeId(3) },
            arrivals: ArrivalProcess::Poisson(lambda),
            ..SimConfig::paper_validation(4, 2, 8, lambda, h, seed)
        }
        .with_limits(400_000, 2_000, 4_000);
        let report = Simulator::new(cfg).unwrap().run();
        prop_assume!(report.completed >= 2_000);
        let share = report.completed_hot as f64 / report.completed as f64;
        // The hot node itself (1/16 of sources) sends only regular
        // traffic, so the expected share is h·15/16.
        let expected = h * 15.0 / 16.0;
        prop_assert!(
            (share - expected).abs() < 0.05,
            "hot share {share:.3} vs expected {expected:.3}"
        );
    }

    #[test]
    fn throughput_matches_offered_load_below_saturation(cfg in small_config()) {
        let report = Simulator::new(SimConfig {
            target_messages: 0,
            max_cycles: 120_000,
            warmup_cycles: 5_000,
            ..cfg
        }).unwrap().run();
        prop_assert!(!report.saturated);
        let offered = cfg.arrivals.rate();
        // Generous tolerance: short runs at tiny rates are noisy.
        let nodes = (cfg.k as u64).pow(cfg.n) as f64;
        let sigma = (offered / (115_000.0 * nodes)).sqrt();
        prop_assert!(
            (report.throughput - offered).abs() < 4.0 * sigma + 0.1 * offered,
            "throughput {:.3e} vs offered {offered:.3e}",
            report.throughput
        );
    }
}
