//! Fault-injection behaviour of the engine: deterministic sampling,
//! unreachable-message drops, detour statistics, and the guarantee that
//! enabling the fault machinery with probability zero changes nothing on a
//! mesh (where the fault router reproduces dimension-order routing
//! exactly, virtual-channel classes included).

use kncube_sim::{SimConfig, SimReport, Simulator};
use kncube_topology::{Boundary, LinkKind};
use kncube_traffic::FaultSpec;

fn assert_bit_identical(a: &SimReport, b: &SimReport, ctx: &str) {
    assert_eq!(a.mean_latency.to_bits(), b.mean_latency.to_bits(), "{ctx}");
    assert_eq!(
        a.ci_half_width.map(f64::to_bits),
        b.ci_half_width.map(f64::to_bits),
        "{ctx}"
    );
    assert_eq!(
        a.latency_std_dev.to_bits(),
        b.latency_std_dev.to_bits(),
        "{ctx}"
    );
    assert_eq!(a.max_latency.to_bits(), b.max_latency.to_bits(), "{ctx}");
    assert_eq!(a.completed, b.completed, "{ctx}");
    assert_eq!(a.completed_regular, b.completed_regular, "{ctx}");
    assert_eq!(a.completed_hot, b.completed_hot, "{ctx}");
    assert_eq!(
        a.mean_latency_regular.to_bits(),
        b.mean_latency_regular.to_bits(),
        "{ctx}"
    );
    assert_eq!(
        a.mean_latency_hot.to_bits(),
        b.mean_latency_hot.to_bits(),
        "{ctx}"
    );
    assert_eq!(a.generated, b.generated, "{ctx}");
    assert_eq!(a.dropped_unreachable, b.dropped_unreachable, "{ctx}");
    assert_eq!(
        a.mean_detour_hops.to_bits(),
        b.mean_detour_hops.to_bits(),
        "{ctx}"
    );
    assert_eq!(
        a.reachable_fraction.to_bits(),
        b.reachable_fraction.to_bits(),
        "{ctx}"
    );
    assert_eq!(a.cycles, b.cycles, "{ctx}");
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits(), "{ctx}");
    assert_eq!(
        a.vbar_measured.to_bits(),
        b.vbar_measured.to_bits(),
        "{ctx}"
    );
    assert_eq!(a.max_source_queue, b.max_source_queue, "{ctx}");
    assert_eq!(a.in_flight_at_end, b.in_flight_at_end, "{ctx}");
    assert_eq!(a.saturated, b.saturated, "{ctx}");
    assert_eq!(a.deadlocked, b.deadlocked, "{ctx}");
}

#[test]
fn zero_probability_faults_on_a_mesh_change_nothing() {
    // On a mesh every dimension-order hop is class High and the fault
    // router's shortest paths coincide with DOR hop-for-hop, so routing
    // through the fault machinery with an empty fault set must be
    // *bit-identical* to not having it at all.
    let base = SimConfig::paper_validation(6, 2, 16, 4e-3, 0.3, 91)
        .with_topology(LinkKind::Bidirectional, Boundary::Mesh)
        .with_limits(25_000, 2_000, 0);
    let plain = Simulator::new(base).unwrap().run();
    let faulted = Simulator::new(base.with_faults(FaultSpec::NONE))
        .unwrap()
        .run();
    assert_bit_identical(&plain, &faulted, "mesh p=0");
}

#[test]
fn fault_runs_are_deterministic_in_the_seed() {
    let spec = FaultSpec {
        router_failure_prob: 0.05,
        link_failure_prob: 0.05,
    };
    let cfg = SimConfig::paper_validation(8, 2, 8, 3e-3, 0.2, 5150)
        .with_topology(LinkKind::Bidirectional, Boundary::Torus)
        .with_faults(spec)
        .with_limits(20_000, 1_000, 0);
    let a = Simulator::new(cfg).unwrap().run();
    let b = Simulator::new(cfg).unwrap().run();
    assert_bit_identical(&a, &b, "same seed");
    // A different seed samples a different fault set (and workload).
    let c = Simulator::new(SimConfig { seed: 5151, ..cfg })
        .unwrap()
        .run();
    assert!(
        c.reachable_fraction.to_bits() != a.reachable_fraction.to_bits()
            || c.generated != a.generated
            || c.mean_latency.to_bits() != a.mean_latency.to_bits(),
        "different seeds should not reproduce the run"
    );
}

#[test]
fn router_failures_drop_unreachable_messages_and_account_for_all() {
    let spec = FaultSpec {
        router_failure_prob: 0.1,
        link_failure_prob: 0.02,
    };
    // warmup 0 so every message is measured: generated messages either
    // drop at the source, complete, or are still in flight at the end.
    let cfg = SimConfig::paper_validation(8, 2, 8, 2e-3, 0.2, 60)
        .with_topology(LinkKind::Bidirectional, Boundary::Torus)
        .with_faults(spec)
        .with_limits(20_000, 0, 0);
    let report = Simulator::new(cfg).unwrap().run();
    assert!(!report.deadlocked, "fault run deadlocked");
    assert!(
        report.dropped_unreachable > 0,
        "10% router failures on 64 nodes should strand some messages"
    );
    assert!(report.reachable_fraction < 1.0);
    assert!(report.reachable_fraction > 0.0);
    assert_eq!(
        report.generated,
        report.dropped_unreachable + report.completed + report.in_flight_at_end,
        "message accounting must balance"
    );
    assert!(report.completed > 0, "survivors must still communicate");
}

#[test]
fn report_reachability_matches_the_routers() {
    let spec = FaultSpec {
        router_failure_prob: 0.08,
        link_failure_prob: 0.04,
    };
    for (link_kind, boundary) in [
        (LinkKind::Unidirectional, Boundary::Torus),
        (LinkKind::Bidirectional, Boundary::Torus),
        (LinkKind::Bidirectional, Boundary::Mesh),
    ] {
        let cfg = SimConfig::paper_validation(6, 2, 8, 1e-3, 0.0, 31)
            .with_topology(link_kind, boundary)
            .with_faults(spec)
            .with_limits(10_000, 0, 0);
        let sim = Simulator::new(cfg).unwrap();
        let expected = sim.fault_router().unwrap().reachable_fraction();
        let report = sim.run();
        assert_eq!(
            report.reachable_fraction.to_bits(),
            expected.to_bits(),
            "{link_kind:?} {boundary:?}"
        );
    }
}

#[test]
fn link_faults_on_a_bidirectional_torus_cause_detours() {
    // Plenty of link failures but no router failures: the 2-D torus is
    // 4-connected, so nearly everything stays reachable — via longer
    // routes whose extra hops show up in the detour statistic.
    let spec = FaultSpec {
        router_failure_prob: 0.0,
        link_failure_prob: 0.15,
    };
    let cfg = SimConfig::paper_validation(8, 2, 8, 1e-3, 0.0, 23)
        .with_topology(LinkKind::Bidirectional, Boundary::Torus)
        .with_faults(spec)
        .with_limits(30_000, 0, 0);
    let sim = Simulator::new(cfg).unwrap();
    let expected_detour = sim.fault_router().unwrap().expected_detour();
    assert!(
        expected_detour > 0.0,
        "15% link failures must force some detours"
    );
    let report = sim.run();
    assert!(!report.deadlocked);
    assert!(
        report.mean_detour_hops > 0.0,
        "measured messages should show detours (router expects {expected_detour})"
    );
}

#[test]
fn faulty_mesh_completes_messages() {
    let spec = FaultSpec {
        router_failure_prob: 0.05,
        link_failure_prob: 0.05,
    };
    let cfg = SimConfig::paper_validation(6, 2, 8, 2e-3, 0.3, 47)
        .with_topology(LinkKind::Bidirectional, Boundary::Mesh)
        .with_faults(spec)
        .with_limits(25_000, 0, 0);
    let report = Simulator::new(cfg).unwrap().run();
    assert!(!report.deadlocked, "faulty mesh deadlocked");
    assert!(report.completed > 0);
    assert_eq!(
        report.generated,
        report.dropped_unreachable + report.completed + report.in_flight_at_end
    );
}

#[test]
fn fully_partitioned_network_drops_everything_without_panicking() {
    // With every router failed the network has zero reachable pairs: each
    // generated message is dropped at the source, nothing ever moves, and
    // the run must terminate cleanly (no deadlock flag, no panic from the
    // routing invariants in `on_head_arrival`).
    let spec = FaultSpec {
        router_failure_prob: 1.0,
        link_failure_prob: 0.0,
    };
    let cfg = SimConfig::paper_validation(4, 2, 8, 2e-3, 0.2, 11)
        .with_topology(LinkKind::Bidirectional, Boundary::Torus)
        .with_faults(spec)
        .with_limits(10_000, 0, 0);
    let sim = Simulator::new(cfg).unwrap();
    assert_eq!(sim.fault_router().unwrap().reachable_pairs(), 0);
    let report = sim.run();
    assert_eq!(report.completed, 0);
    assert!(
        report.dropped_unreachable > 0,
        "arrivals must still be drawn"
    );
    assert_eq!(report.generated, report.dropped_unreachable);
    assert!(!report.deadlocked, "an idle network is not deadlocked");
    assert_eq!(report.reachable_fraction, 0.0);
}
