//! Destination patterns.
//!
//! The paper's validation uses two: **uniform** (every other node equally
//! likely) and the **hot-spot** model of Pfister & Norton \[20\] (each
//! message goes to the distinguished hot-spot node with probability `h`,
//! otherwise to a uniformly-random other node).  The hot-spot node itself
//! "generates only regular traffic" (§3, discussion before Eq. 32), so its
//! own messages are always uniform.
//!
//! The remaining patterns are the classic synthetic permutations/offsets
//! used across the interconnection-network literature, included for
//! extension experiments: transpose, bit-complement, bit-reversal, tornado
//! and nearest-neighbour.

use kncube_topology::{KAryNCube, NodeId};
use rand::Rng;

/// Classification of a generated message, used to account latency per class
/// (the model predicts `S_r` and `S_h` separately, Eq. 10).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MessageClass {
    /// A message following the background (uniform) distribution.
    Regular,
    /// A message addressed to the hot-spot node by the hot-spot coin flip.
    HotSpot,
}

/// A destination pattern.
///
/// ```
/// use kncube_topology::{KAryNCube, NodeId};
/// use kncube_traffic::{MessageClass, TrafficPattern};
/// use rand::SeedableRng;
/// let t = KAryNCube::unidirectional(8, 2).unwrap();
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let pattern = TrafficPattern::HotSpot { h: 1.0, hot: NodeId(9) };
/// let (dest, class) = pattern.pick_destination(&t, NodeId(0), &mut rng);
/// assert_eq!((dest, class), (NodeId(9), MessageClass::HotSpot));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TrafficPattern {
    /// Uniform over the `N-1` other nodes.
    Uniform,
    /// Pfister–Norton hot-spot traffic: probability `h` to `hot`, else
    /// uniform over the other nodes (excluding the source).
    HotSpot {
        /// The hot-spot fraction `h` in `[0, 1]`.
        h: f64,
        /// The hot-spot node.
        hot: NodeId,
    },
    /// Matrix transpose: `(v_0, v_1, …) → (v_1, v_0, …)` (coordinates of
    /// the first two dimensions swapped).  Nodes on the diagonal fall back
    /// to uniform destinations.
    Transpose,
    /// Bit-complement on the node id: `id → (N-1) - id` expressed per
    /// coordinate as `c → k-1-c`.
    BitComplement,
    /// Bit-reversal of the node id within `ceil(log2 N)` bits (requires
    /// `N` a power of two; falls back to uniform otherwise).
    BitReversal,
    /// Tornado: `⌈k/2⌉ - 1` hops forward in every dimension — the classic
    /// adversary for rings.
    Tornado,
    /// Uniform over the source's immediate neighbours.
    NearestNeighbor,
}

impl TrafficPattern {
    /// Draw a destination for a message generated at `src`, together with
    /// its class.
    ///
    /// Destinations never equal the source: patterns that would map a node
    /// to itself fall back to a uniform other node (and stay `Regular`).
    pub fn pick_destination<R: Rng + ?Sized>(
        &self,
        topo: &KAryNCube,
        src: NodeId,
        rng: &mut R,
    ) -> (NodeId, MessageClass) {
        match *self {
            TrafficPattern::Uniform => (uniform_other(topo, src, rng), MessageClass::Regular),
            TrafficPattern::HotSpot { h, hot } => {
                // The hot node itself generates only regular traffic.
                if src != hot && rng.gen_bool(h) {
                    (hot, MessageClass::HotSpot)
                } else {
                    (uniform_other(topo, src, rng), MessageClass::Regular)
                }
            }
            TrafficPattern::Transpose => {
                let (c0, c1) = (topo.coord(src, 0), topo.coord(src, 1));
                let dest = topo.with_coord(topo.with_coord(src, 0, c1), 1, c0);
                (
                    fallback_if_self(topo, src, dest, rng),
                    MessageClass::Regular,
                )
            }
            TrafficPattern::BitComplement => {
                let dest = NodeId(topo.num_nodes() - 1 - src.0);
                (
                    fallback_if_self(topo, src, dest, rng),
                    MessageClass::Regular,
                )
            }
            TrafficPattern::BitReversal => {
                let n = topo.num_nodes();
                let dest = if n.is_power_of_two() {
                    let bits = n.trailing_zeros();
                    NodeId(src.0.reverse_bits() >> (32 - bits))
                } else {
                    uniform_other(topo, src, rng)
                };
                (
                    fallback_if_self(topo, src, dest, rng),
                    MessageClass::Regular,
                )
            }
            TrafficPattern::Tornado => {
                let offset = topo.k().div_ceil(2) - 1;
                let mut dest = src;
                for d in 0..topo.n() {
                    let c = (topo.coord(src, d) + offset) % topo.k();
                    dest = topo.with_coord(dest, d, c);
                }
                (
                    fallback_if_self(topo, src, dest, rng),
                    MessageClass::Regular,
                )
            }
            TrafficPattern::NearestNeighbor => {
                let dim = rng.gen_range(0..topo.n());
                let dest = match topo.link_kind() {
                    kncube_topology::LinkKind::Unidirectional => topo.neighbor_plus(src, dim),
                    kncube_topology::LinkKind::Bidirectional => {
                        if rng.gen_bool(0.5) {
                            topo.neighbor_plus(src, dim)
                        } else {
                            topo.neighbor_minus(src, dim)
                        }
                    }
                };
                (
                    fallback_if_self(topo, src, dest, rng),
                    MessageClass::Regular,
                )
            }
        }
    }

    /// The hot-spot fraction of this pattern (`0` for all non-hot-spot
    /// patterns).
    pub fn hot_fraction(&self) -> f64 {
        match *self {
            TrafficPattern::HotSpot { h, .. } => h,
            _ => 0.0,
        }
    }
}

/// Uniform over all nodes except `src`.
fn uniform_other<R: Rng + ?Sized>(topo: &KAryNCube, src: NodeId, rng: &mut R) -> NodeId {
    let n = topo.num_nodes();
    let raw = rng.gen_range(0..n - 1);
    // Skip over the source without rejection sampling.
    NodeId(if raw >= src.0 { raw + 1 } else { raw })
}

fn fallback_if_self<R: Rng + ?Sized>(
    topo: &KAryNCube,
    src: NodeId,
    dest: NodeId,
    rng: &mut R,
) -> NodeId {
    if dest == src {
        uniform_other(topo, src, rng)
    } else {
        dest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn torus(k: u32) -> KAryNCube {
        KAryNCube::unidirectional(k, 2).unwrap()
    }

    #[test]
    fn uniform_never_targets_self_and_covers_all_nodes() {
        let t = torus(4);
        let src = NodeId(5);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = vec![0u32; t.num_nodes() as usize];
        for _ in 0..20_000 {
            let (d, class) = TrafficPattern::Uniform.pick_destination(&t, src, &mut rng);
            assert_ne!(d, src);
            assert_eq!(class, MessageClass::Regular);
            seen[d.index()] += 1;
        }
        assert_eq!(seen[src.index()], 0);
        // Every other node hit roughly 20000/15 ≈ 1333 times.
        for (i, &c) in seen.iter().enumerate() {
            if i != src.index() {
                assert!(c > 1000 && c < 1700, "node {i} hit {c} times");
            }
        }
    }

    #[test]
    fn hot_spot_frequency_matches_h() {
        let t = torus(4);
        let hot = NodeId(9);
        let src = NodeId(2);
        let h = 0.4;
        let mut rng = SmallRng::seed_from_u64(2);
        let trials = 50_000;
        let mut hot_count = 0;
        for _ in 0..trials {
            let (d, class) = TrafficPattern::HotSpot { h, hot }.pick_destination(&t, src, &mut rng);
            if class == MessageClass::HotSpot {
                assert_eq!(d, hot);
                hot_count += 1;
            }
        }
        let freq = hot_count as f64 / trials as f64;
        assert!((freq - h).abs() < 0.01, "hot frequency {freq} vs h={h}");
    }

    #[test]
    fn hot_node_generates_only_regular_traffic() {
        let t = torus(4);
        let hot = NodeId(9);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..5_000 {
            let (d, class) =
                TrafficPattern::HotSpot { h: 0.9, hot }.pick_destination(&t, hot, &mut rng);
            assert_eq!(class, MessageClass::Regular);
            assert_ne!(d, hot, "hot node must not send to itself");
        }
    }

    #[test]
    fn regular_messages_under_hot_spot_are_uniform_over_others() {
        // The `1-h` share is uniform over all nodes but the source —
        // including the hot node itself (Pfister-Norton's definition).
        let t = torus(4);
        let hot = NodeId(0);
        let src = NodeId(7);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut regular_to_hot = 0u32;
        let mut regular_total = 0u32;
        for _ in 0..60_000 {
            let (d, class) =
                TrafficPattern::HotSpot { h: 0.3, hot }.pick_destination(&t, src, &mut rng);
            if class == MessageClass::Regular {
                regular_total += 1;
                if d == hot {
                    regular_to_hot += 1;
                }
            }
        }
        let freq = regular_to_hot as f64 / regular_total as f64;
        let expected = 1.0 / 15.0;
        assert!(
            (freq - expected).abs() < 0.01,
            "regular-to-hot {freq} vs uniform share {expected}"
        );
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let t = torus(5);
        let src = t.node_at(&[3, 1]);
        let mut rng = SmallRng::seed_from_u64(5);
        let (d, _) = TrafficPattern::Transpose.pick_destination(&t, src, &mut rng);
        assert_eq!(t.coords(d), vec![1, 3]);
    }

    #[test]
    fn transpose_diagonal_falls_back_to_uniform() {
        let t = torus(5);
        let src = t.node_at(&[2, 2]);
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..100 {
            let (d, _) = TrafficPattern::Transpose.pick_destination(&t, src, &mut rng);
            assert_ne!(d, src);
        }
    }

    #[test]
    fn bit_complement_mirrors_id() {
        let t = torus(4);
        let src = NodeId(3);
        let mut rng = SmallRng::seed_from_u64(7);
        let (d, _) = TrafficPattern::BitComplement.pick_destination(&t, src, &mut rng);
        assert_eq!(d, NodeId(12));
    }

    #[test]
    fn bit_reversal_on_power_of_two() {
        let t = torus(4); // N = 16, 4 bits
        let src = NodeId(0b0001);
        let mut rng = SmallRng::seed_from_u64(8);
        let (d, _) = TrafficPattern::BitReversal.pick_destination(&t, src, &mut rng);
        assert_eq!(d, NodeId(0b1000));
    }

    #[test]
    fn tornado_offsets_every_dimension() {
        let t = torus(8);
        let src = t.node_at(&[6, 2]);
        let mut rng = SmallRng::seed_from_u64(9);
        let (d, _) = TrafficPattern::Tornado.pick_destination(&t, src, &mut rng);
        // ⌈8/2⌉-1 = 3 hops forward per dimension.
        assert_eq!(t.coords(d), vec![1, 5]);
    }

    #[test]
    fn nearest_neighbor_is_one_hop() {
        let t = torus(6);
        let src = t.node_at(&[4, 4]);
        let mut rng = SmallRng::seed_from_u64(10);
        for _ in 0..200 {
            let (d, _) = TrafficPattern::NearestNeighbor.pick_destination(&t, src, &mut rng);
            assert_eq!(t.hop_count(src, d), 1);
        }
    }

    #[test]
    fn zero_h_hot_spot_equals_uniform_distribution() {
        let t = torus(4);
        let hot = NodeId(1);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..2_000 {
            let (_, class) =
                TrafficPattern::HotSpot { h: 0.0, hot }.pick_destination(&t, NodeId(6), &mut rng);
            assert_eq!(class, MessageClass::Regular);
        }
    }
}
