//! Message arrival processes.
//!
//! Assumption (i) of the model: each node generates traffic following a
//! Poisson process with mean rate `λ` messages/cycle.  The conclusion of
//! the paper names the extension to "non-Poissonian traffic load,
//! including bursty and self-similar traffic" as future work — the
//! [`ArrivalProcess::OnOff`] process (a two-state Markov-modulated Poisson
//! process) implements exactly that extension on the simulation side.
//!
//! Sampling is by *gaps*: [`ArrivalSampler::next_arrival_after`] returns
//! the real-valued time of the next arrival, which both matches the
//! continuous-time definitions exactly and lets the simulator skip idle
//! stretches.

use rand::Rng;

/// Description of a per-node arrival process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// `Poisson(λ)` — exponential inter-arrival gaps (the paper's
    /// assumption (i)).
    Poisson(f64),
    /// At most one arrival per cycle with probability `λ` — geometric
    /// gaps; statistically indistinguishable from Poisson at the paper's
    /// loads.
    Bernoulli(f64),
    /// Exactly one arrival every `period` cycles.
    EveryCycles(u64),
    /// Two-state Markov-modulated Poisson process: bursts of Poisson
    /// arrivals at `rate_on` lasting `Exp(mean_on)` cycles, separated by
    /// silent gaps lasting `Exp(mean_off)` cycles.  Mean rate
    /// `rate_on · mean_on / (mean_on + mean_off)`.
    OnOff {
        /// Arrival rate while a burst is active, messages/cycle.
        rate_on: f64,
        /// Mean burst duration, cycles.
        mean_on: f64,
        /// Mean silence duration, cycles.
        mean_off: f64,
    },
}

impl ArrivalProcess {
    /// A bursty process with the given `mean_rate`, peak-to-mean ratio
    /// `beta >= 1` (burstiness; `beta = 1` degenerates to Poisson), and
    /// mean burst duration `mean_burst` cycles.
    pub fn bursty(mean_rate: f64, beta: f64, mean_burst: f64) -> Self {
        assert!(mean_rate >= 0.0);
        assert!(beta >= 1.0, "peak-to-mean ratio must be >= 1");
        assert!(mean_burst > 0.0);
        if beta == 1.0 {
            return ArrivalProcess::Poisson(mean_rate);
        }
        // π_on = 1/β  ⇒  mean_off = mean_on (β - 1).
        ArrivalProcess::OnOff {
            rate_on: mean_rate * beta,
            mean_on: mean_burst,
            mean_off: mean_burst * (beta - 1.0),
        }
    }

    /// Long-run mean arrivals per cycle.
    pub fn rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson(l) | ArrivalProcess::Bernoulli(l) => l,
            ArrivalProcess::EveryCycles(p) => 1.0 / p as f64,
            ArrivalProcess::OnOff {
                rate_on,
                mean_on,
                mean_off,
            } => rate_on * mean_on / (mean_on + mean_off),
        }
    }

    /// Peak-to-mean ratio (1 for the memoryless processes).
    pub fn burstiness(&self) -> f64 {
        match *self {
            ArrivalProcess::OnOff {
                mean_on, mean_off, ..
            } => (mean_on + mean_off) / mean_on,
            _ => 1.0,
        }
    }
}

/// Phase of a stateful arrival process.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Phase {
    /// Memoryless process — no phase to track.
    Steady,
    /// Inside a burst until the given time.
    On {
        /// Burst end time.
        until: f64,
    },
    /// Silent until the given time.
    Off {
        /// Silence end time.
        until: f64,
    },
}

/// Stateful gap sampler for an [`ArrivalProcess`].
#[derive(Clone, Debug)]
pub struct ArrivalSampler {
    process: ArrivalProcess,
    phase: Phase,
}

/// Exponential variate with the given mean.
fn exp_with_mean<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() * mean
}

impl ArrivalSampler {
    /// Build a sampler; `OnOff` processes start in the silent phase (the
    /// first burst begins after one `Exp(mean_off)` gap), so independent
    /// nodes desynchronise naturally.
    pub fn new(process: ArrivalProcess) -> Self {
        ArrivalSampler {
            process,
            phase: Phase::Steady,
        }
    }

    /// The described process.
    pub fn process(&self) -> ArrivalProcess {
        self.process
    }

    /// Time of the first arrival strictly after `t` (`f64::INFINITY` when
    /// the rate is zero).
    pub fn next_arrival_after<R: Rng + ?Sized>(&mut self, t: f64, rng: &mut R) -> f64 {
        match self.process {
            ArrivalProcess::Poisson(lambda) => {
                if lambda <= 0.0 {
                    f64::INFINITY
                } else {
                    t + exp_with_mean(1.0 / lambda, rng)
                }
            }
            ArrivalProcess::Bernoulli(lambda) => {
                if lambda <= 0.0 {
                    f64::INFINITY
                } else if lambda >= 1.0 {
                    t + 1.0
                } else {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    t + (u.ln() / (1.0 - lambda).ln()).floor() + 1.0
                }
            }
            ArrivalProcess::EveryCycles(period) => t + period as f64,
            ArrivalProcess::OnOff {
                rate_on,
                mean_on,
                mean_off,
            } => {
                if rate_on <= 0.0 {
                    return f64::INFINITY;
                }
                let mut now = t;
                // Initialise the phase lazily on first use.
                if self.phase == Phase::Steady {
                    self.phase = Phase::Off {
                        until: now + exp_with_mean(mean_off, rng),
                    };
                }
                loop {
                    match self.phase {
                        Phase::Off { until } => {
                            now = now.max(until);
                            self.phase = Phase::On {
                                until: now + exp_with_mean(mean_on, rng),
                            };
                        }
                        Phase::On { until } => {
                            let candidate = now + exp_with_mean(1.0 / rate_on, rng);
                            if candidate < until {
                                return candidate;
                            }
                            now = until;
                            self.phase = Phase::Off {
                                until: now + exp_with_mean(mean_off, rng),
                            };
                        }
                        Phase::Steady => unreachable!("initialised above"),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Count arrivals of `process` in `[0, horizon)`.
    fn count_arrivals(process: ArrivalProcess, horizon: f64, seed: u64) -> u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sampler = ArrivalSampler::new(process);
        let mut t = sampler.next_arrival_after(0.0, &mut rng);
        let mut count = 0;
        while t < horizon {
            count += 1;
            t = sampler.next_arrival_after(t, &mut rng);
        }
        count
    }

    #[test]
    fn rates_report_correctly() {
        assert_eq!(ArrivalProcess::Poisson(0.25).rate(), 0.25);
        assert_eq!(ArrivalProcess::Bernoulli(0.1).rate(), 0.1);
        assert_eq!(ArrivalProcess::EveryCycles(4).rate(), 0.25);
        let bursty = ArrivalProcess::bursty(0.01, 5.0, 100.0);
        assert!((bursty.rate() - 0.01).abs() < 1e-12);
        assert!((bursty.burstiness() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bursty_with_beta_one_is_poisson() {
        assert_eq!(
            ArrivalProcess::bursty(0.02, 1.0, 50.0),
            ArrivalProcess::Poisson(0.02)
        );
    }

    #[test]
    fn poisson_mean_matches_rate() {
        let lambda = 0.05;
        let n = count_arrivals(ArrivalProcess::Poisson(lambda), 2e5, 7);
        let mean = n as f64 / 2e5;
        assert!((mean - lambda).abs() < 0.003, "mean {mean} vs {lambda}");
    }

    #[test]
    fn bernoulli_gaps_are_integral_and_rate_matches() {
        let lambda = 0.08;
        let mut rng = SmallRng::seed_from_u64(3);
        let mut s = ArrivalSampler::new(ArrivalProcess::Bernoulli(lambda));
        let mut t = 0.0;
        for _ in 0..1000 {
            let next = s.next_arrival_after(t, &mut rng);
            assert!((next - t).fract().abs() < 1e-9, "gap must be integral");
            assert!(next - t >= 1.0);
            t = next;
        }
        let n = count_arrivals(ArrivalProcess::Bernoulli(lambda), 1e5, 5);
        assert!((n as f64 / 1e5 - lambda).abs() < 0.005);
    }

    #[test]
    fn deterministic_period_fires_on_schedule() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut s = ArrivalSampler::new(ArrivalProcess::EveryCycles(5));
        let mut t = 0.0;
        for expected in [5.0, 10.0, 15.0, 20.0] {
            t = s.next_arrival_after(t, &mut rng);
            assert_eq!(t, expected);
        }
    }

    #[test]
    fn onoff_mean_rate_matches_construction() {
        for beta in [2.0, 5.0, 16.0] {
            let mean = 0.02;
            let p = ArrivalProcess::bursty(mean, beta, 200.0);
            let n = count_arrivals(p, 5e5, 11);
            let observed = n as f64 / 5e5;
            assert!(
                (observed - mean).abs() < 0.15 * mean,
                "beta={beta}: observed {observed} vs {mean}"
            );
        }
    }

    #[test]
    fn onoff_is_actually_bursty() {
        // Count arrivals in windows; the index of dispersion (var/mean)
        // must exceed 1 (Poisson) markedly.
        let window = 500.0;
        let horizon = 4e5;
        let dispersion = |process: ArrivalProcess, seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut s = ArrivalSampler::new(process);
            let mut counts = vec![0u32; (horizon / window) as usize];
            let mut t = s.next_arrival_after(0.0, &mut rng);
            while t < horizon {
                counts[(t / window) as usize] += 1;
                t = s.next_arrival_after(t, &mut rng);
            }
            let n = counts.len() as f64;
            let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / n;
            let var = counts
                .iter()
                .map(|&c| (c as f64 - mean).powi(2))
                .sum::<f64>()
                / (n - 1.0);
            var / mean
        };
        let poisson = dispersion(ArrivalProcess::Poisson(0.02), 13);
        let bursty = dispersion(ArrivalProcess::bursty(0.02, 8.0, 200.0), 13);
        assert!(poisson < 2.0, "poisson dispersion {poisson}");
        assert!(
            bursty > 3.0 * poisson,
            "bursty dispersion {bursty} vs poisson {poisson}"
        );
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut s = ArrivalSampler::new(ArrivalProcess::Poisson(0.0));
        assert_eq!(s.next_arrival_after(0.0, &mut rng), f64::INFINITY);
        let mut s = ArrivalSampler::new(ArrivalProcess::OnOff {
            rate_on: 0.0,
            mean_on: 1.0,
            mean_off: 1.0,
        });
        assert_eq!(s.next_arrival_after(0.0, &mut rng), f64::INFINITY);
    }

    #[test]
    fn arrivals_strictly_increase() {
        let mut rng = SmallRng::seed_from_u64(21);
        for p in [
            ArrivalProcess::Poisson(0.5),
            ArrivalProcess::Bernoulli(0.5),
            ArrivalProcess::bursty(0.1, 4.0, 20.0),
        ] {
            let mut s = ArrivalSampler::new(p);
            let mut t = 0.0;
            for _ in 0..500 {
                let next = s.next_arrival_after(t, &mut rng);
                assert!(next > t, "{p:?}: {next} !> {t}");
                t = next;
            }
        }
    }
}
