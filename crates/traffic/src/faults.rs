//! Seed-derived random fault sampling.
//!
//! Bridges the probabilistic fault model of the reliability literature
//! (independent router failures with probability `p_r`, independent
//! physical-link failures with probability `p_l` — arXiv:1301.5993) to the
//! deterministic [`FaultSet`] of the topology crate.  Sampling follows the
//! same reproducibility discipline as traffic generation: each node draws
//! its own failures from a dedicated per-node RNG stream, so the sampled
//! fault set is a pure function of `(topology, spec, master_seed)` and is
//! independent of iteration order.
//!
//! Draw order per node (fixed, so streams never slip): one router draw,
//! then one draw per dimension for the node's outgoing `Plus` link.  Every
//! physical link is owned by exactly one `(node, dim, Plus)` triple — the
//! `Minus` channel of a bidirectional link belongs to the neighbour's
//! `Plus` draw, and [`FaultSet::fail_link`] kills both directions together.
//! Mesh wrap positions still consume their draw (the failure is a no-op on
//! a nonexistent channel), keeping node streams aligned across boundary
//! conditions.

use crate::rng::node_stream_rng;
use kncube_topology::{Channel, Direction, FaultSet, KAryNCube};
use rand::Rng;

/// Stream index reserved for fault sampling (distinct from the arrival and
/// destination streams used by workload generation).
const FAULT_STREAM: u64 = 0xFA17;

/// Independent-failure fault model: each router fails with probability
/// `router_failure_prob`, each physical link with `link_failure_prob`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FaultSpec {
    /// Probability that a router (node) has failed.
    pub router_failure_prob: f64,
    /// Probability that a physical link has failed (both directions of a
    /// bidirectional link fail together).
    pub link_failure_prob: f64,
}

impl FaultSpec {
    /// The fault-free spec (probability zero everywhere).
    pub const NONE: FaultSpec = FaultSpec {
        router_failure_prob: 0.0,
        link_failure_prob: 0.0,
    };

    /// Whether both probabilities are valid (`[0, 1]` and finite).
    pub fn is_valid(&self) -> bool {
        (0.0..=1.0).contains(&self.router_failure_prob)
            && (0.0..=1.0).contains(&self.link_failure_prob)
    }
}

/// Sample a [`FaultSet`] for `topo` under `spec`, deterministically derived
/// from `master_seed`.
pub fn sample_fault_set(topo: KAryNCube, spec: FaultSpec, master_seed: u64) -> FaultSet {
    assert!(spec.is_valid(), "fault probabilities must lie in [0, 1]");
    let mut faults = FaultSet::none(topo);
    for node in topo.nodes() {
        let mut rng = node_stream_rng(master_seed, node, FAULT_STREAM);
        if rng.gen_bool(spec.router_failure_prob) {
            faults.fail_node(node);
        }
        for dim in 0..topo.n() {
            if rng.gen_bool(spec.link_failure_prob) {
                faults.fail_link(Channel {
                    from: node,
                    dim,
                    direction: Direction::Plus,
                });
            }
        }
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probabilities_sample_no_faults() {
        let t = KAryNCube::bidirectional(4, 2).unwrap();
        let faults = sample_fault_set(t, FaultSpec::NONE, 42);
        assert!(faults.is_empty());
    }

    #[test]
    fn sampling_is_deterministic_in_the_seed() {
        let spec = FaultSpec {
            router_failure_prob: 0.1,
            link_failure_prob: 0.15,
        };
        for t in [
            KAryNCube::unidirectional(4, 2).unwrap(),
            KAryNCube::bidirectional(4, 2).unwrap(),
            KAryNCube::mesh(4, 2).unwrap(),
        ] {
            let a = sample_fault_set(t, spec, 7);
            let b = sample_fault_set(t, spec, 7);
            let c = sample_fault_set(t, spec, 8);
            for node in t.nodes() {
                assert_eq!(a.node_failed(node), b.node_failed(node));
            }
            assert_eq!(a.num_failed_routers(), b.num_failed_routers());
            assert_eq!(a.num_failed_links(), b.num_failed_links());
            // A different seed should (for these sizes/probs) differ
            // somewhere; compare the summary counts of all three.
            let differs = a.num_failed_routers() != c.num_failed_routers()
                || a.num_failed_links() != c.num_failed_links()
                || t.nodes().any(|n| a.node_failed(n) != c.node_failed(n));
            assert!(differs, "seed 7 and 8 sampled identical fault sets");
        }
    }

    #[test]
    fn node_failures_match_probability_roughly() {
        let t = KAryNCube::bidirectional(8, 2).unwrap();
        let spec = FaultSpec {
            router_failure_prob: 0.2,
            link_failure_prob: 0.0,
        };
        let mut failed = 0u32;
        for seed in 0..50u64 {
            failed += sample_fault_set(t, spec, seed).num_failed_routers();
        }
        let rate = failed as f64 / (50 * t.num_nodes()) as f64;
        assert!((rate - 0.2).abs() < 0.02, "empirical failure rate {rate}");
    }

    #[test]
    fn certain_failure_kills_everything() {
        let t = KAryNCube::mesh(3, 2).unwrap();
        let faults = sample_fault_set(
            t,
            FaultSpec {
                router_failure_prob: 1.0,
                link_failure_prob: 1.0,
            },
            0,
        );
        assert_eq!(faults.num_failed_routers(), t.num_nodes());
        // Every *existing* physical link failed: a k×k mesh has
        // 2·k·(k-1)·n/... for k=3, n=2: 2 dims × 3 rings × 2 links = 12.
        assert_eq!(faults.num_failed_links(), 12);
    }

    #[test]
    fn link_failure_rate_counts_physical_links_once() {
        // On a bidirectional torus each (node, dim) Plus draw owns one
        // physical link, so the expected count is p·N·n.
        let t = KAryNCube::bidirectional(4, 2).unwrap();
        let spec = FaultSpec {
            router_failure_prob: 0.0,
            link_failure_prob: 1.0,
        };
        let faults = sample_fault_set(t, spec, 3);
        assert_eq!(faults.num_failed_links(), t.num_nodes() * t.n());
    }
}
