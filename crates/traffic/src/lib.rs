//! Traffic generation for k-ary n-cube experiments.
//!
//! Implements assumptions (i)–(iii) of the paper's model:
//!
//! * nodes generate messages independently, following a Poisson process
//!   with mean rate `λ` messages/cycle ([`arrival`]);
//! * destinations follow the hot-spot model of Pfister & Norton \[20\]:
//!   with probability `h` a message is directed to the hot-spot node, with
//!   probability `1-h` to a uniformly-random other node ([`patterns`]);
//! * message length is a fixed `Lm` flits.
//!
//! Beyond the paper's two patterns (uniform and hot-spot) the crate ships
//! the classic synthetic patterns used for extension studies: transpose,
//! bit-complement, bit-reversal, tornado, and nearest-neighbour.
//!
//! All randomness flows through [`rand`]'s `SmallRng`, seeded per node from
//! a single master seed ([`rng`]), making every workload fully reproducible
//! from `(master_seed, node)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod faults;
pub mod patterns;
pub mod rng;
pub mod workload;

pub use arrival::{ArrivalProcess, ArrivalSampler};
pub use faults::{sample_fault_set, FaultSpec};
pub use patterns::{MessageClass, TrafficPattern};
pub use rng::{node_rng, replication_seed};
pub use workload::{GeneratedMessage, NodeWorkload, WorkloadConfig};
