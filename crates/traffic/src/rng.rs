//! Deterministic per-node random-number generators.
//!
//! Every node derives its own `SmallRng` from a master seed and its node id
//! through a SplitMix64 mixing step, so (a) nodes generate traffic
//! independently (assumption (i)) and (b) an entire experiment is
//! reproducible from a single seed regardless of the order in which nodes
//! are stepped.

use kncube_topology::NodeId;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 step: the standard 64-bit finalizer used to decorrelate
/// sequential seeds.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG for `node` under `master_seed`.
pub fn node_rng(master_seed: u64, node: NodeId) -> SmallRng {
    let mixed = splitmix64(master_seed ^ splitmix64(node.0 as u64 + 1));
    SmallRng::seed_from_u64(mixed)
}

/// An auxiliary RNG stream for `node` (e.g. one stream for arrivals and one
/// for destinations), decorrelated from [`node_rng`] by a stream index.
pub fn node_stream_rng(master_seed: u64, node: NodeId, stream: u64) -> SmallRng {
    let mixed =
        splitmix64(master_seed ^ splitmix64(node.0 as u64 + 1) ^ splitmix64(0xABCD_EF01 + stream));
    SmallRng::seed_from_u64(mixed)
}

/// The master seed of replication `rep` of an experiment seeded with
/// `master_seed`.
///
/// This is the single seed-derivation rule shared by every harness that
/// runs repeated trials — parallel replications in the simulator, the
/// sweep cells of the figure binaries — so independent replications of
/// the same experiment can never collide, and the same `(master_seed,
/// rep)` pair always names the same workload no matter which harness runs
/// it.  Replication 0 is `master_seed` itself, so a single-replication
/// run is identical to a plain run with the master seed.
pub fn replication_seed(master_seed: u64, rep: u32) -> u64 {
    if rep == 0 {
        master_seed
    } else {
        // A distinct domain constant keeps the replication stream
        // decorrelated from the node and stream derivations above.
        splitmix64(master_seed ^ splitmix64(0x5EED_0000_0000_0000 + rep as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = node_rng(42, NodeId(7));
        let mut b = node_rng(42, NodeId(7));
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_nodes_diverge() {
        let mut a = node_rng(42, NodeId(7));
        let mut b = node_rng(42, NodeId(8));
        let same = (0..100)
            .filter(|_| a.gen::<u64>() == b.gen::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = node_rng(1, NodeId(0));
        let mut b = node_rng(2, NodeId(0));
        let same = (0..100)
            .filter(|_| a.gen::<u64>() == b.gen::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn replication_zero_is_the_master_seed() {
        assert_eq!(replication_seed(42, 0), 42);
        assert_eq!(replication_seed(7, 0), 7);
    }

    #[test]
    fn replications_diverge_and_are_stable() {
        let seeds: Vec<u64> = (0..64).map(|r| replication_seed(42, r)).collect();
        for (i, &a) in seeds.iter().enumerate() {
            for &b in seeds.iter().skip(i + 1) {
                assert_ne!(a, b, "replication seeds must not collide");
            }
        }
        // Deterministic: the derivation is a pure function.
        assert_eq!(replication_seed(42, 5), replication_seed(42, 5));
        // Different masters give different replication streams.
        assert_ne!(replication_seed(1, 3), replication_seed(2, 3));
    }

    #[test]
    fn streams_diverge() {
        let mut a = node_stream_rng(9, NodeId(3), 0);
        let mut b = node_stream_rng(9, NodeId(3), 1);
        let same = (0..100)
            .filter(|_| a.gen::<u64>() == b.gen::<u64>())
            .count();
        assert_eq!(same, 0);
    }
}
