//! Brute-force graph oracle for the fault-aware router.
//!
//! This suite rebuilds the faulty network as an **explicit digraph in test
//! code** — its own mixed-radix coordinate arithmetic, its own edge
//! enumeration, its own forward breadth-first search — and property-checks
//! the production [`FaultRouter`] against it over a grid of sampled
//! topologies (`k <= 8`, `n <= 4`), both link kinds, torus and mesh, and a
//! spread of deterministic fault sets:
//!
//! * distances agree pair-for-pair (including unreachable markers),
//! * every produced route is legal (edge-by-edge present in the surviving
//!   digraph) and **minimal** (length equals the oracle's BFS distance),
//! * `reachable_pairs` / `reachable_fraction` / `expected_detour` /
//!   `max_finite_distance` match oracle recomputation, with the fault-free
//!   minimal distances themselves re-derived by a second oracle BFS.
//!
//! The only production code the oracle consumes is the `(k, n, link-kind,
//! boundary)` tuple and the fault *events* (which routers / which physical
//! links died) — everything downstream of those is computed twice.

use kncube_topology::{
    Boundary, Channel, Direction, FaultRouter, FaultSet, KAryNCube, LinkKind, NodeId,
};
use std::collections::HashSet;
use std::collections::VecDeque;

// ---------------------------------------------------------------------
// The oracle: an explicit surviving digraph, independent of production
// channel ids, routing tables, and fault predicates.
// ---------------------------------------------------------------------

struct OracleGraph {
    k: u32,
    n: u32,
    bidirectional: bool,
    mesh: bool,
    num_nodes: u32,
    failed_nodes: HashSet<u32>,
    /// Physical links, keyed by their `Plus`-direction source node and
    /// dimension (the canonical end of the link).
    failed_links: HashSet<(u32, u32)>,
}

impl OracleGraph {
    fn new(k: u32, n: u32, link_kind: LinkKind, boundary: Boundary) -> Self {
        OracleGraph {
            k,
            n,
            bidirectional: link_kind == LinkKind::Bidirectional,
            mesh: boundary == Boundary::Mesh,
            num_nodes: k.pow(n),
            failed_nodes: HashSet::new(),
            failed_links: HashSet::new(),
        }
    }

    /// Mixed-radix digit `dim` of `node`, computed from scratch.
    fn coord(&self, node: u32, dim: u32) -> u32 {
        (node / self.k.pow(dim)) % self.k
    }

    /// The node whose digit `dim` is `digit` and whose other digits match
    /// `node`.
    fn with_coord(&self, node: u32, dim: u32, digit: u32) -> u32 {
        let stride = self.k.pow(dim);
        node - self.coord(node, dim) * stride + digit * stride
    }

    /// Record a physical link failure at the canonical (`Plus`-source)
    /// end, mirroring `FaultSet::fail_link`'s no-op on links that do not
    /// exist (mesh wrap-around positions).
    fn fail_link(&mut self, node: u32, dim: u32) {
        if self.mesh && self.coord(node, dim) == self.k - 1 {
            return;
        }
        self.failed_links.insert((node, dim));
    }

    /// Surviving out-edges of `node`: `(neighbor, dim, is_plus)`.
    fn out_edges(&self, node: u32) -> Vec<(u32, u32, bool)> {
        let mut edges = Vec::new();
        if self.failed_nodes.contains(&node) {
            return edges;
        }
        for dim in 0..self.n {
            let c = self.coord(node, dim);
            // Plus edge: exists unless this is the wrap position of a mesh.
            if !(self.mesh && c == self.k - 1) {
                let to = self.with_coord(node, dim, (c + 1) % self.k);
                if !self.failed_nodes.contains(&to) && !self.failed_links.contains(&(node, dim)) {
                    edges.push((to, dim, true));
                }
            }
            // Minus edge: bidirectional networks only; on meshes only away
            // from the 0 face.  Its physical link is the Plus channel of
            // the neighbor we are stepping onto.
            if self.bidirectional && !(self.mesh && c == 0) {
                let to = self.with_coord(node, dim, (c + self.k - 1) % self.k);
                if !self.failed_nodes.contains(&to) && !self.failed_links.contains(&(to, dim)) {
                    edges.push((to, dim, false));
                }
            }
        }
        edges
    }

    /// Whether the directed edge taken by `hop` survives in this graph.
    fn edge_survives(&self, from: u32, to: u32, dim: u32, is_plus: bool) -> bool {
        self.out_edges(from)
            .iter()
            .any(|&(t, d, p)| t == to && d == dim && p == is_plus)
    }

    /// Forward BFS: shortest surviving distance from `src` to every node
    /// (`None` = unreachable).  A failed source reaches nothing, not even
    /// itself.
    fn bfs(&self, src: u32) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.num_nodes as usize];
        if self.failed_nodes.contains(&src) {
            return dist;
        }
        dist[src as usize] = Some(0);
        let mut queue = VecDeque::new();
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let d = dist[u as usize].unwrap();
            for (v, _, _) in self.out_edges(u) {
                if dist[v as usize].is_none() {
                    dist[v as usize] = Some(d + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// The full `N × N` distance table, `table[src][dest]`.
    fn all_distances(&self) -> Vec<Vec<Option<u32>>> {
        (0..self.num_nodes).map(|src| self.bfs(src)).collect()
    }
}

/// splitmix64 — the test's own deterministic fault sampler.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn roll(state: &mut u64, prob: f64) -> bool {
    (splitmix64(state) >> 11) as f64 / ((1u64 << 53) as f64) < prob
}

/// Sample the same fault events into the production `FaultSet` and the
/// oracle graph, then hand both back.
fn sample_faults(
    topo: KAryNCube,
    node_prob: f64,
    link_prob: f64,
    seed: u64,
) -> (FaultSet, OracleGraph) {
    let mut faults = FaultSet::none(topo);
    let mut oracle = OracleGraph::new(topo.k(), topo.n(), topo.link_kind(), topo.boundary());
    let mut state = seed;
    for node in 0..topo.num_nodes() {
        if roll(&mut state, node_prob) {
            faults.fail_node(NodeId(node));
            oracle.failed_nodes.insert(node);
        }
        for dim in 0..topo.n() {
            if roll(&mut state, link_prob) {
                faults.fail_link(Channel {
                    from: NodeId(node),
                    dim,
                    direction: Direction::Plus,
                });
                oracle.fail_link(node, dim);
            }
        }
    }
    (faults, oracle)
}

/// The sampled topology grid: every `(k, n)` stays within the oracle
/// budget (`k <= 8`, `n <= 4`, at most a few hundred nodes), and each pair
/// is exercised as a unidirectional torus, a bidirectional torus, and a
/// mesh.
fn sampled_topologies() -> Vec<KAryNCube> {
    let mut topologies = Vec::new();
    for &(k, n) in &[
        (8, 1),
        (5, 2),
        (6, 2),
        (8, 2),
        (3, 3),
        (4, 3),
        (2, 4),
        (3, 4),
    ] {
        topologies.push(KAryNCube::unidirectional(k, n).unwrap());
        topologies.push(KAryNCube::bidirectional(k, n).unwrap());
        topologies.push(KAryNCube::mesh(k, n).unwrap());
    }
    topologies
}

/// The full property check of one `(topology, fault set)` instance.
fn check_against_oracle(topo: KAryNCube, faults: FaultSet, oracle: &OracleGraph, ctx: &str) {
    let router = FaultRouter::new(faults);
    let dist = oracle.all_distances();
    // Fault-free minimal distances, re-derived by a second oracle BFS so
    // the detour check does not lean on `KAryNCube::hop_count`.
    let healthy = OracleGraph::new(topo.k(), topo.n(), topo.link_kind(), topo.boundary());
    let minimal = healthy.all_distances();

    let mut reachable = 0u64;
    let mut extra_hops = 0u64;
    let mut max_finite = 0u32;
    for src in topo.nodes() {
        for dest in topo.nodes() {
            let expected = dist[src.index()][dest.index()];
            assert_eq!(
                router.distance(src, dest),
                expected,
                "{ctx}: distance {:?}→{:?}",
                topo.coords(src),
                topo.coords(dest)
            );
            let route = router.route(src, dest);
            match expected {
                None => assert!(route.is_none(), "{ctx}: route for unreachable pair"),
                Some(d) => {
                    max_finite = max_finite.max(d);
                    if src != dest {
                        reachable += 1;
                        extra_hops += (d - minimal[src.index()][dest.index()].unwrap()) as u64;
                    }
                    // Legal: every hop is a surviving edge of the oracle
                    // digraph, and the hops chain src → dest.  Minimal:
                    // exactly the oracle's BFS distance many of them.
                    let route = route.unwrap();
                    assert_eq!(route.len() as u32, d, "{ctx}: route not minimal");
                    let mut cur = src;
                    for hop in &route {
                        assert_eq!(hop.channel.from, cur, "{ctx}: broken hop chain");
                        let to = hop.channel.to(&topo);
                        assert!(
                            oracle.edge_survives(
                                cur.0,
                                to.0,
                                hop.channel.dim,
                                hop.channel.direction == Direction::Plus
                            ),
                            "{ctx}: route crosses a dead edge {:?}→{:?} dim {}",
                            topo.coords(cur),
                            topo.coords(to),
                            hop.channel.dim
                        );
                        cur = to;
                    }
                    assert_eq!(cur, dest, "{ctx}: route ends elsewhere");
                }
            }
        }
    }

    assert_eq!(
        router.reachable_pairs(),
        reachable,
        "{ctx}: reachable_pairs"
    );
    let n = topo.num_nodes() as u64;
    let expected_fraction = reachable as f64 / (n * (n - 1)) as f64;
    assert_eq!(
        router.reachable_fraction().to_bits(),
        expected_fraction.to_bits(),
        "{ctx}: reachable_fraction"
    );
    let expected_detour = if reachable == 0 {
        0.0
    } else {
        extra_hops as f64 / reachable as f64
    };
    assert_eq!(
        router.expected_detour().to_bits(),
        expected_detour.to_bits(),
        "{ctx}: expected_detour"
    );
    assert_eq!(
        router.max_finite_distance(),
        max_finite,
        "{ctx}: max_finite_distance"
    );
}

#[test]
fn fault_free_router_matches_the_oracle_everywhere() {
    for topo in sampled_topologies() {
        let (faults, oracle) = sample_faults(topo, 0.0, 0.0, 1);
        let ctx = format!(
            "{:?}/{:?} k={} n={} p=0",
            topo.link_kind(),
            topo.boundary(),
            topo.k(),
            topo.n()
        );
        check_against_oracle(topo, faults, &oracle, &ctx);
    }
}

#[test]
fn router_failures_match_the_oracle() {
    for topo in sampled_topologies() {
        for seed in [11, 12] {
            let (faults, oracle) = sample_faults(topo, 0.15, 0.0, seed);
            let ctx = format!(
                "{:?}/{:?} k={} n={} routers seed {seed} ({} dead)",
                topo.link_kind(),
                topo.boundary(),
                topo.k(),
                topo.n(),
                faults.num_failed_routers()
            );
            check_against_oracle(topo, faults, &oracle, &ctx);
        }
    }
}

#[test]
fn link_failures_match_the_oracle() {
    for topo in sampled_topologies() {
        for seed in [21, 22] {
            let (faults, oracle) = sample_faults(topo, 0.0, 0.15, seed);
            let ctx = format!(
                "{:?}/{:?} k={} n={} links seed {seed} ({} dead)",
                topo.link_kind(),
                topo.boundary(),
                topo.k(),
                topo.n(),
                faults.num_failed_links()
            );
            check_against_oracle(topo, faults, &oracle, &ctx);
        }
    }
}

#[test]
fn mixed_failures_match_the_oracle() {
    for topo in sampled_topologies() {
        for seed in [31, 32] {
            let (faults, oracle) = sample_faults(topo, 0.08, 0.08, seed);
            let ctx = format!(
                "{:?}/{:?} k={} n={} mixed seed {seed}",
                topo.link_kind(),
                topo.boundary(),
                topo.k(),
                topo.n()
            );
            check_against_oracle(topo, faults, &oracle, &ctx);
        }
    }
}

#[test]
fn heavy_failures_match_the_oracle_down_to_fragmentation() {
    // 35% dead routers shatters these small networks into islands; the
    // oracle must agree on *which* pairs die, not just how many.
    for topo in sampled_topologies() {
        let (faults, oracle) = sample_faults(topo, 0.35, 0.2, 41);
        let ctx = format!(
            "{:?}/{:?} k={} n={} heavy",
            topo.link_kind(),
            topo.boundary(),
            topo.k(),
            topo.n()
        );
        check_against_oracle(topo, faults, &oracle, &ctx);
    }
}

#[test]
fn single_targeted_faults_match_the_oracle() {
    // Deterministic single-fault placements (no sampling): each router and
    // each physical link of a small topology killed one at a time.
    for &(k, n) in &[(5, 1), (4, 2), (3, 2)] {
        for topo in [
            KAryNCube::unidirectional(k, n).unwrap(),
            KAryNCube::bidirectional(k, n).unwrap(),
            KAryNCube::mesh(k, n).unwrap(),
        ] {
            for node in topo.nodes() {
                let mut faults = FaultSet::none(topo);
                faults.fail_node(node);
                let mut oracle =
                    OracleGraph::new(topo.k(), topo.n(), topo.link_kind(), topo.boundary());
                oracle.failed_nodes.insert(node.0);
                let ctx = format!(
                    "{:?}/{:?} k={k} n={n} node {:?}",
                    topo.link_kind(),
                    topo.boundary(),
                    topo.coords(node)
                );
                check_against_oracle(topo, faults, &oracle, &ctx);

                for dim in 0..topo.n() {
                    let mut faults = FaultSet::none(topo);
                    faults.fail_link(Channel {
                        from: node,
                        dim,
                        direction: Direction::Plus,
                    });
                    let mut oracle =
                        OracleGraph::new(topo.k(), topo.n(), topo.link_kind(), topo.boundary());
                    oracle.fail_link(node.0, dim);
                    let ctx = format!(
                        "{:?}/{:?} k={k} n={n} link {:?}+{dim}",
                        topo.link_kind(),
                        topo.boundary(),
                        topo.coords(node)
                    );
                    check_against_oracle(topo, faults, &oracle, &ctx);
                }
            }
        }
    }
}
