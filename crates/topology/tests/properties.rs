//! Property-based tests for the topology substrate.

use kncube_topology::hotspot::{DIM_X, DIM_Y};
use kncube_topology::{Channel, Direction, HotSpotGeometry, KAryNCube, VcClass};
use proptest::prelude::*;

/// Strategy over modest unidirectional 2-D tori plus a hot-spot node.
fn torus_and_hot() -> impl Strategy<Value = (KAryNCube, u32)> {
    (2u32..=9).prop_flat_map(|k| {
        let t = KAryNCube::unidirectional(k, 2).unwrap();
        let n = t.num_nodes();
        (Just(t), 0..n)
    })
}

proptest! {
    #[test]
    fn routes_are_minimal_and_valid((t, hot) in torus_and_hot(), src in 0u32..81) {
        let src = kncube_topology::NodeId(src % t.num_nodes());
        let hot = kncube_topology::NodeId(hot);
        let route = t.dor_route(src, hot);
        prop_assert_eq!(route.len() as u32, t.hop_count(src, hot));
        let mut cur = src;
        for hop in &route.hops {
            prop_assert_eq!(hop.channel.from, cur);
            cur = hop.channel.to(&t);
        }
        prop_assert_eq!(cur, hot);
    }

    #[test]
    fn route_hops_stay_in_source_x_ring_then_dest_y_ring((t, hot) in torus_and_hot(), src in 0u32..81) {
        let src = kncube_topology::NodeId(src % t.num_nodes());
        let hot = kncube_topology::NodeId(hot);
        let route = t.dor_route(src, hot);
        for hop in &route.hops {
            match hop.channel.dim {
                DIM_X => prop_assert_eq!(t.coord(hop.channel.from, DIM_Y), t.coord(src, DIM_Y)),
                DIM_Y => prop_assert_eq!(t.coord(hop.channel.from, DIM_X), t.coord(hot, DIM_X)),
                _ => prop_assert!(false, "unexpected dimension"),
            }
        }
    }

    #[test]
    fn hot_fractions_match_bruteforce((t, hot) in torus_and_hot(), from in 0u32..81, dim in 0u32..2) {
        let g = HotSpotGeometry::new(t, kncube_topology::NodeId(hot)).unwrap();
        let from = kncube_topology::NodeId(from % t.num_nodes());
        let c = Channel { from, dim, direction: Direction::Plus };
        let counted = g.count_hot_sources_crossing(c) as f64 / t.num_nodes() as f64;
        let expected = if dim == DIM_X {
            g.p_hx(g.x_channel_distance(c).unwrap())
        } else if g.y_channel_distance(c).is_some() {
            g.p_hy(g.y_channel_distance(c).unwrap())
        } else {
            0.0
        };
        prop_assert!((counted - expected).abs() < 1e-12,
            "channel {:?} dim {} counted {} expected {}", t.coords(from), dim, counted, expected);
    }

    #[test]
    fn vc_labels_strictly_decrease_along_routes((t, _) in torus_and_hot(), a in 0u32..81, b in 0u32..81) {
        // Dally-Seitz deadlock-freedom witness: label every virtual channel
        // of a ring with label(Low, i) = 2k-1-i and label(High, i) = k-1-i
        // (i = source coordinate). Every dimension-order route must visit
        // channels of a ring in strictly decreasing label order; since
        // messages acquire channels in path order, all channel-wait cycles
        // would need a label increase somewhere, so none exist.
        let a = kncube_topology::NodeId(a % t.num_nodes());
        let b = kncube_topology::NodeId(b % t.num_nodes());
        let k = t.k();
        let route = t.dor_route(a, b);
        for dim in 0..t.n() {
            let mut last_label: Option<u32> = None;
            for hop in route.hops.iter().filter(|h| h.channel.dim == dim) {
                let i = t.coord(hop.channel.from, dim);
                let label = match hop.vc_class {
                    VcClass::Low => 2 * k - 1 - i,
                    VcClass::High => k - 1 - i,
                };
                if let Some(prev) = last_label {
                    prop_assert!(label < prev,
                        "labels must strictly decrease: {} then {}", prev, label);
                }
                last_label = Some(label);
            }
        }
    }
}
