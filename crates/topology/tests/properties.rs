//! Property-based tests for the topology substrate: the 2-D cases the
//! paper analyses, plus the n-dimensional generalization for random
//! `(k, n)` up to `k = 16`, `n = 4`.

use kncube_topology::hotspot::{DIM_X, DIM_Y};
use kncube_topology::{
    Boundary, Channel, Direction, FaultRouter, FaultSet, HotSpotGeometry, KAryNCube, NodeId,
    VcClass,
};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Strategy over modest unidirectional 2-D tori plus a hot-spot node.
fn torus_and_hot() -> impl Strategy<Value = (KAryNCube, u32)> {
    (2u32..=9).prop_flat_map(|k| {
        let t = KAryNCube::unidirectional(k, 2).unwrap();
        let n = t.num_nodes();
        (Just(t), 0..n)
    })
}

/// Strategy over unidirectional k-ary n-cubes (`k <= 16`, `n <= 4`,
/// bounded to <= 4096 nodes so brute-force oracles stay fast) plus a pair
/// of node ids.
fn ncube_and_pair() -> impl Strategy<Value = (KAryNCube, u32, u32)> {
    (2u32..=16, 1u32..=4).prop_flat_map(|(k, n)| {
        let k = if (k as u64).pow(n) > 4096 {
            // Clamp the radix so high dimensions stay enumerable.
            match n {
                3 => k.min(8),
                4 => k.min(6),
                _ => k,
            }
        } else {
            k
        };
        let t = KAryNCube::unidirectional(k, n).unwrap();
        let nodes = t.num_nodes();
        (Just(t), 0..nodes, 0..nodes)
    })
}

/// Strategy over bidirectional k-ary n-cubes (tori and meshes) plus a pair
/// of node ids.
fn bidirectional_and_pair() -> impl Strategy<Value = (KAryNCube, u32, u32)> {
    (2u32..=9, 1u32..=3, proptest::bool::ANY).prop_flat_map(|(k, n, mesh)| {
        let t = if mesh {
            KAryNCube::mesh(k, n).unwrap()
        } else {
            KAryNCube::bidirectional(k, n).unwrap()
        };
        let nodes = t.num_nodes();
        (Just(t), 0..nodes, 0..nodes)
    })
}

/// Strategy over faulty networks: a small topology of any link kind and
/// boundary plus a random fault set (router and physical-link failures
/// drawn from explicit index lists, so shrinking peels faults off one by
/// one).
fn faulty_network() -> impl Strategy<Value = FaultSet> {
    (2u32..=6, 1u32..=3, 0u8..3).prop_flat_map(|(k, n, kind)| {
        let t = match kind {
            0 => KAryNCube::unidirectional(k, n).unwrap(),
            1 => KAryNCube::bidirectional(k, n).unwrap(),
            _ => KAryNCube::mesh(k, n).unwrap(),
        };
        let nodes = t.num_nodes();
        (
            Just(t),
            proptest::collection::vec(0..nodes, 0..=3),
            proptest::collection::vec((0..nodes, 0..n), 0..=4),
        )
            .prop_map(|(t, dead_nodes, dead_links)| {
                let mut faults = FaultSet::none(t);
                for node in dead_nodes {
                    faults.fail_node(NodeId(node));
                }
                for (node, dim) in dead_links {
                    faults.fail_link(Channel {
                        from: NodeId(node),
                        dim,
                        direction: Direction::Plus,
                    });
                }
                faults
            })
    })
}

/// Reference BFS distance over the surviving digraph, using only the
/// fault set's public element predicates (the fully independent explicit
/// graph oracle lives in `tests/fault_oracle.rs`).
fn bfs_surviving_distance(faults: &FaultSet, src: NodeId, dest: NodeId) -> Option<u32> {
    let t = *faults.topology();
    if faults.node_failed(src) {
        return None;
    }
    let mut dist: Vec<Option<u32>> = vec![None; t.num_nodes() as usize];
    dist[src.index()] = Some(0);
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()].unwrap();
        for dim in 0..t.n() {
            for direction in [Direction::Plus, Direction::Minus] {
                let c = Channel {
                    from: u,
                    dim,
                    direction,
                };
                if !faults.channel_failed(c) && dist[c.to(&t).index()].is_none() {
                    dist[c.to(&t).index()] = Some(d + 1);
                    queue.push_back(c.to(&t));
                }
            }
        }
    }
    dist[dest.index()]
}

proptest! {
    #[test]
    fn fault_routes_never_traverse_failed_elements(faults in faulty_network(), a in 0u32..216, b in 0u32..216) {
        let t = *faults.topology();
        let (src, dest) = (NodeId(a % t.num_nodes()), NodeId(b % t.num_nodes()));
        let router = FaultRouter::new(faults);
        if let Some(route) = router.route(src, dest) {
            let mut cur = src;
            for hop in &route {
                prop_assert_eq!(hop.channel.from, cur);
                prop_assert!(t.channel_exists(hop.channel),
                    "route used nonexistent channel {:?}", hop.channel);
                prop_assert!(!router.fault_set().channel_failed(hop.channel),
                    "route crossed failed channel {:?}", hop.channel);
                prop_assert!(!router.fault_set().node_failed(hop.channel.to(&t)),
                    "route entered failed router");
                cur = hop.channel.to(&t);
            }
            prop_assert_eq!(cur, dest);
        }
    }

    #[test]
    fn fault_routes_are_minimal_among_surviving_paths(faults in faulty_network(), a in 0u32..216, b in 0u32..216) {
        let t = *faults.topology();
        let (src, dest) = (NodeId(a % t.num_nodes()), NodeId(b % t.num_nodes()));
        let oracle = bfs_surviving_distance(&faults, src, dest);
        let router = FaultRouter::new(faults);
        prop_assert_eq!(router.distance(src, dest), oracle,
            "distance mismatch {:?}→{:?}", t.coords(src), t.coords(dest));
        match oracle {
            None => prop_assert!(router.route(src, dest).is_none()),
            Some(d) => {
                let route = router.route(src, dest).unwrap();
                prop_assert_eq!(route.len() as u32, d,
                    "route not minimal among surviving paths");
                // A detour is never shorter than the fault-free minimum.
                prop_assert!(d >= t.hop_count(src, dest));
            }
        }
    }

    // Dally–Seitz dateline rule: a torus hop rides the Low class iff the
    // remaining travel in its dimension still has to cross the wrap link
    // (`VcClass::for_hop`), with one detour special case — a sidestep hop
    // whose coordinate already matches the destination is Low iff the hop
    // itself physically crosses the wrap.  This matches `dor_route` exactly
    // on fault-free routes and keeps the per-dimension channel-dependence
    // graph acyclic (see `FaultRouter::deadlock_free`).
    #[test]
    fn fault_routes_on_tori_follow_the_dateline_class_rule(faults in faulty_network(), a in 0u32..216, b in 0u32..216) {
        let t = *faults.topology();
        prop_assume!(t.boundary() == Boundary::Torus);
        let (src, dest) = (NodeId(a % t.num_nodes()), NodeId(b % t.num_nodes()));
        let router = FaultRouter::new(faults);
        if let Some(route) = router.route(src, dest) {
            for hop in &route {
                let cur = t.coord(hop.channel.from, hop.channel.dim);
                let target = t.coord(dest, hop.channel.dim);
                let want = if cur == target {
                    let crosses = match hop.channel.direction {
                        Direction::Plus => cur == t.k() - 1,
                        Direction::Minus => cur == 0,
                    };
                    if crosses { VcClass::Low } else { VcClass::High }
                } else {
                    VcClass::for_hop(cur, target, hop.channel.direction)
                };
                prop_assert_eq!(hop.vc_class, want,
                    "dateline class rule violated at {:?}", hop.channel);
            }
        }
    }

    #[test]
    fn mesh_fault_routes_stay_in_the_high_class(faults in faulty_network(), a in 0u32..216, b in 0u32..216) {
        let t = *faults.topology();
        prop_assume!(t.boundary() == Boundary::Mesh);
        let (src, dest) = (NodeId(a % t.num_nodes()), NodeId(b % t.num_nodes()));
        let router = FaultRouter::new(faults);
        if let Some(route) = router.route(src, dest) {
            prop_assert!(route.iter().all(|h| h.vc_class == VcClass::High));
        }
    }

    #[test]
    fn bidirectional_routes_are_minimal_and_never_overshoot((t, a, b) in bidirectional_and_pair()) {
        let (a, b) = (NodeId(a), NodeId(b));
        let route = t.dor_route(a, b);
        prop_assert_eq!(route.len() as u32, t.hop_count(a, b));
        // Per dimension: the route takes |shortest signed offset| hops, all
        // in the same direction.
        for d in 0..t.n() {
            let offset = t.ring_offset_routed(t.coord(a, d), t.coord(b, d));
            let hops: Vec<_> = route.hops.iter().filter(|h| h.channel.dim == d).collect();
            prop_assert_eq!(hops.len() as i64, offset.abs());
            let want = if offset > 0 { Direction::Plus } else { Direction::Minus };
            prop_assert!(hops.iter().all(|h| h.channel.direction == want));
        }
        let mut cur = a;
        for hop in &route.hops {
            prop_assert_eq!(hop.channel.from, cur);
            cur = hop.channel.to(&t);
        }
        prop_assert_eq!(cur, b);
    }

    #[test]
    fn routes_are_minimal_and_valid((t, hot) in torus_and_hot(), src in 0u32..81) {
        let src = kncube_topology::NodeId(src % t.num_nodes());
        let hot = kncube_topology::NodeId(hot);
        let route = t.dor_route(src, hot);
        prop_assert_eq!(route.len() as u32, t.hop_count(src, hot));
        let mut cur = src;
        for hop in &route.hops {
            prop_assert_eq!(hop.channel.from, cur);
            cur = hop.channel.to(&t);
        }
        prop_assert_eq!(cur, hot);
    }

    #[test]
    fn route_hops_stay_in_source_x_ring_then_dest_y_ring((t, hot) in torus_and_hot(), src in 0u32..81) {
        let src = kncube_topology::NodeId(src % t.num_nodes());
        let hot = kncube_topology::NodeId(hot);
        let route = t.dor_route(src, hot);
        for hop in &route.hops {
            match hop.channel.dim {
                DIM_X => prop_assert_eq!(t.coord(hop.channel.from, DIM_Y), t.coord(src, DIM_Y)),
                DIM_Y => prop_assert_eq!(t.coord(hop.channel.from, DIM_X), t.coord(hot, DIM_X)),
                _ => prop_assert!(false, "unexpected dimension"),
            }
        }
    }

    #[test]
    fn hot_fractions_match_bruteforce((t, hot) in torus_and_hot(), from in 0u32..81, dim in 0u32..2) {
        let g = HotSpotGeometry::new(t, kncube_topology::NodeId(hot));
        let from = kncube_topology::NodeId(from % t.num_nodes());
        let c = Channel { from, dim, direction: Direction::Plus };
        let counted = g.count_hot_sources_crossing(c) as f64 / t.num_nodes() as f64;
        let expected = if dim == DIM_X {
            g.p_hx(g.x_channel_distance(c).unwrap())
        } else if g.y_channel_distance(c).is_some() {
            g.p_hy(g.y_channel_distance(c).unwrap())
        } else {
            0.0
        };
        prop_assert!((counted - expected).abs() < 1e-12,
            "channel {:?} dim {} counted {} expected {}", t.coords(from), dim, counted, expected);
    }

    #[test]
    fn vc_labels_strictly_decrease_along_routes((t, _) in torus_and_hot(), a in 0u32..81, b in 0u32..81) {
        // Dally-Seitz deadlock-freedom witness: label every virtual channel
        // of a ring with label(Low, i) = 2k-1-i and label(High, i) = k-1-i
        // (i = source coordinate). Every dimension-order route must visit
        // channels of a ring in strictly decreasing label order; since
        // messages acquire channels in path order, all channel-wait cycles
        // would need a label increase somewhere, so none exist.
        let a = kncube_topology::NodeId(a % t.num_nodes());
        let b = kncube_topology::NodeId(b % t.num_nodes());
        let k = t.k();
        let route = t.dor_route(a, b);
        for dim in 0..t.n() {
            let mut last_label: Option<u32> = None;
            for hop in route.hops.iter().filter(|h| h.channel.dim == dim) {
                let i = t.coord(hop.channel.from, dim);
                let label = match hop.vc_class {
                    VcClass::Low => 2 * k - 1 - i,
                    VcClass::High => k - 1 - i,
                };
                if let Some(prev) = last_label {
                    prop_assert!(label < prev,
                        "labels must strictly decrease: {} then {}", prev, label);
                }
                last_label = Some(label);
            }
        }
    }

    // ------------------------------------------------------------------
    // n-dimensional dimension-order routing, random (k, n) up to k=16, n=4.
    // ------------------------------------------------------------------

    #[test]
    fn ndim_hop_count_is_sum_of_per_dimension_ring_offsets((t, a, b) in ncube_and_pair()) {
        let (a, b) = (NodeId(a), NodeId(b));
        let per_dim: u32 = (0..t.n())
            .map(|d| t.ring_distance_forward(t.coord(a, d), t.coord(b, d)))
            .sum();
        prop_assert_eq!(t.hop_count(a, b), per_dim);
        prop_assert_eq!(t.dor_route(a, b).len() as u32, per_dim);
    }

    #[test]
    fn ndim_routes_are_minimal_in_the_unidirectional_metric((t, a, b) in ncube_and_pair()) {
        // Minimality: any walk from a to b over unidirectional ring links
        // must move at least the forward ring distance in every dimension
        // (each hop advances exactly one dimension by exactly one forward
        // step, and dimensions are independent); the dimension-order route
        // spends exactly that many hops per dimension and no more.
        let (a, b) = (NodeId(a), NodeId(b));
        let route = t.dor_route(a, b);
        for d in 0..t.n() {
            let needed = t.ring_distance_forward(t.coord(a, d), t.coord(b, d));
            let spent = route.hops.iter().filter(|h| h.channel.dim == d).count() as u32;
            prop_assert_eq!(spent, needed, "dim {} of route {:?}→{:?}",
                d, t.coords(a), t.coords(b));
        }
        // And the hops are grouped in ascending dimension order
        // (deterministic dimension-order discipline).
        let dims: Vec<u32> = route.hops.iter().map(|h| h.channel.dim).collect();
        let mut sorted = dims.clone();
        sorted.sort_unstable();
        prop_assert_eq!(dims, sorted);
    }

    #[test]
    fn ndim_vc_class_assignment_never_cycles((t, a, b) in ncube_and_pair()) {
        // Deadlock-freedom invariant in every dimension: once a message
        // stops needing the wrap-around link of a ring (switches to the
        // High class) it never returns to the Low class, and the
        // Dally-Seitz channel labels strictly decrease along the route.
        let (a, b) = (NodeId(a), NodeId(b));
        let k = t.k();
        let route = t.dor_route(a, b);
        for dim in 0..t.n() {
            let mut seen_high = false;
            let mut last_label: Option<u32> = None;
            for hop in route.hops.iter().filter(|h| h.channel.dim == dim) {
                match hop.vc_class {
                    VcClass::High => seen_high = true,
                    VcClass::Low => prop_assert!(!seen_high,
                        "Low after High in dim {} of {:?}→{:?}", dim, t.coords(a), t.coords(b)),
                }
                let i = t.coord(hop.channel.from, dim);
                let label = match hop.vc_class {
                    VcClass::Low => 2 * k - 1 - i,
                    VcClass::High => k - 1 - i,
                };
                if let Some(prev) = last_label {
                    prop_assert!(label < prev, "label increase {} → {}", prev, label);
                }
                last_label = Some(label);
            }
        }
    }

    #[test]
    fn ndim_incremental_routing_agrees_with_full_route((t, a, b) in ncube_and_pair()) {
        // The simulator's per-hop routing must replay the closed-form
        // route hop for hop in any dimension count.
        let (a, b) = (NodeId(a), NodeId(b));
        let route = t.dor_route(a, b);
        let mut cur = a;
        for hop in &route.hops {
            let next = t.dor_next_hop(cur, b);
            prop_assert_eq!(next.as_ref(), Some(hop));
            cur = hop.channel.to(&t);
        }
        prop_assert_eq!(t.dor_next_hop(cur, b), None);
    }

    #[test]
    fn ndim_hot_fractions_match_bruteforce((t, hot, from) in ncube_and_pair(), dim in 0u32..4) {
        // Generalized Eqs. 4-5 against route enumeration on random cubes.
        prop_assume!(t.num_nodes() <= 1024); // keep the N-route oracle fast
        let dim = dim % t.n();
        let g = HotSpotGeometry::new(t, NodeId(hot));
        let c = Channel { from: NodeId(from), dim, direction: Direction::Plus };
        let counted = g.count_hot_sources_crossing(c) as f64 / t.num_nodes() as f64;
        let expected = match g.hot_channel_distance(c) {
            Some(j) => g.p_hot(dim, j),
            None => 0.0,
        };
        prop_assert!((counted - expected).abs() < 1e-12,
            "k={} n={} dim={} counted {} expected {}", t.k(), t.n(), dim, counted, expected);
    }
}
