//! Hot-spot geometry of §3 of the paper, generalized to arbitrary k-ary
//! n-cubes.
//!
//! With dimension-order routing (dimension 0 first) every hot-spot message
//! corrects its coordinates in ascending dimension order, so all of its
//! movement in dimension `d` happens inside the *hot ring of dimension
//! `d`* that matches the hot-spot node on every dimension below `d`.  A
//! channel of such a ring is **`j` hops away** (`1 <= j <= k`) when `j`
//! forward hops from its source node reach the hot node's coordinate;
//! `j = k` names the channel *leaving* the hot coordinate (the paper's
//! convention for "distance zero").
//!
//! The fraction of system nodes whose hot-spot traffic crosses a hot
//! dimension-`d` channel `j` hops away is the product-over-rings
//! generalization of Eqs. (4)–(5):
//!
//! ```text
//! P_{h,d,j} = k^d (k - j) / N
//! ```
//!
//! (`k - j` source coordinates behind the channel in its own ring, times
//! the `k^d` free coordinates in the already-corrected dimensions below
//! `d`; the coordinates above `d` are pinned to the channel's ring.)  The
//! paper's 2-D forms are the `d = 0` ("x", Eq. 4) and `d = 1` ("y", Eq. 5)
//! instances:
//!
//! ```text
//! P_hx,j = (k - j) / N          (x channel, j hops from the hot y-ring)
//! P_hy,j = k (k - j) / N        (hot y-ring channel, j hops from hot node)
//! ```
//!
//! All of this is verified against brute-force route enumeration in the
//! tests, for 2-D and higher-dimensional cubes alike.

use crate::channel::{Channel, Direction};
use crate::geometry::{Boundary, KAryNCube, LinkKind, NodeId};
use crate::ring::Ring;

/// Dimension index of the paper's `x` dimension.
pub const DIM_X: u32 = 0;
/// Dimension index of the paper's `y` dimension.
pub const DIM_Y: u32 = 1;

/// Classification of a source node relative to the hot-spot node in the
/// paper's 2-D taxonomy, used by the analytical model to weight per-source
/// latencies (Eqs. 22, 24, 32).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SourceClass {
    /// The hot-spot node itself (generates only regular traffic).
    HotNode,
    /// A node of the hot y-ring, `j` hops (`1..k`) from the hot-spot node.
    HotYRing {
        /// Forward `y` distance to the hot-spot node.
        j: u32,
    },
    /// Any other node: within the x-ring `t` hops (`1..=k`) from the
    /// hot-spot node, `j` hops (`1..k`) from the hot y-ring.  `t = k` means
    /// the x-ring containing the hot-spot node.
    XRing {
        /// Forward `x` distance to the hot y-ring (column of the hot node).
        j: u32,
        /// Distance of the node's x-ring from the hot-spot node (paper
        /// convention: `k` for the hot node's own x-ring).
        t: u32,
    },
}

/// Hot-spot geometry helper for any k-ary n-cube or mesh.
///
/// The paper's closed forms ([`HotSpotGeometry::p_hot`] and friends) are
/// the unidirectional-torus instances; the generalized per-channel form is
/// [`HotSpotGeometry::p_hot_channel`], which covers bidirectional tori
/// (signed shortest-path offsets, ties positive) and meshes (no
/// wrap-around) as well.
#[derive(Clone, Copy, Debug)]
pub struct HotSpotGeometry {
    topo: KAryNCube,
    hot: NodeId,
}

impl HotSpotGeometry {
    /// Build the geometry.  Every link kind and boundary is supported: the
    /// unidirectional torus is the paper's analysis, the bidirectional
    /// torus and the mesh use the generalized per-channel fractions of
    /// [`HotSpotGeometry::p_hot_channel`].
    pub fn new(topo: KAryNCube, hot: NodeId) -> Self {
        HotSpotGeometry { topo, hot }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &KAryNCube {
        &self.topo
    }

    /// The hot-spot node.
    pub fn hot_node(&self) -> NodeId {
        self.hot
    }

    /// The hot y-ring: the dimension-`y` ring containing the hot-spot node
    /// (2-D naming; in general this is the hot ring of dimension 1).
    pub fn hot_y_ring(&self) -> Ring {
        self.topo.ring_of(self.hot, DIM_Y)
    }

    /// Paper distance convention: forward distance mapped into `1..=k`, with
    /// `k` standing for "zero" (the channel leaving the reference node /
    /// the reference ring itself).
    #[inline]
    fn paper_distance(&self, forward: u32) -> u32 {
        if forward == 0 {
            self.topo.k()
        } else {
            forward
        }
    }

    /// Whether `channel` carries hot-spot traffic, and at which paper
    /// distance (`1..=k`) from the hot coordinate of its dimension.
    ///
    /// A dimension-`d` channel carries hot traffic iff its source node
    /// already matches the hot node on every dimension *below* `d`
    /// (dimension-order routing corrects lower dimensions first), so every
    /// dimension-0 channel qualifies while only one in `k^d` rings of
    /// dimension `d` does.  Returns `None` for channels that no hot-spot
    /// route crosses.
    pub fn hot_channel_distance(&self, channel: Channel) -> Option<u32> {
        if channel.direction != Direction::Plus {
            return None;
        }
        for lower in 0..channel.dim {
            if self.topo.coord(channel.from, lower) != self.topo.coord(self.hot, lower) {
                return None;
            }
        }
        let fwd = self.topo.ring_distance_forward(
            self.topo.coord(channel.from, channel.dim),
            self.topo.coord(self.hot, channel.dim),
        );
        Some(self.paper_distance(fwd))
    }

    /// Distance (`1..=k`) of a hot-y-ring channel from the hot-spot node.
    /// Returns `None` for channels that are not y-channels of the hot
    /// y-ring (2-D naming for [`HotSpotGeometry::hot_channel_distance`] at
    /// `dim = 1`).
    pub fn y_channel_distance(&self, channel: Channel) -> Option<u32> {
        if channel.dim != DIM_Y {
            return None;
        }
        self.hot_channel_distance(channel)
    }

    /// Distance (`1..=k`) of an x-channel from the hot y-ring.  Returns
    /// `None` for non-x channels (2-D naming for
    /// [`HotSpotGeometry::hot_channel_distance`] at `dim = 0`, where every
    /// ring carries hot traffic).
    pub fn x_channel_distance(&self, channel: Channel) -> Option<u32> {
        if channel.dim != DIM_X {
            return None;
        }
        self.hot_channel_distance(channel)
    }

    /// Distance (`1..=k`) of the x-ring containing `node` from the hot-spot
    /// node (`k` for the hot node's own x-ring).
    pub fn x_ring_distance(&self, node: NodeId) -> u32 {
        let fwd = self.topo.ring_distance_forward(
            self.topo.coord(node, DIM_Y),
            self.topo.coord(self.hot, DIM_Y),
        );
        self.paper_distance(fwd)
    }

    /// The forward distance from `src` to the hot node in every dimension —
    /// the source's position in the generalized source taxonomy.  A
    /// hot-spot message from `src` crosses exactly the hot channels of
    /// dimension `d` at distances `profile[d], profile[d]-1, …, 1`.
    pub fn distance_profile(&self, src: NodeId) -> Vec<u32> {
        (0..self.topo.n())
            .map(|d| {
                self.topo
                    .ring_distance_forward(self.topo.coord(src, d), self.topo.coord(self.hot, d))
            })
            .collect()
    }

    /// Classify a source node per the 2-D model's source taxonomy.
    /// Returns `None` when the geometry is not 2-dimensional —
    /// [`SourceClass`] has no meaning there; use
    /// [`HotSpotGeometry::distance_profile`] for the general form.
    pub fn classify_source(&self, src: NodeId) -> Option<SourceClass> {
        if self.topo.n() != 2 {
            return None;
        }
        if src == self.hot {
            return Some(SourceClass::HotNode);
        }
        let profile = self.distance_profile(src);
        let (dx, dy) = (profile[0], profile[1]);
        Some(if dx == 0 {
            SourceClass::HotYRing { j: dy }
        } else {
            SourceClass::XRing {
                j: dx,
                t: self.paper_distance(dy),
            }
        })
    }

    /// Generalized Eqs. (4)–(5): `P_{h,d,j} = k^d (k - j) / N` — fraction
    /// of system nodes whose hot-spot messages cross a hot dimension-`dim`
    /// channel `j` hops from the hot coordinate (`1 <= j <= k`; zero at
    /// `j = k`).
    pub fn p_hot(&self, dim: u32, j: u32) -> f64 {
        assert!(dim < self.topo.n());
        assert!((1..=self.topo.k()).contains(&j));
        let lower_rings = (self.topo.k() as u64).pow(dim);
        (lower_rings * (self.topo.k() - j) as u64) as f64 / self.topo.num_nodes() as f64
    }

    /// Eq. (4): `P_hx,j = (k - j)/N` — fraction of system nodes whose
    /// hot-spot messages cross a given x-channel `j` hops from the hot
    /// y-ring (`1 <= j <= k`; zero at `j = k`).
    pub fn p_hx(&self, j: u32) -> f64 {
        self.p_hot(DIM_X, j)
    }

    /// Eq. (5): `P_hy,j = k(k - j)/N` — fraction of system nodes whose
    /// hot-spot messages cross the hot-y-ring channel `j` hops from the
    /// hot-spot node (`1 <= j <= k`; zero at `j = k`).
    ///
    /// ```
    /// use kncube_topology::{HotSpotGeometry, KAryNCube, NodeId};
    /// let t = KAryNCube::unidirectional(16, 2).unwrap();
    /// let g = HotSpotGeometry::new(t, NodeId(0));
    /// // The last channel into the hot node serves k(k-1) = 240 of the
    /// // 256 nodes (everyone outside the hot node's own x-ring).
    /// assert_eq!(g.p_hy(1), 240.0 / 256.0);
    /// assert_eq!(g.p_hy(16), 0.0);
    /// ```
    pub fn p_hy(&self, j: u32) -> f64 {
        self.p_hot(DIM_Y, j)
    }

    /// Number of source *coordinates* in `channel`'s own ring whose
    /// dimension-order movement towards the hot coordinate crosses
    /// `channel`, for any link kind and boundary.  The channel's ring is
    /// assumed to be a hot ring of its dimension (lower coordinates
    /// matching the hot node's — [`HotSpotGeometry::p_hot_channel`] checks
    /// that); channels that do not exist count zero sources.
    ///
    /// Closed forms, with `c` the channel's source coordinate, `H` the hot
    /// coordinate, `j = (H - c) mod k` the forward and `b = (c - H) mod k`
    /// the backward distance:
    ///
    /// * unidirectional torus, `Plus`: `k - j` (`j = 0` reads as `k`, the
    ///   paper's Eqs. 4–5);
    /// * bidirectional torus, `Plus`: `⌊k/2⌋ - j + 1` for
    ///   `1 <= j <= ⌊k/2⌋` (sources whose shortest signed offset is
    ///   positive and reaches past the channel; ties route positive);
    /// * bidirectional torus, `Minus`: `⌈k/2⌉ - b` for
    ///   `1 <= b <= ⌈k/2⌉ - 1`;
    /// * mesh, `Plus`: `c + 1` when `c < H` (every coordinate at or below
    ///   `c` routes up through the channel); `Minus`: `k - c` when
    ///   `c > H`.
    pub fn hot_sources_in_ring(&self, channel: Channel) -> u32 {
        if !self.topo.channel_exists(channel) {
            return 0;
        }
        let k = self.topo.k();
        let c = self.topo.coord(channel.from, channel.dim);
        let h = self.topo.coord(self.hot, channel.dim);
        match (self.topo.boundary(), self.topo.link_kind()) {
            (Boundary::Torus, LinkKind::Unidirectional) => {
                let j = self.paper_distance(self.topo.ring_distance_forward(c, h));
                k - j
            }
            (Boundary::Torus, LinkKind::Bidirectional) => match channel.direction {
                Direction::Plus => {
                    let j = self.topo.ring_distance_forward(c, h);
                    if (1..=k / 2).contains(&j) {
                        k / 2 - j + 1
                    } else {
                        0
                    }
                }
                Direction::Minus => {
                    let b = self.topo.ring_distance_forward(h, c);
                    let half_up = k.div_ceil(2);
                    if b >= 1 && b < half_up {
                        half_up - b
                    } else {
                        0
                    }
                }
            },
            (Boundary::Mesh, _) => match channel.direction {
                Direction::Plus if c < h => c + 1,
                Direction::Minus if c > h => k - c,
                _ => 0,
            },
        }
    }

    /// Generalized per-channel hot-spot fraction: the fraction of system
    /// nodes whose dimension-order route to the hot node crosses
    /// `channel`, for any link kind and boundary.  Zero for channels that
    /// do not exist and for channels outside the hot rings (lower
    /// coordinates must match the hot node's, because dimension-order
    /// routing corrects lower dimensions first).  On the unidirectional
    /// torus this coincides with [`HotSpotGeometry::p_hot`] at the
    /// channel's paper distance.
    pub fn p_hot_channel(&self, channel: Channel) -> f64 {
        for lower in 0..channel.dim {
            if self.topo.coord(channel.from, lower) != self.topo.coord(self.hot, lower) {
                return 0.0;
            }
        }
        let lower_rings = (self.topo.k() as u64).pow(channel.dim);
        (lower_rings * self.hot_sources_in_ring(channel) as u64) as f64
            / self.topo.num_nodes() as f64
    }

    /// Brute-force count of the source nodes whose dimension-order route to
    /// the hot-spot node crosses `channel` (test oracle for Eqs. 4–5 and
    /// their n-dimensional generalization).
    pub fn count_hot_sources_crossing(&self, channel: Channel) -> u32 {
        let mut count = 0;
        for src in self.topo.nodes() {
            if src == self.hot {
                continue;
            }
            let route = self.topo.dor_route(src, self.hot);
            if route.hops.iter().any(|h| h.channel == channel) {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry(k: u32, hot: &[u32]) -> HotSpotGeometry {
        let t = KAryNCube::unidirectional(k, 2).unwrap();
        let hot = t.node_at(hot);
        HotSpotGeometry::new(t, hot)
    }

    #[test]
    fn accepts_any_dimension_and_link_kind() {
        let t3 = KAryNCube::unidirectional(4, 3).unwrap();
        let g3 = HotSpotGeometry::new(t3, NodeId(0));
        // The 2-D source taxonomy has no meaning off n = 2.
        assert_eq!(g3.classify_source(NodeId(1)), None);
        // Bidirectional tori and meshes are first-class now; their hot
        // fractions flow through p_hot_channel.
        let tb = KAryNCube::bidirectional(4, 2).unwrap();
        let gb = HotSpotGeometry::new(tb, NodeId(0));
        assert!(
            gb.p_hot_channel(Channel {
                from: tb.node_at(&[3, 0]),
                dim: DIM_X,
                direction: Direction::Plus,
            }) > 0.0
        );
        let tm = KAryNCube::mesh(4, 2).unwrap();
        let gm = HotSpotGeometry::new(tm, tm.node_at(&[3, 3]));
        assert!(
            gm.p_hot_channel(Channel {
                from: tm.node_at(&[0, 3]),
                dim: DIM_X,
                direction: Direction::Plus,
            }) > 0.0
        );
    }

    #[test]
    fn hot_y_ring_is_hot_column() {
        let g = geometry(5, &[3, 1]);
        let ring = g.hot_y_ring();
        assert_eq!(ring.nodes.len(), 5);
        for &m in &ring.nodes {
            assert_eq!(g.topology().coord(m, DIM_X), 3);
        }
    }

    #[test]
    fn paper_distance_conventions() {
        let g = geometry(4, &[1, 2]);
        let t = g.topology();
        // Outgoing y channel of the hot node itself: distance k.
        let c = Channel {
            from: t.node_at(&[1, 2]),
            dim: DIM_Y,
            direction: Direction::Plus,
        };
        assert_eq!(g.y_channel_distance(c), Some(4));
        // One hop before the hot node: distance 1.
        let c = Channel {
            from: t.node_at(&[1, 1]),
            dim: DIM_Y,
            direction: Direction::Plus,
        };
        assert_eq!(g.y_channel_distance(c), Some(1));
        // Wrap-around counting: node y=3 is (2-3) mod 4 = 3 hops away.
        let c = Channel {
            from: t.node_at(&[1, 3]),
            dim: DIM_Y,
            direction: Direction::Plus,
        };
        assert_eq!(g.y_channel_distance(c), Some(3));
        // y channels outside the hot column are not hot-ring channels.
        let c = Channel {
            from: t.node_at(&[0, 1]),
            dim: DIM_Y,
            direction: Direction::Plus,
        };
        assert_eq!(g.y_channel_distance(c), None);
        // x channel leaving the hot column: distance k.
        let c = Channel {
            from: t.node_at(&[1, 0]),
            dim: DIM_X,
            direction: Direction::Plus,
        };
        assert_eq!(g.x_channel_distance(c), Some(4));
        // x-ring through the hot node has paper-distance k.
        assert_eq!(g.x_ring_distance(t.node_at(&[0, 2])), 4);
        assert_eq!(g.x_ring_distance(t.node_at(&[0, 1])), 1);
    }

    #[test]
    fn source_classification_partitions_nodes() {
        let g = geometry(6, &[2, 4]);
        let t = g.topology();
        let k = t.k();
        let mut hot_nodes = 0u32;
        let mut hot_ring = vec![0u32; k as usize + 1];
        let mut x_ring = vec![vec![0u32; k as usize + 1]; k as usize + 1];
        for src in t.nodes() {
            match g.classify_source(src).expect("2-D geometry") {
                SourceClass::HotNode => hot_nodes += 1,
                SourceClass::HotYRing { j } => {
                    assert!((1..k).contains(&j));
                    hot_ring[j as usize] += 1;
                }
                SourceClass::XRing { j, t: tt } => {
                    assert!((1..k).contains(&j));
                    assert!((1..=k).contains(&tt));
                    x_ring[j as usize][tt as usize] += 1;
                }
            }
        }
        assert_eq!(hot_nodes, 1);
        // Exactly one node per (j) in the hot ring and per (j, t) elsewhere.
        for j in 1..k {
            assert_eq!(hot_ring[j as usize], 1);
            for tt in 1..=k {
                assert_eq!(x_ring[j as usize][tt as usize], 1);
            }
        }
    }

    #[test]
    fn distance_profile_matches_route_structure() {
        let t = KAryNCube::unidirectional(4, 3).unwrap();
        let hot = t.node_at(&[1, 2, 3]);
        let g = HotSpotGeometry::new(t, hot);
        for src in t.nodes() {
            let profile = g.distance_profile(src);
            let route = t.dor_route(src, hot);
            // Per-dimension hop counts of the route equal the profile.
            for (d, &p) in profile.iter().enumerate() {
                let hops = route
                    .hops
                    .iter()
                    .filter(|h| h.channel.dim == d as u32)
                    .count() as u32;
                assert_eq!(hops, p, "src {:?} dim {d}", t.coords(src));
            }
        }
    }

    #[test]
    fn eq4_matches_bruteforce_on_every_x_channel() {
        for k in [3u32, 4, 5] {
            let g = geometry(k, &[k - 1, 1]);
            let t = *g.topology();
            let n = t.num_nodes() as f64;
            for from in t.nodes() {
                let c = Channel {
                    from,
                    dim: DIM_X,
                    direction: Direction::Plus,
                };
                let j = g.x_channel_distance(c).unwrap();
                let counted = g.count_hot_sources_crossing(c) as f64 / n;
                assert!(
                    (counted - g.p_hx(j)).abs() < 1e-12,
                    "k={k} channel from {:?}: bruteforce {counted} vs P_hx,{j}={}",
                    t.coords(from),
                    g.p_hx(j)
                );
            }
        }
    }

    #[test]
    fn eq5_matches_bruteforce_on_every_hot_ring_channel() {
        for k in [3u32, 4, 5] {
            let g = geometry(k, &[0, 2 % k]);
            let t = *g.topology();
            let n = t.num_nodes() as f64;
            for &from in &g.hot_y_ring().nodes {
                let c = Channel {
                    from,
                    dim: DIM_Y,
                    direction: Direction::Plus,
                };
                let j = g.y_channel_distance(c).unwrap();
                let counted = g.count_hot_sources_crossing(c) as f64 / n;
                assert!(
                    (counted - g.p_hy(j)).abs() < 1e-12,
                    "k={k} hot-ring channel at j={j}: bruteforce {counted} vs {}",
                    g.p_hy(j)
                );
            }
        }
    }

    #[test]
    fn generalized_fractions_match_bruteforce_in_3d_and_4d() {
        for (k, n) in [(3u32, 3u32), (4, 3), (2, 4)] {
            let t = KAryNCube::unidirectional(k, n).unwrap();
            let hot = NodeId(t.num_nodes() / 3);
            let g = HotSpotGeometry::new(t, hot);
            let nodes = t.num_nodes() as f64;
            for from in t.nodes() {
                for dim in 0..n {
                    let c = Channel {
                        from,
                        dim,
                        direction: Direction::Plus,
                    };
                    let counted = g.count_hot_sources_crossing(c) as f64 / nodes;
                    let expected = match g.hot_channel_distance(c) {
                        Some(j) => g.p_hot(dim, j),
                        None => 0.0,
                    };
                    assert!(
                        (counted - expected).abs() < 1e-12,
                        "k={k} n={n} dim={dim} from {:?}: bruteforce {counted} vs {expected}",
                        t.coords(from)
                    );
                }
            }
        }
    }

    /// Brute-force check of the generalized per-channel fractions on every
    /// channel of `topo` (both directions), hot node at `hot`.
    fn check_p_hot_channel_bruteforce(topo: KAryNCube, hot: NodeId) {
        let g = HotSpotGeometry::new(topo, hot);
        let nodes = topo.num_nodes() as f64;
        for from in topo.nodes() {
            for dim in 0..topo.n() {
                for direction in [Direction::Plus, Direction::Minus] {
                    let c = Channel {
                        from,
                        dim,
                        direction,
                    };
                    let counted = g.count_hot_sources_crossing(c) as f64 / nodes;
                    let expected = g.p_hot_channel(c);
                    assert!(
                        (counted - expected).abs() < 1e-12,
                        "{:?} {:?} dim={dim} {direction:?} from {:?}: \
                         bruteforce {counted} vs closed form {expected}",
                        topo.link_kind(),
                        topo.boundary(),
                        topo.coords(from)
                    );
                }
            }
        }
    }

    #[test]
    fn p_hot_channel_matches_bruteforce_on_bidirectional_tori() {
        for (k, n) in [(3u32, 2u32), (4, 2), (5, 2), (8, 2), (3, 3), (2, 4)] {
            let t = KAryNCube::bidirectional(k, n).unwrap();
            check_p_hot_channel_bruteforce(t, NodeId(t.num_nodes() / 3));
        }
    }

    #[test]
    fn p_hot_channel_matches_bruteforce_on_meshes() {
        for (k, n) in [(3u32, 2u32), (4, 2), (5, 2), (8, 2), (3, 3), (2, 4)] {
            let t = KAryNCube::mesh(k, n).unwrap();
            // Off-center hot nodes exercise the asymmetric mesh counts.
            check_p_hot_channel_bruteforce(t, NodeId(t.num_nodes() / 3));
            check_p_hot_channel_bruteforce(t, NodeId(0));
        }
    }

    #[test]
    fn p_hot_channel_reduces_to_paper_form_on_unidirectional_tori() {
        for (k, n) in [(4u32, 2u32), (5, 2), (3, 3)] {
            let t = KAryNCube::unidirectional(k, n).unwrap();
            let g = HotSpotGeometry::new(t, NodeId(t.num_nodes() / 2));
            check_p_hot_channel_bruteforce(t, NodeId(t.num_nodes() / 2));
            for from in t.nodes() {
                for dim in 0..n {
                    let c = Channel {
                        from,
                        dim,
                        direction: Direction::Plus,
                    };
                    let expected = match g.hot_channel_distance(c) {
                        Some(j) => g.p_hot(dim, j),
                        None => 0.0,
                    };
                    assert_eq!(
                        g.p_hot_channel(c).to_bits(),
                        expected.to_bits(),
                        "generalized form must be bit-identical to Eqs. 4-5"
                    );
                }
            }
        }
    }

    #[test]
    fn non_hot_ring_y_channels_carry_no_hot_traffic() {
        let g = geometry(4, &[2, 2]);
        let t = *g.topology();
        for from in t.nodes() {
            if t.coord(from, DIM_X) == 2 {
                continue;
            }
            let c = Channel {
                from,
                dim: DIM_Y,
                direction: Direction::Plus,
            };
            assert_eq!(g.count_hot_sources_crossing(c), 0);
            assert_eq!(g.hot_channel_distance(c), None);
        }
    }

    #[test]
    fn hot_traffic_conservation() {
        // Total channel crossings by hot traffic must equal the total hop
        // count of all sources' routes to the hot node; checks that the
        // per-position rates integrate to the global load.
        let g = geometry(5, &[1, 3]);
        let t = *g.topology();
        let total_hops: u32 = t
            .nodes()
            .filter(|&s| s != g.hot_node())
            .map(|s| t.hop_count(s, g.hot_node()))
            .sum();
        let mut by_channels = 0u32;
        for from in t.nodes() {
            for dim in 0..2 {
                let c = Channel {
                    from,
                    dim,
                    direction: Direction::Plus,
                };
                by_channels += g.count_hot_sources_crossing(c);
            }
        }
        assert_eq!(total_hops, by_channels);
        // And the closed forms integrate to the same: k rings × Σ_j (k-j)
        // in x, plus Σ_j k(k-j) in y.
        let k = t.k();
        let closed: u32 = (1..=k).map(|j| k * (k - j)).sum::<u32>() * 2;
        assert_eq!(total_hops, closed);
    }

    #[test]
    fn hot_traffic_conservation_generalizes() {
        // n-dimensional conservation: per dimension the k^{n-1-d} hot rings
        // carry k^d(k-j) crossings at each of their k positions, so the
        // closed forms integrate to n·k^{n-1}·Σ_j(k-j) — the total hop
        // count of all hot routes.
        let t = KAryNCube::unidirectional(3, 4).unwrap();
        let hot = NodeId(5);
        let total_hops: u64 = t
            .nodes()
            .filter(|&s| s != hot)
            .map(|s| t.hop_count(s, hot) as u64)
            .sum();
        let k = t.k() as u64;
        let per_ring: u64 = (1..=k).map(|j| k - j).sum();
        let closed = t.n() as u64 * k.pow(t.n() - 1) * per_ring;
        assert_eq!(total_hops, closed);
    }
}
