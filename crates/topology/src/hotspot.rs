//! Hot-spot geometry of §3 of the paper (2-D unidirectional torus).
//!
//! With the hot-spot node at `(v_hx, v_hy)`, the paper names:
//!
//! * the **hot y-ring** — the ring along dimension `y` containing the
//!   hot-spot node (all nodes with `x = v_hx`).  Every hot-spot message that
//!   moves in `y` does so inside this ring, because dimension-order routing
//!   corrects `x` first;
//! * a channel of the hot y-ring is **`j` hops away from the hot-spot node**
//!   (`1 <= j <= k`) when `j` forward hops in `y` from its source node reach
//!   the hot node; `j = k` names the outgoing channel of the hot node
//!   itself;
//! * a channel of an x-ring is **`j` hops away from the hot y-ring**
//!   (`1 <= j <= k`) when `j` forward hops in `x` reach the hot column;
//!   `j = k` names outgoing channels of hot-y-ring nodes;
//! * an x-ring is **`t` hops away from the hot-spot node** (`1 <= t <= k`)
//!   when its nodes are `t` forward `y`-hops from `v_hy`; `t = k` is the
//!   x-ring through the hot node.
//!
//! From this geometry, the fractions of system nodes whose hot-spot traffic
//! crosses a given channel are (Eqs. 4–5):
//!
//! ```text
//! P_hx,j = (k - j) / N          (x channel, j hops from the hot y-ring)
//! P_hy,j = k (k - j) / N        (hot y-ring channel, j hops from hot node)
//! ```
//!
//! Both are verified against brute-force route enumeration in the tests.

use crate::channel::{Channel, Direction};
use crate::geometry::{KAryNCube, LinkKind, NodeId, TopologyError};
use crate::ring::Ring;

/// Dimension index of the paper's `x` dimension.
pub const DIM_X: u32 = 0;
/// Dimension index of the paper's `y` dimension.
pub const DIM_Y: u32 = 1;

/// Classification of a source node relative to the hot-spot node, used by
/// the analytical model to weight per-source latencies (Eqs. 22, 24, 32).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SourceClass {
    /// The hot-spot node itself (generates only regular traffic).
    HotNode,
    /// A node of the hot y-ring, `j` hops (`1..k`) from the hot-spot node.
    HotYRing {
        /// Forward `y` distance to the hot-spot node.
        j: u32,
    },
    /// Any other node: within the x-ring `t` hops (`1..=k`) from the
    /// hot-spot node, `j` hops (`1..k`) from the hot y-ring.  `t = k` means
    /// the x-ring containing the hot-spot node.
    XRing {
        /// Forward `x` distance to the hot y-ring (column of the hot node).
        j: u32,
        /// Distance of the node's x-ring from the hot-spot node (paper
        /// convention: `k` for the hot node's own x-ring).
        t: u32,
    },
}

/// Hot-spot geometry helper for a 2-D unidirectional torus.
#[derive(Clone, Copy, Debug)]
pub struct HotSpotGeometry {
    topo: KAryNCube,
    hot: NodeId,
}

impl HotSpotGeometry {
    /// Build the geometry; the topology must be a unidirectional 2-D torus
    /// (the configuration the paper's analysis covers).
    pub fn new(topo: KAryNCube, hot: NodeId) -> Result<Self, TopologyError> {
        if topo.n() != 2 {
            return Err(TopologyError::BadDimensionCount);
        }
        if topo.link_kind() != LinkKind::Unidirectional {
            // The analysis "considers only the uni-directional case".
            return Err(TopologyError::BadDimensionCount);
        }
        Ok(HotSpotGeometry { topo, hot })
    }

    /// The underlying topology.
    pub fn topology(&self) -> &KAryNCube {
        &self.topo
    }

    /// The hot-spot node.
    pub fn hot_node(&self) -> NodeId {
        self.hot
    }

    /// The hot y-ring: the dimension-`y` ring containing the hot-spot node.
    pub fn hot_y_ring(&self) -> Ring {
        self.topo.ring_of(self.hot, DIM_Y)
    }

    /// Paper distance convention: forward distance mapped into `1..=k`, with
    /// `k` standing for "zero" (the channel leaving the reference node /
    /// the reference ring itself).
    #[inline]
    fn paper_distance(&self, forward: u32) -> u32 {
        if forward == 0 {
            self.topo.k()
        } else {
            forward
        }
    }

    /// Distance (`1..=k`) of a hot-y-ring channel from the hot-spot node.
    /// Returns `None` for channels that are not y-channels of the hot
    /// y-ring.
    pub fn y_channel_distance(&self, channel: Channel) -> Option<u32> {
        if channel.dim != DIM_Y || channel.direction != Direction::Plus {
            return None;
        }
        if self.topo.coord(channel.from, DIM_X) != self.topo.coord(self.hot, DIM_X) {
            return None;
        }
        let fwd = self.topo.ring_distance_forward(
            self.topo.coord(channel.from, DIM_Y),
            self.topo.coord(self.hot, DIM_Y),
        );
        Some(self.paper_distance(fwd))
    }

    /// Distance (`1..=k`) of an x-channel from the hot y-ring.  Returns
    /// `None` for non-x channels.
    pub fn x_channel_distance(&self, channel: Channel) -> Option<u32> {
        if channel.dim != DIM_X || channel.direction != Direction::Plus {
            return None;
        }
        let fwd = self.topo.ring_distance_forward(
            self.topo.coord(channel.from, DIM_X),
            self.topo.coord(self.hot, DIM_X),
        );
        Some(self.paper_distance(fwd))
    }

    /// Distance (`1..=k`) of the x-ring containing `node` from the hot-spot
    /// node (`k` for the hot node's own x-ring).
    pub fn x_ring_distance(&self, node: NodeId) -> u32 {
        let fwd = self.topo.ring_distance_forward(
            self.topo.coord(node, DIM_Y),
            self.topo.coord(self.hot, DIM_Y),
        );
        self.paper_distance(fwd)
    }

    /// Classify a source node per the model's source taxonomy.
    pub fn classify_source(&self, src: NodeId) -> SourceClass {
        if src == self.hot {
            return SourceClass::HotNode;
        }
        let dx = self.topo.ring_distance_forward(
            self.topo.coord(src, DIM_X),
            self.topo.coord(self.hot, DIM_X),
        );
        let dy = self.topo.ring_distance_forward(
            self.topo.coord(src, DIM_Y),
            self.topo.coord(self.hot, DIM_Y),
        );
        if dx == 0 {
            SourceClass::HotYRing { j: dy }
        } else {
            SourceClass::XRing {
                j: dx,
                t: self.paper_distance(dy),
            }
        }
    }

    /// Eq. (4): `P_hx,j = (k - j)/N` — fraction of system nodes whose
    /// hot-spot messages cross a given x-channel `j` hops from the hot
    /// y-ring (`1 <= j <= k`; zero at `j = k`).
    pub fn p_hx(&self, j: u32) -> f64 {
        assert!((1..=self.topo.k()).contains(&j));
        (self.topo.k() - j) as f64 / self.topo.num_nodes() as f64
    }

    /// Eq. (5): `P_hy,j = k(k - j)/N` — fraction of system nodes whose
    /// hot-spot messages cross the hot-y-ring channel `j` hops from the
    /// hot-spot node (`1 <= j <= k`; zero at `j = k`).
    ///
    /// ```
    /// use kncube_topology::{HotSpotGeometry, KAryNCube, NodeId};
    /// let t = KAryNCube::unidirectional(16, 2).unwrap();
    /// let g = HotSpotGeometry::new(t, NodeId(0)).unwrap();
    /// // The last channel into the hot node serves k(k-1) = 240 of the
    /// // 256 nodes (everyone outside the hot node's own x-ring).
    /// assert_eq!(g.p_hy(1), 240.0 / 256.0);
    /// assert_eq!(g.p_hy(16), 0.0);
    /// ```
    pub fn p_hy(&self, j: u32) -> f64 {
        assert!((1..=self.topo.k()).contains(&j));
        (self.topo.k() * (self.topo.k() - j)) as f64 / self.topo.num_nodes() as f64
    }

    /// Brute-force count of the source nodes whose dimension-order route to
    /// the hot-spot node crosses `channel` (test oracle for Eqs. 4–5).
    pub fn count_hot_sources_crossing(&self, channel: Channel) -> u32 {
        let mut count = 0;
        for src in self.topo.nodes() {
            if src == self.hot {
                continue;
            }
            let route = self.topo.dor_route(src, self.hot);
            if route.hops.iter().any(|h| h.channel == channel) {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry(k: u32, hot: &[u32]) -> HotSpotGeometry {
        let t = KAryNCube::unidirectional(k, 2).unwrap();
        let hot = t.node_at(hot);
        HotSpotGeometry::new(t, hot).unwrap()
    }

    #[test]
    fn rejects_non_2d_or_bidirectional() {
        let t3 = KAryNCube::unidirectional(4, 3).unwrap();
        assert!(HotSpotGeometry::new(t3, NodeId(0)).is_err());
        let tb = KAryNCube::bidirectional(4, 2).unwrap();
        assert!(HotSpotGeometry::new(tb, NodeId(0)).is_err());
    }

    #[test]
    fn hot_y_ring_is_hot_column() {
        let g = geometry(5, &[3, 1]);
        let ring = g.hot_y_ring();
        assert_eq!(ring.nodes.len(), 5);
        for &m in &ring.nodes {
            assert_eq!(g.topology().coord(m, DIM_X), 3);
        }
    }

    #[test]
    fn paper_distance_conventions() {
        let g = geometry(4, &[1, 2]);
        let t = g.topology();
        // Outgoing y channel of the hot node itself: distance k.
        let c = Channel {
            from: t.node_at(&[1, 2]),
            dim: DIM_Y,
            direction: Direction::Plus,
        };
        assert_eq!(g.y_channel_distance(c), Some(4));
        // One hop before the hot node: distance 1.
        let c = Channel {
            from: t.node_at(&[1, 1]),
            dim: DIM_Y,
            direction: Direction::Plus,
        };
        assert_eq!(g.y_channel_distance(c), Some(1));
        // Wrap-around counting: node y=3 is (2-3) mod 4 = 3 hops away.
        let c = Channel {
            from: t.node_at(&[1, 3]),
            dim: DIM_Y,
            direction: Direction::Plus,
        };
        assert_eq!(g.y_channel_distance(c), Some(3));
        // y channels outside the hot column are not hot-ring channels.
        let c = Channel {
            from: t.node_at(&[0, 1]),
            dim: DIM_Y,
            direction: Direction::Plus,
        };
        assert_eq!(g.y_channel_distance(c), None);
        // x channel leaving the hot column: distance k.
        let c = Channel {
            from: t.node_at(&[1, 0]),
            dim: DIM_X,
            direction: Direction::Plus,
        };
        assert_eq!(g.x_channel_distance(c), Some(4));
        // x-ring through the hot node has paper-distance k.
        assert_eq!(g.x_ring_distance(t.node_at(&[0, 2])), 4);
        assert_eq!(g.x_ring_distance(t.node_at(&[0, 1])), 1);
    }

    #[test]
    fn source_classification_partitions_nodes() {
        let g = geometry(6, &[2, 4]);
        let t = g.topology();
        let k = t.k();
        let mut hot_nodes = 0u32;
        let mut hot_ring = vec![0u32; k as usize + 1];
        let mut x_ring = vec![vec![0u32; k as usize + 1]; k as usize + 1];
        for src in t.nodes() {
            match g.classify_source(src) {
                SourceClass::HotNode => hot_nodes += 1,
                SourceClass::HotYRing { j } => {
                    assert!((1..k).contains(&j));
                    hot_ring[j as usize] += 1;
                }
                SourceClass::XRing { j, t: tt } => {
                    assert!((1..k).contains(&j));
                    assert!((1..=k).contains(&tt));
                    x_ring[j as usize][tt as usize] += 1;
                }
            }
        }
        assert_eq!(hot_nodes, 1);
        // Exactly one node per (j) in the hot ring and per (j, t) elsewhere.
        for j in 1..k {
            assert_eq!(hot_ring[j as usize], 1);
            for tt in 1..=k {
                assert_eq!(x_ring[j as usize][tt as usize], 1);
            }
        }
    }

    #[test]
    fn eq4_matches_bruteforce_on_every_x_channel() {
        for k in [3u32, 4, 5] {
            let g = geometry(k, &[k - 1, 1]);
            let t = *g.topology();
            let n = t.num_nodes() as f64;
            for from in t.nodes() {
                let c = Channel {
                    from,
                    dim: DIM_X,
                    direction: Direction::Plus,
                };
                let j = g.x_channel_distance(c).unwrap();
                let counted = g.count_hot_sources_crossing(c) as f64 / n;
                assert!(
                    (counted - g.p_hx(j)).abs() < 1e-12,
                    "k={k} channel from {:?}: bruteforce {counted} vs P_hx,{j}={}",
                    t.coords(from),
                    g.p_hx(j)
                );
            }
        }
    }

    #[test]
    fn eq5_matches_bruteforce_on_every_hot_ring_channel() {
        for k in [3u32, 4, 5] {
            let g = geometry(k, &[0, 2 % k]);
            let t = *g.topology();
            let n = t.num_nodes() as f64;
            for &from in &g.hot_y_ring().nodes {
                let c = Channel {
                    from,
                    dim: DIM_Y,
                    direction: Direction::Plus,
                };
                let j = g.y_channel_distance(c).unwrap();
                let counted = g.count_hot_sources_crossing(c) as f64 / n;
                assert!(
                    (counted - g.p_hy(j)).abs() < 1e-12,
                    "k={k} hot-ring channel at j={j}: bruteforce {counted} vs {}",
                    g.p_hy(j)
                );
            }
        }
    }

    #[test]
    fn non_hot_ring_y_channels_carry_no_hot_traffic() {
        let g = geometry(4, &[2, 2]);
        let t = *g.topology();
        for from in t.nodes() {
            if t.coord(from, DIM_X) == 2 {
                continue;
            }
            let c = Channel {
                from,
                dim: DIM_Y,
                direction: Direction::Plus,
            };
            assert_eq!(g.count_hot_sources_crossing(c), 0);
        }
    }

    #[test]
    fn hot_traffic_conservation() {
        // Total channel crossings by hot traffic must equal the total hop
        // count of all sources' routes to the hot node; checks that the
        // per-position rates integrate to the global load.
        let g = geometry(5, &[1, 3]);
        let t = *g.topology();
        let total_hops: u32 = t
            .nodes()
            .filter(|&s| s != g.hot_node())
            .map(|s| t.hop_count(s, g.hot_node()))
            .sum();
        let mut by_channels = 0u32;
        for from in t.nodes() {
            for dim in 0..2 {
                let c = Channel {
                    from,
                    dim,
                    direction: Direction::Plus,
                };
                by_channels += g.count_hot_sources_crossing(c);
            }
        }
        assert_eq!(total_hops, by_channels);
        // And the closed forms integrate to the same: k rings × Σ_j (k-j)
        // in x, plus Σ_j k(k-j) in y.
        let k = t.k();
        let closed: u32 = (1..=k).map(|j| k * (k - j)).sum::<u32>() * 2;
        assert_eq!(total_hops, closed);
    }
}
