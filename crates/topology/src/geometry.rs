//! The k-ary n-cube geometry: nodes, coordinates and adjacency.
//!
//! A k-ary n-cube has `N = k^n` nodes arranged in `n` dimensions with `k`
//! nodes per dimension.  Node `v` is addressed by its coordinate vector
//! `(v_0, …, v_{n-1})` with `0 <= v_d < k`; dimension 0 is the paper's `x`
//! dimension and dimension 1 its `y` dimension.  Nodes are also identified
//! by a dense integer [`NodeId`] in mixed radix `k`:
//! `id = v_0 + v_1·k + v_2·k² + …`.
//!
//! The paper analyses *unidirectional* links (each node has one outgoing
//! channel per dimension, towards coordinate `+1 mod k`); the geometry also
//! supports bidirectional links for extension studies in the simulator.

use std::fmt;

/// Maximum supported number of dimensions.
///
/// Eight dimensions with `k = 2` is already a 256-node binary hypercube; the
/// bound exists only so coordinates can live in a fixed-size array on the
/// simulator's hot paths.
pub const MAX_DIMS: usize = 8;

/// Dense integer identifier of a node, in mixed radix `k`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Whether ring links are unidirectional (the paper's case) or bidirectional.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LinkKind {
    /// One outgoing channel per node per dimension, towards `+1 mod k`.
    Unidirectional,
    /// Two outgoing channels per node per dimension (`+1` and `-1 mod k`);
    /// routing takes the shorter way around each ring.
    Bidirectional,
}

/// Whether each dimension wraps around (torus) or terminates at its edges
/// (mesh).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Boundary {
    /// Coordinate `k-1` connects back to coordinate `0`: the k-ary n-cube
    /// proper (the paper's case).
    Torus,
    /// No wrap-around links: an n-dimensional `k × … × k` mesh.  Requires
    /// bidirectional links (a unidirectional mesh is disconnected).
    Mesh,
}

/// Errors constructing a topology.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TopologyError {
    /// `k < 2` — a ring needs at least two nodes.
    RadixTooSmall,
    /// `n` outside `1..=MAX_DIMS`.
    BadDimensionCount,
    /// `k^n` overflows the node-id space.
    TooManyNodes,
    /// The requested link-kind/boundary combination is not supported by the
    /// operation named in `context`.
    UnsupportedLinkKind {
        /// The call site or configuration that rejected the combination.
        context: &'static str,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::RadixTooSmall => write!(f, "radix k must be at least 2"),
            TopologyError::BadDimensionCount => {
                write!(f, "dimension count n must be in 1..={MAX_DIMS}")
            }
            TopologyError::TooManyNodes => write!(f, "k^n exceeds the supported node-id space"),
            TopologyError::UnsupportedLinkKind { context } => {
                write!(f, "unsupported link kind: {context}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The k-ary n-cube topology.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KAryNCube {
    k: u32,
    n: u32,
    nodes: u32,
    links: LinkKind,
    boundary: Boundary,
}

impl KAryNCube {
    /// Create a unidirectional k-ary n-cube (the configuration analysed in
    /// the paper).
    pub fn unidirectional(k: u32, n: u32) -> Result<Self, TopologyError> {
        Self::new(k, n, LinkKind::Unidirectional)
    }

    /// Create a bidirectional k-ary n-cube.
    pub fn bidirectional(k: u32, n: u32) -> Result<Self, TopologyError> {
        Self::new(k, n, LinkKind::Bidirectional)
    }

    /// Create a bidirectional n-dimensional `k × … × k` mesh (no
    /// wrap-around links).
    pub fn mesh(k: u32, n: u32) -> Result<Self, TopologyError> {
        Self::with_boundary(k, n, LinkKind::Bidirectional, Boundary::Mesh)
    }

    /// Create a k-ary n-cube torus with the given link kind.
    pub fn new(k: u32, n: u32, links: LinkKind) -> Result<Self, TopologyError> {
        Self::with_boundary(k, n, links, Boundary::Torus)
    }

    /// Create a topology with the given link kind and boundary condition.
    pub fn with_boundary(
        k: u32,
        n: u32,
        links: LinkKind,
        boundary: Boundary,
    ) -> Result<Self, TopologyError> {
        if k < 2 {
            return Err(TopologyError::RadixTooSmall);
        }
        if n == 0 || n as usize > MAX_DIMS {
            return Err(TopologyError::BadDimensionCount);
        }
        if boundary == Boundary::Mesh && links == LinkKind::Unidirectional {
            return Err(TopologyError::UnsupportedLinkKind {
                context: "KAryNCube::with_boundary: a unidirectional mesh is disconnected \
                          (edge nodes would have no route back); meshes require \
                          LinkKind::Bidirectional",
            });
        }
        let mut nodes: u64 = 1;
        for _ in 0..n {
            nodes = nodes
                .checked_mul(k as u64)
                .ok_or(TopologyError::TooManyNodes)?;
            if nodes > u32::MAX as u64 {
                return Err(TopologyError::TooManyNodes);
            }
        }
        Ok(KAryNCube {
            k,
            n,
            nodes: nodes as u32,
            links,
            boundary,
        })
    }

    /// Radix `k`: nodes per dimension.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Dimension count `n`.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Total node count `N = k^n`.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.nodes
    }

    /// The link kind (unidirectional for the paper's analysis).
    #[inline]
    pub fn link_kind(&self) -> LinkKind {
        self.links
    }

    /// The boundary condition (torus for the paper's analysis).
    #[inline]
    pub fn boundary(&self) -> Boundary {
        self.boundary
    }

    /// Number of outgoing network channels per node (`n` for unidirectional,
    /// `2n` for bidirectional); injection/ejection channels are not counted.
    ///
    /// Meshes keep the bidirectional channel-id space — wrap-around channel
    /// ids exist but name links that are not physically present (see
    /// [`KAryNCube::channel_exists`]), so flat per-channel tables stay
    /// rectangular across boundary conditions.
    #[inline]
    pub fn channels_per_node(&self) -> u32 {
        match self.links {
            LinkKind::Unidirectional => self.n,
            LinkKind::Bidirectional => 2 * self.n,
        }
    }

    /// Total number of network channels.
    #[inline]
    pub fn num_channels(&self) -> u32 {
        self.nodes * self.channels_per_node()
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes).map(NodeId)
    }

    /// Coordinate of `node` in dimension `dim`.
    #[inline]
    pub fn coord(&self, node: NodeId, dim: u32) -> u32 {
        debug_assert!(dim < self.n);
        (node.0 / self.k.pow(dim)) % self.k
    }

    /// All coordinates of `node`, least-significant dimension (x) first.
    pub fn coords(&self, node: NodeId) -> Vec<u32> {
        (0..self.n).map(|d| self.coord(node, d)).collect()
    }

    /// Node id from coordinates (must supply exactly `n` coordinates, each
    /// `< k`).
    pub fn node_at(&self, coords: &[u32]) -> NodeId {
        assert_eq!(coords.len(), self.n as usize, "coordinate arity mismatch");
        let mut id = 0u32;
        for (d, &c) in coords.iter().enumerate() {
            assert!(c < self.k, "coordinate {c} out of range for k={}", self.k);
            id += c * self.k.pow(d as u32);
        }
        NodeId(id)
    }

    /// The node reached from `node` by moving one hop in `dim` towards
    /// increasing coordinates (with wrap-around).
    #[inline]
    pub fn neighbor_plus(&self, node: NodeId, dim: u32) -> NodeId {
        let stride = self.k.pow(dim);
        let c = self.coord(node, dim);
        if c + 1 == self.k {
            NodeId(node.0 - c * stride)
        } else {
            NodeId(node.0 + stride)
        }
    }

    /// The node reached from `node` by moving one hop in `dim` towards
    /// decreasing coordinates (with wrap-around).
    #[inline]
    pub fn neighbor_minus(&self, node: NodeId, dim: u32) -> NodeId {
        let stride = self.k.pow(dim);
        let c = self.coord(node, dim);
        if c == 0 {
            NodeId(node.0 + (self.k - 1) * stride)
        } else {
            NodeId(node.0 - stride)
        }
    }

    /// Replace the coordinate of `node` in `dim` by `c`.
    #[inline]
    pub fn with_coord(&self, node: NodeId, dim: u32, c: u32) -> NodeId {
        debug_assert!(c < self.k);
        let stride = self.k.pow(dim);
        let old = self.coord(node, dim);
        NodeId(node.0 - old * stride + c * stride)
    }

    /// Forward (unidirectional) distance from coordinate `from` to `to` in a
    /// single ring: `(to - from) mod k`.
    #[inline]
    pub fn ring_distance_forward(&self, from: u32, to: u32) -> u32 {
        (to + self.k - from) % self.k
    }

    /// Shortest signed offset from `from` to `to` in a bidirectional ring;
    /// ties (`k` even, distance exactly `k/2`) resolve to the positive
    /// direction, the usual convention for minimal torus routing.
    pub fn ring_offset_shortest(&self, from: u32, to: u32) -> i64 {
        let fwd = self.ring_distance_forward(from, to) as i64;
        let k = self.k as i64;
        if fwd * 2 <= k {
            fwd
        } else {
            fwd - k
        }
    }

    /// The signed per-ring offset dimension-order routing actually takes
    /// from coordinate `from` to `to` under this topology's link kind and
    /// boundary: the forward distance for the unidirectional torus, the
    /// shortest signed offset for the bidirectional torus (ties positive),
    /// and the plain difference `to - from` for the mesh (no wrap-around
    /// exists to take).
    pub fn ring_offset_routed(&self, from: u32, to: u32) -> i64 {
        match (self.boundary, self.links) {
            (Boundary::Mesh, _) => to as i64 - from as i64,
            (Boundary::Torus, LinkKind::Unidirectional) => {
                self.ring_distance_forward(from, to) as i64
            }
            (Boundary::Torus, LinkKind::Bidirectional) => self.ring_offset_shortest(from, to),
        }
    }

    /// Whether the physical channel `(from, dim, direction)` exists in this
    /// topology.  Unidirectional networks have no `Minus` channels; meshes
    /// have no wrap-around channels (`Plus` out of coordinate `k-1`,
    /// `Minus` out of coordinate `0`).  The channel-id space still contains
    /// ids for the missing channels (tables stay rectangular); they simply
    /// carry no traffic.
    pub fn channel_exists(&self, channel: crate::channel::Channel) -> bool {
        use crate::channel::Direction;
        if self.links == LinkKind::Unidirectional && channel.direction == Direction::Minus {
            return false;
        }
        if self.boundary == Boundary::Mesh {
            let c = self.coord(channel.from, channel.dim);
            match channel.direction {
                Direction::Plus => c + 1 < self.k,
                Direction::Minus => c > 0,
            }
        } else {
            true
        }
    }

    /// Number of channels a dimension-order-routed message from `src` to
    /// `dest` crosses (its hop count), given the configured link kind and
    /// boundary.
    pub fn hop_count(&self, src: NodeId, dest: NodeId) -> u32 {
        let mut hops = 0u32;
        for d in 0..self.n {
            let (a, b) = (self.coord(src, d), self.coord(dest, d));
            hops += self.ring_offset_routed(a, b).unsigned_abs() as u32;
        }
        hops
    }

    /// The longest dimension-order route in the network (hops): `n(k-1)`
    /// for the unidirectional torus and the mesh, `n⌊k/2⌋` for the
    /// bidirectional torus.
    pub fn max_hops(&self) -> u32 {
        let per_dim = match (self.boundary, self.links) {
            (Boundary::Torus, LinkKind::Bidirectional) => self.k / 2,
            _ => self.k - 1,
        };
        self.n * per_dim
    }

    /// Mean hops per dimension for uniformly-distributed source/destination
    /// pairs, Eq. (1) of the paper: `k̄ = Σ_{i=1}^{k-1} i/k = (k-1)/2`
    /// (unidirectional links; the average includes destinations that need no
    /// movement in the dimension).
    pub fn mean_hops_per_dim(&self) -> f64 {
        let k = self.k as f64;
        if self.boundary == Boundary::Mesh {
            // Mean |a - b| over independent uniform coordinates a, b:
            // (k² - 1)/(3k).
            return (k * k - 1.0) / (3.0 * k);
        }
        match self.links {
            LinkKind::Unidirectional => (k - 1.0) / 2.0,
            // For bidirectional links the mean of |shortest offset| over a
            // uniform destination coordinate: k/4 for even k, (k²-1)/(4k)
            // for odd k.
            LinkKind::Bidirectional => {
                if self.k.is_multiple_of(2) {
                    k / 4.0
                } else {
                    (k * k - 1.0) / (4.0 * k)
                }
            }
        }
    }

    /// Mean total hops for uniformly-distributed destinations, Eq. (2):
    /// `d̄ = n·k̄`.
    pub fn mean_hops_total(&self) -> f64 {
        self.n as f64 * self.mean_hops_per_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(
            KAryNCube::unidirectional(1, 2),
            Err(TopologyError::RadixTooSmall)
        );
        assert_eq!(
            KAryNCube::unidirectional(4, 0),
            Err(TopologyError::BadDimensionCount)
        );
        assert_eq!(
            KAryNCube::unidirectional(4, 9),
            Err(TopologyError::BadDimensionCount)
        );
        assert_eq!(
            KAryNCube::unidirectional(1 << 11, 3),
            Err(TopologyError::TooManyNodes)
        );
    }

    #[test]
    fn paper_network_size() {
        // The paper's validation network: 16-ary 2-cube, N = 256.
        let t = KAryNCube::unidirectional(16, 2).unwrap();
        assert_eq!(t.num_nodes(), 256);
        assert_eq!(t.num_channels(), 512);
        assert_eq!(t.channels_per_node(), 2);
    }

    #[test]
    fn coordinate_roundtrip() {
        let t = KAryNCube::unidirectional(5, 3).unwrap();
        for node in t.nodes() {
            let coords = t.coords(node);
            assert_eq!(t.node_at(&coords), node);
            for (d, &c) in coords.iter().enumerate() {
                assert_eq!(t.coord(node, d as u32), c);
            }
        }
    }

    #[test]
    fn neighbors_wrap_around() {
        let t = KAryNCube::unidirectional(4, 2).unwrap();
        let n = t.node_at(&[3, 2]);
        assert_eq!(t.coords(t.neighbor_plus(n, 0)), vec![0, 2]);
        assert_eq!(t.coords(t.neighbor_plus(n, 1)), vec![3, 3]);
        assert_eq!(t.coords(t.neighbor_minus(n, 0)), vec![2, 2]);
        let z = t.node_at(&[0, 0]);
        assert_eq!(t.coords(t.neighbor_minus(z, 1)), vec![0, 3]);
    }

    #[test]
    fn neighbor_plus_minus_inverse() {
        let t = KAryNCube::unidirectional(7, 2).unwrap();
        for node in t.nodes() {
            for d in 0..2 {
                assert_eq!(t.neighbor_minus(t.neighbor_plus(node, d), d), node);
                assert_eq!(t.neighbor_plus(t.neighbor_minus(node, d), d), node);
            }
        }
    }

    #[test]
    fn forward_distance() {
        let t = KAryNCube::unidirectional(8, 1).unwrap();
        assert_eq!(t.ring_distance_forward(3, 3), 0);
        assert_eq!(t.ring_distance_forward(3, 4), 1);
        assert_eq!(t.ring_distance_forward(4, 3), 7);
        assert_eq!(t.ring_distance_forward(7, 0), 1);
    }

    #[test]
    fn shortest_offset_bidirectional() {
        let t = KAryNCube::bidirectional(8, 1).unwrap();
        assert_eq!(t.ring_offset_shortest(0, 3), 3);
        assert_eq!(t.ring_offset_shortest(0, 5), -3);
        // Tie at exactly half way resolves positive.
        assert_eq!(t.ring_offset_shortest(0, 4), 4);
    }

    #[test]
    fn mean_hops_matches_enumeration_unidirectional() {
        for k in [2u32, 3, 4, 8, 16] {
            let t = KAryNCube::unidirectional(k, 2).unwrap();
            // Enumerate destination coordinates uniformly (including self).
            let total: u32 = (0..k).map(|d| t.ring_distance_forward(0, d)).sum();
            let mean = total as f64 / k as f64;
            assert!((mean - t.mean_hops_per_dim()).abs() < 1e-12);
            assert!((t.mean_hops_total() - 2.0 * mean).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_hops_matches_enumeration_bidirectional() {
        for k in [2u32, 3, 4, 5, 8, 9, 16] {
            let t = KAryNCube::bidirectional(k, 2).unwrap();
            let total: u32 = (0..k)
                .map(|d| t.ring_offset_shortest(0, d).unsigned_abs() as u32)
                .sum();
            let mean = total as f64 / k as f64;
            assert!(
                (mean - t.mean_hops_per_dim()).abs() < 1e-12,
                "k={k}: enumerated {mean} vs formula {}",
                t.mean_hops_per_dim()
            );
        }
    }

    #[test]
    fn hop_count_is_sum_of_ring_distances() {
        let t = KAryNCube::unidirectional(6, 2).unwrap();
        let s = t.node_at(&[1, 4]);
        let d = t.node_at(&[4, 2]);
        // x: 1→4 is 3 hops; y: 4→2 is 4 hops (wrap).
        assert_eq!(t.hop_count(s, d), 7);
        assert_eq!(t.hop_count(s, s), 0);
    }

    #[test]
    fn mesh_requires_bidirectional_links() {
        let err =
            KAryNCube::with_boundary(4, 2, LinkKind::Unidirectional, Boundary::Mesh).unwrap_err();
        assert!(matches!(err, TopologyError::UnsupportedLinkKind { .. }));
        // The context names the offending call site, not generic text.
        assert!(format!("{err}").contains("with_boundary"));
        assert!(KAryNCube::mesh(4, 2).is_ok());
    }

    #[test]
    fn mesh_channels_exist_except_wraparound() {
        use crate::channel::{Channel, Direction};
        let m = KAryNCube::mesh(4, 2).unwrap();
        let t = KAryNCube::bidirectional(4, 2).unwrap();
        let mut missing = 0;
        for from in m.nodes() {
            for dim in 0..m.n() {
                for direction in [Direction::Plus, Direction::Minus] {
                    let c = Channel {
                        from,
                        dim,
                        direction,
                    };
                    assert!(t.channel_exists(c), "torus has every channel");
                    let wrap = (direction == Direction::Plus && m.coord(from, dim) == 3)
                        || (direction == Direction::Minus && m.coord(from, dim) == 0);
                    assert_eq!(m.channel_exists(c), !wrap);
                    if wrap {
                        missing += 1;
                    }
                }
            }
        }
        // 2 wrap channels per ring, k rings per dimension, 2 dimensions.
        assert_eq!(missing, 2 * 4 * 2);
        // Unidirectional networks have no Minus channels at all.
        let u = KAryNCube::unidirectional(4, 2).unwrap();
        let minus = Channel {
            from: NodeId(0),
            dim: 0,
            direction: Direction::Minus,
        };
        assert!(!u.channel_exists(minus));
    }

    #[test]
    fn mesh_offsets_never_wrap() {
        let m = KAryNCube::mesh(8, 1).unwrap();
        assert_eq!(m.ring_offset_routed(0, 5), 5);
        assert_eq!(m.ring_offset_routed(5, 0), -5);
        assert_eq!(m.ring_offset_routed(7, 0), -7);
        // Torus counterparts for contrast.
        let t = KAryNCube::bidirectional(8, 1).unwrap();
        assert_eq!(t.ring_offset_routed(0, 5), -3);
        assert_eq!(t.ring_offset_routed(7, 0), 1);
        let u = KAryNCube::unidirectional(8, 1).unwrap();
        assert_eq!(u.ring_offset_routed(5, 0), 3);
    }

    #[test]
    fn mesh_hop_count_is_manhattan_distance() {
        let m = KAryNCube::mesh(5, 2).unwrap();
        let s = m.node_at(&[0, 4]);
        let d = m.node_at(&[4, 1]);
        assert_eq!(m.hop_count(s, d), 4 + 3);
        assert_eq!(m.max_hops(), 8);
        assert_eq!(KAryNCube::bidirectional(8, 2).unwrap().max_hops(), 8);
        assert_eq!(KAryNCube::unidirectional(8, 2).unwrap().max_hops(), 14);
    }

    #[test]
    fn mesh_mean_hops_matches_enumeration() {
        for k in [2u32, 3, 4, 5, 8] {
            let m = KAryNCube::mesh(k, 2).unwrap();
            let total: i64 = (0..k)
                .flat_map(|a| (0..k).map(move |b| (a as i64 - b as i64).abs()))
                .sum();
            let mean = total as f64 / (k * k) as f64;
            assert!(
                (mean - m.mean_hops_per_dim()).abs() < 1e-12,
                "k={k}: enumerated {mean} vs formula {}",
                m.mean_hops_per_dim()
            );
        }
    }

    #[test]
    fn with_coord_replaces_single_dimension() {
        let t = KAryNCube::unidirectional(9, 3).unwrap();
        let n = t.node_at(&[2, 5, 7]);
        assert_eq!(t.coords(t.with_coord(n, 1, 0)), vec![2, 0, 7]);
        assert_eq!(t.coords(t.with_coord(n, 2, 8)), vec![2, 5, 8]);
    }
}
