//! k-ary n-cube topology substrate.
//!
//! This crate provides the network geometry shared by the analytical model
//! (`kncube-core`) and the flit-level simulator (`kncube-sim`):
//!
//! * [`KAryNCube`] — the torus geometry: `N = k^n` nodes arranged in `n`
//!   dimensions with `k` nodes per dimension, connected by unidirectional or
//!   bidirectional links (the paper analyses the unidirectional case);
//! * [`NodeId`] / coordinate conversion in mixed radix `k`;
//! * [`Channel`] / [`ChannelId`] — identification of the physical network
//!   channels (one outgoing channel per node per dimension and direction);
//! * dimension-order ("XY") deterministic routing ([`routing`]), including
//!   the Dally–Seitz virtual-channel *dating* classes that make wormhole
//!   routing deadlock-free on rings with wrap-around links;
//! * the hot-spot geometry of §3 of the paper ([`hotspot`]): distances of
//!   channels and rings from the hot-spot node / hot `y`-ring, and the
//!   traffic fractions `P_hx,j`, `P_hy,j` of Eqs. (4)–(5).
//!
//! Everything here is exact, deterministic combinatorics; the probabilistic
//! machinery lives in `kncube-traffic` and `kncube-queueing`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod faults;
pub mod geometry;
pub mod hotspot;
pub mod ring;
pub mod routing;

pub use channel::{Channel, ChannelId, Direction};
pub use faults::{FaultRouter, FaultSet};
pub use geometry::{Boundary, KAryNCube, LinkKind, NodeId, TopologyError};
pub use hotspot::HotSpotGeometry;
pub use ring::{Ring, RingId};
pub use routing::{DorRoute, Hop, VcClass};
