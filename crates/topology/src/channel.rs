//! Identification of physical network channels.
//!
//! Each node owns one outgoing channel per dimension and direction.  A
//! channel is named by its *source* node, the dimension it travels in, and
//! the direction around the ring.  Channels get dense integer ids
//! ([`ChannelId`]) so simulator and statistics code can use flat tables.

use crate::geometry::{KAryNCube, LinkKind, NodeId};

/// Direction of travel around a ring.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Towards increasing coordinates (`+1 mod k`); the only direction in the
    /// unidirectional networks the paper analyses.
    Plus,
    /// Towards decreasing coordinates (`-1 mod k`); bidirectional networks
    /// only.
    Minus,
}

impl Direction {
    /// 0 for `Plus`, 1 for `Minus` — used in channel-id packing.
    #[inline]
    pub fn index(self) -> u32 {
        match self {
            Direction::Plus => 0,
            Direction::Minus => 1,
        }
    }
}

/// A physical network channel: the outgoing link of `from` in `dim`,
/// travelling `direction` around the ring.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Channel {
    /// Source node of the channel.
    pub from: NodeId,
    /// Dimension the channel travels in.
    pub dim: u32,
    /// Direction around the ring.
    pub direction: Direction,
}

impl Channel {
    /// The node this channel delivers flits to.
    pub fn to(&self, topo: &KAryNCube) -> NodeId {
        match self.direction {
            Direction::Plus => topo.neighbor_plus(self.from, self.dim),
            Direction::Minus => topo.neighbor_minus(self.from, self.dim),
        }
    }

    /// Dense id of this channel in `topo`.
    ///
    /// Packing: unidirectional `id = from·n + dim`; bidirectional
    /// `id = (from·n + dim)·2 + direction`.
    pub fn id(&self, topo: &KAryNCube) -> ChannelId {
        let base = self.from.0 * topo.n() + self.dim;
        match topo.link_kind() {
            LinkKind::Unidirectional => {
                debug_assert_eq!(self.direction, Direction::Plus);
                ChannelId(base)
            }
            LinkKind::Bidirectional => ChannelId(base * 2 + self.direction.index()),
        }
    }

    /// Inverse of [`Channel::id`].
    pub fn from_id(topo: &KAryNCube, id: ChannelId) -> Channel {
        match topo.link_kind() {
            LinkKind::Unidirectional => Channel {
                from: NodeId(id.0 / topo.n()),
                dim: id.0 % topo.n(),
                direction: Direction::Plus,
            },
            LinkKind::Bidirectional => {
                let direction = if id.0.is_multiple_of(2) {
                    Direction::Plus
                } else {
                    Direction::Minus
                };
                let base = id.0 / 2;
                Channel {
                    from: NodeId(base / topo.n()),
                    dim: base % topo.n(),
                    direction,
                }
            }
        }
    }
}

/// Dense integer id of a physical channel; see [`Channel::id`] for packing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// The raw index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_unidirectional() {
        let t = KAryNCube::unidirectional(5, 3).unwrap();
        let mut seen = vec![false; t.num_channels() as usize];
        for from in t.nodes() {
            for dim in 0..t.n() {
                let c = Channel {
                    from,
                    dim,
                    direction: Direction::Plus,
                };
                let id = c.id(&t);
                assert!(!seen[id.index()], "duplicate channel id {id:?}");
                seen[id.index()] = true;
                assert_eq!(Channel::from_id(&t, id), c);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn id_roundtrip_bidirectional() {
        let t = KAryNCube::bidirectional(4, 2).unwrap();
        let mut seen = vec![false; t.num_channels() as usize];
        for from in t.nodes() {
            for dim in 0..t.n() {
                for direction in [Direction::Plus, Direction::Minus] {
                    let c = Channel {
                        from,
                        dim,
                        direction,
                    };
                    let id = c.id(&t);
                    assert!(!seen[id.index()]);
                    seen[id.index()] = true;
                    assert_eq!(Channel::from_id(&t, id), c);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn channel_destination() {
        let t = KAryNCube::unidirectional(4, 2).unwrap();
        let c = Channel {
            from: t.node_at(&[3, 1]),
            dim: 0,
            direction: Direction::Plus,
        };
        assert_eq!(t.coords(c.to(&t)), vec![0, 1]);
    }
}
