//! Router/link fault injection and fault-aware shortest-path routing.
//!
//! The analytical model assumes a fault-free network; this module supplies
//! the machinery for the reliability extension: a [`FaultSet`] names failed
//! routers and physical links, and a [`FaultRouter`] computes deterministic
//! shortest surviving routes around them (reporting unreachable pairs and
//! detour lengths), in the spirit of the probabilistic reliability analyses
//! of faulty k-ary n-cubes and meshes (arXiv:1301.5993, math/0407185).
//!
//! Semantics:
//!
//! * a **failed router** removes the node: no traffic may originate at,
//!   terminate at, or transit through it (all incident channels die);
//! * a **failed link** is a *physical* failure: on bidirectional networks
//!   both directed channels of the link die together;
//! * channels that do not exist in the topology ([`KAryNCube::channel_exists`]
//!   — `Minus` channels of unidirectional networks, wrap-around channels of
//!   meshes) are permanently "failed".
//!
//! The router is a brute-force breadth-first search per destination over
//! the surviving digraph — exact and deterministic (ties broken by lowest
//! [`ChannelId`]), which is what a correctness oracle and a small-network
//! simulator need; it is *not* a scalable fault-tolerant routing algorithm.
//! With an empty fault set its hop sequences coincide with dimension-order
//! routing ([`KAryNCube::dor_route`]): the lowest-channel-id tie-break
//! picks the lowest dimension first and resolves the even-`k` half-ring tie
//! towards `Plus`, exactly the DOR conventions.

use crate::channel::{Channel, Direction};
use crate::geometry::{Boundary, KAryNCube, LinkKind, NodeId};
use crate::routing::{Hop, VcClass};

/// Distance marker for unreachable (or failed) node pairs.
const UNREACHABLE: u16 = u16::MAX;

/// A set of failed routers and physical links in a topology.
#[derive(Clone, Debug)]
pub struct FaultSet {
    topo: KAryNCube,
    failed_nodes: Vec<bool>,
    failed_channels: Vec<bool>,
    num_failed_routers: u32,
    num_failed_links: u32,
}

impl FaultSet {
    /// The empty fault set: every router and link of `topo` is healthy.
    pub fn none(topo: KAryNCube) -> Self {
        FaultSet {
            topo,
            failed_nodes: vec![false; topo.num_nodes() as usize],
            failed_channels: vec![false; topo.num_channels() as usize],
            num_failed_routers: 0,
            num_failed_links: 0,
        }
    }

    /// The topology the faults live in.
    pub fn topology(&self) -> &KAryNCube {
        &self.topo
    }

    /// Fail the router at `node` (idempotent).  All channels into and out
    /// of the node become unusable via [`FaultSet::channel_failed`].
    pub fn fail_node(&mut self, node: NodeId) {
        if !self.failed_nodes[node.index()] {
            self.failed_nodes[node.index()] = true;
            self.num_failed_routers += 1;
        }
    }

    /// Fail the *physical* link carried by `channel` (idempotent).  On
    /// bidirectional networks the opposite-direction channel of the same
    /// link fails with it.  Failing a channel that does not exist in the
    /// topology is a no-op (it already carries no traffic).
    pub fn fail_link(&mut self, channel: Channel) {
        if !self.topo.channel_exists(channel) {
            return;
        }
        let id = channel.id(&self.topo).index();
        if self.failed_channels[id] {
            return;
        }
        self.failed_channels[id] = true;
        self.num_failed_links += 1;
        if self.topo.link_kind() == LinkKind::Bidirectional {
            let reverse = Channel {
                from: channel.to(&self.topo),
                dim: channel.dim,
                direction: match channel.direction {
                    Direction::Plus => Direction::Minus,
                    Direction::Minus => Direction::Plus,
                },
            };
            self.failed_channels[reverse.id(&self.topo).index()] = true;
        }
    }

    /// Whether the router at `node` has failed.
    #[inline]
    pub fn node_failed(&self, node: NodeId) -> bool {
        self.failed_nodes[node.index()]
    }

    /// Whether `channel` is unusable: it does not exist in the topology,
    /// its physical link failed, or either endpoint router failed.
    pub fn channel_failed(&self, channel: Channel) -> bool {
        if !self.topo.channel_exists(channel) {
            return true;
        }
        self.failed_channels[channel.id(&self.topo).index()]
            || self.failed_nodes[channel.from.index()]
            || self.failed_nodes[channel.to(&self.topo).index()]
    }

    /// Number of failed routers.
    #[inline]
    pub fn num_failed_routers(&self) -> u32 {
        self.num_failed_routers
    }

    /// Number of failed physical links (a bidirectional pair counts once).
    #[inline]
    pub fn num_failed_links(&self) -> u32 {
        self.num_failed_links
    }

    /// True iff no router or link has failed.
    pub fn is_empty(&self) -> bool {
        self.num_failed_routers == 0 && self.num_failed_links == 0
    }

    /// A 64-bit FNV-1a digest of the fault set *and* the topology it lives
    /// in: the geometry parameters followed by the failed-router and
    /// failed-channel bitmaps.
    ///
    /// Two fault sets differing in any failed element — or living in
    /// different topologies — hash to different values (up to the 2⁻⁶⁴
    /// collision probability of the digest), which is what memoisation
    /// keys need: the same *counts* of failures on the same geometry must
    /// not alias when the failed elements differ.  The digest is a pure
    /// function of the set's content, so equal sets always agree.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = fnv1a(FNV_OFFSET, self.topo.k().to_le_bytes());
        hash = fnv1a(hash, self.topo.n().to_le_bytes());
        hash = fnv1a(
            hash,
            [self.topo.link_kind() as u8, self.topo.boundary() as u8],
        );
        hash = fnv1a(hash, self.failed_nodes.iter().map(|&b| b as u8));
        fnv1a(hash, self.failed_channels.iter().map(|&b| b as u8))
    }
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold `bytes` into an FNV-1a 64-bit running hash.
fn fnv1a(mut hash: u64, bytes: impl IntoIterator<Item = u8>) -> u64 {
    for b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Deterministic fault-aware router: exact shortest surviving paths.
///
/// Construction runs one reverse breadth-first search per destination over
/// the surviving digraph and stores the full `N × N` distance table
/// (`u16` per pair).  [`FaultRouter::next_hop`] then picks, at each node,
/// the lowest-[`ChannelId`] surviving out-channel that decreases the
/// distance to the destination — a deterministic minimal route in the
/// surviving graph.
///
/// [`ChannelId`]: crate::channel::ChannelId
#[derive(Clone, Debug)]
pub struct FaultRouter {
    topo: KAryNCube,
    faults: FaultSet,
    /// Destination-major distance table: `dist[dest·N + node]`.
    dist: Vec<u16>,
}

impl FaultRouter {
    /// Build the distance tables for `faults` (which carries its topology).
    pub fn new(faults: FaultSet) -> Self {
        let topo = *faults.topology();
        let nodes = topo.num_nodes() as usize;
        let mut dist = vec![UNREACHABLE; nodes * nodes];
        let mut queue = std::collections::VecDeque::with_capacity(nodes);
        for dest in topo.nodes() {
            if faults.node_failed(dest) {
                continue;
            }
            let table = &mut dist[dest.index() * nodes..(dest.index() + 1) * nodes];
            table[dest.index()] = 0;
            queue.clear();
            queue.push_back(dest);
            while let Some(u) = queue.pop_front() {
                let d = table[u.index()];
                // Predecessors of `u`: sources of surviving channels into it.
                for dim in 0..topo.n() {
                    for (v, direction) in [
                        (topo.neighbor_minus(u, dim), Direction::Plus),
                        (topo.neighbor_plus(u, dim), Direction::Minus),
                    ] {
                        let c = Channel {
                            from: v,
                            dim,
                            direction,
                        };
                        if table[v.index()] == UNREACHABLE && !faults.channel_failed(c) {
                            table[v.index()] = d + 1;
                            queue.push_back(v);
                        }
                    }
                }
            }
        }
        FaultRouter { topo, faults, dist }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &KAryNCube {
        &self.topo
    }

    /// The fault set the routes avoid.
    pub fn fault_set(&self) -> &FaultSet {
        &self.faults
    }

    #[inline]
    fn dist_raw(&self, node: NodeId, dest: NodeId) -> u16 {
        self.dist[dest.index() * self.topo.num_nodes() as usize + node.index()]
    }

    /// Length in hops of the shortest surviving path from `src` to `dest`,
    /// or `None` when no such path exists (including when either endpoint
    /// router has failed).  `Some(0)` iff `src == dest` on a healthy node.
    pub fn distance(&self, src: NodeId, dest: NodeId) -> Option<u32> {
        if self.faults.node_failed(src) {
            return None;
        }
        match self.dist_raw(src, dest) {
            UNREACHABLE => None,
            d => Some(d as u32),
        }
    }

    /// The next hop of the deterministic shortest surviving route at `cur`
    /// heading for `dest`; `None` when `cur == dest` or `dest` is
    /// unreachable from `cur`.
    ///
    /// The virtual-channel class is the stateless Dally–Seitz dateline
    /// rule ([`VcClass::for_hop`]) applied to the hop's own ring: it
    /// compares the hop's source coordinate against the *destination's*
    /// coordinate in that dimension.  On fault-free networks this
    /// reproduces dimension-order routes class-for-class (an acyclic
    /// dependency graph, so the route set is wormhole-deadlock-free by
    /// construction — pinned by [`FaultRouter::deadlock_free`]).  Detour
    /// routes keep a deterministic class but may still close a dependency
    /// cycle; check [`FaultRouter::deadlock_free`] before driving a
    /// simulator with a faulted route set.  Mesh routes use only
    /// [`VcClass::High`].
    pub fn next_hop(&self, cur: NodeId, dest: NodeId) -> Option<Hop> {
        if cur == dest {
            return None;
        }
        let d = self.dist_raw(cur, dest);
        if d == UNREACHABLE || self.faults.node_failed(cur) {
            return None;
        }
        for dim in 0..self.topo.n() {
            for direction in [Direction::Plus, Direction::Minus] {
                let channel = Channel {
                    from: cur,
                    dim,
                    direction,
                };
                if self.faults.channel_failed(channel) {
                    continue;
                }
                // `d - 1` rather than `neighbor + 1`: the neighbor may sit
                // at the UNREACHABLE marker, which must not wrap.
                if self.dist_raw(channel.to(&self.topo), dest) == d - 1 {
                    let vc_class = self.hop_class(channel, dest);
                    return Some(Hop { channel, vc_class });
                }
            }
        }
        unreachable!("finite BFS distance implies a distance-decreasing out-channel");
    }

    /// Stateless Dally–Seitz dateline class for a hop heading to `dest`:
    /// [`VcClass::Low`] while the remaining travel in the hop's ring still
    /// crosses that ring's wrap-around link, [`VcClass::High`] after.
    ///
    /// Detour routes can *sidestep* — move in a dimension whose coordinate
    /// already matches the destination's, which dimension-order routing
    /// never does and [`VcClass::for_hop`] rejects.  A sidestep takes the
    /// Low class iff the hop itself crosses the wrap-around link.
    fn hop_class(&self, channel: Channel, dest: NodeId) -> VcClass {
        if self.topo.boundary() == Boundary::Mesh {
            return VcClass::High;
        }
        let cur = self.topo.coord(channel.from, channel.dim);
        let target = self.topo.coord(dest, channel.dim);
        if cur == target {
            let crosses = match channel.direction {
                Direction::Plus => cur == self.topo.k() - 1,
                Direction::Minus => cur == 0,
            };
            return if crosses { VcClass::Low } else { VcClass::High };
        }
        VcClass::for_hop(cur, target, channel.direction)
    }

    /// The full deterministic route from `src` to `dest` (empty when
    /// `src == dest`), or `None` when `dest` is unreachable from `src`.
    pub fn route(&self, src: NodeId, dest: NodeId) -> Option<Vec<Hop>> {
        self.distance(src, dest)?;
        let mut hops = Vec::new();
        let mut cur = src;
        while cur != dest {
            let hop = self
                .next_hop(cur, dest)
                .expect("finite distance implies a next hop");
            cur = hop.channel.to(&self.topo);
            hops.push(hop);
        }
        Some(hops)
    }

    /// Number of ordered pairs `(src, dest)` with `src != dest` that can
    /// still communicate.
    pub fn reachable_pairs(&self) -> u64 {
        let mut pairs = 0u64;
        for src in self.topo.nodes() {
            if self.faults.node_failed(src) {
                continue;
            }
            for dest in self.topo.nodes() {
                if src != dest && self.dist_raw(src, dest) != UNREACHABLE {
                    pairs += 1;
                }
            }
        }
        pairs
    }

    /// Fraction of the `N(N-1)` ordered pairs that can still communicate
    /// (1.0 on a fault-free network).
    pub fn reachable_fraction(&self) -> f64 {
        let n = self.topo.num_nodes() as u64;
        self.reachable_pairs() as f64 / (n * (n - 1)) as f64
    }

    /// Mean detour over the reachable ordered pairs: surviving shortest
    /// distance minus the fault-free minimal distance
    /// ([`KAryNCube::hop_count`]).  0.0 when no pair is reachable.
    pub fn expected_detour(&self) -> f64 {
        let mut pairs = 0u64;
        let mut extra = 0u64;
        for src in self.topo.nodes() {
            if self.faults.node_failed(src) {
                continue;
            }
            for dest in self.topo.nodes() {
                if src == dest {
                    continue;
                }
                let d = self.dist_raw(src, dest);
                if d != UNREACHABLE {
                    pairs += 1;
                    extra += d as u64 - self.topo.hop_count(src, dest) as u64;
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            extra as f64 / pairs as f64
        }
    }

    /// Whether the route set is wormhole-deadlock-free, by Dally's
    /// criterion: the channel-dependency graph over `(channel, VC class)`
    /// vertices — one edge per consecutive hop pair of any surviving
    /// route — is acyclic.
    ///
    /// Fault-free dimension-order routes satisfy this by construction
    /// (the Dally–Seitz classes break every ring cycle), but detour
    /// routes around faults may turn against dimension order and close a
    /// cycle; a simulator driving such a route set can deadlock under
    /// load.  Sweeps that need clean latency measurements use this
    /// predicate to select provably safe fault samples.
    pub fn deadlock_free(&self) -> bool {
        // Vertex per (channel, class): index = channel · 2 + class.
        let nv = self.topo.num_channels() as usize * 2;
        let vertex = |hop: &Hop| {
            let class = match hop.vc_class {
                VcClass::High => 0,
                VcClass::Low => 1,
            };
            hop.channel.id(&self.topo).index() * 2 + class
        };
        let mut adj = vec![false; nv * nv];
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); nv];
        for src in self.topo.nodes() {
            if self.faults.node_failed(src) {
                continue;
            }
            for dest in self.topo.nodes() {
                if src == dest || self.dist_raw(src, dest) == UNREACHABLE {
                    continue;
                }
                let mut cur = src;
                let mut prev: Option<usize> = None;
                while cur != dest {
                    let hop = self
                        .next_hop(cur, dest)
                        .expect("finite distance implies a next hop");
                    let v = vertex(&hop);
                    if let Some(u) = prev {
                        if !adj[u * nv + v] {
                            adj[u * nv + v] = true;
                            out[u].push(v as u32);
                        }
                    }
                    prev = Some(v);
                    cur = hop.channel.to(&self.topo);
                }
            }
        }
        // Kahn's algorithm: the graph is acyclic iff every vertex drains.
        let mut indeg = vec![0u32; nv];
        for edges in &out {
            for &v in edges {
                indeg[v as usize] += 1;
            }
        }
        let mut stack: Vec<usize> = (0..nv).filter(|&v| indeg[v] == 0).collect();
        let mut drained = 0usize;
        while let Some(u) = stack.pop() {
            drained += 1;
            for &v in &out[u] {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    stack.push(v as usize);
                }
            }
        }
        drained == nv
    }

    /// The largest finite distance in the table (0 on a fully-failed
    /// network) — an upper bound on surviving route lengths, used to size
    /// per-message hop storage.
    pub fn max_finite_distance(&self) -> u32 {
        self.dist
            .iter()
            .filter(|&&d| d != UNREACHABLE)
            .map(|&d| d as u32)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_topologies(k: u32, n: u32) -> Vec<KAryNCube> {
        vec![
            KAryNCube::unidirectional(k, n).unwrap(),
            KAryNCube::bidirectional(k, n).unwrap(),
            KAryNCube::mesh(k, n).unwrap(),
        ]
    }

    #[test]
    fn empty_fault_set_reproduces_dimension_order_channels() {
        for t in all_topologies(5, 2).into_iter().chain(all_topologies(4, 2)) {
            let router = FaultRouter::new(FaultSet::none(t));
            for src in t.nodes() {
                for dest in t.nodes() {
                    assert_eq!(router.distance(src, dest), Some(t.hop_count(src, dest)));
                    let dor = t.dor_route(src, dest);
                    let fault_route = router.route(src, dest).unwrap();
                    // Hop-for-hop: channels AND Dally–Seitz classes (the
                    // dateline rule coincides with DOR's on direct routes).
                    assert_eq!(
                        dor.hops,
                        fault_route,
                        "{:?} {:?} {:?}→{:?}",
                        t.link_kind(),
                        t.boundary(),
                        t.coords(src),
                        t.coords(dest)
                    );
                }
            }
            assert_eq!(router.reachable_fraction(), 1.0);
            assert_eq!(router.expected_detour(), 0.0);
            assert_eq!(router.max_finite_distance(), t.max_hops());
        }
    }

    #[test]
    fn mesh_empty_fault_routes_match_dor_exactly_including_classes() {
        let m = KAryNCube::mesh(4, 3).unwrap();
        let router = FaultRouter::new(FaultSet::none(m));
        for src in m.nodes() {
            for dest in m.nodes() {
                assert_eq!(
                    router.route(src, dest).unwrap(),
                    m.dor_route(src, dest).hops
                );
            }
        }
    }

    #[test]
    fn failed_router_is_unreachable_and_not_transited() {
        let t = KAryNCube::bidirectional(4, 2).unwrap();
        let dead = t.node_at(&[1, 1]);
        let mut faults = FaultSet::none(t);
        faults.fail_node(dead);
        faults.fail_node(dead); // idempotent
        assert_eq!(faults.num_failed_routers(), 1);
        let router = FaultRouter::new(faults);
        for other in t.nodes().filter(|&o| o != dead) {
            assert_eq!(router.distance(other, dead), None);
            assert_eq!(router.distance(dead, other), None);
        }
        // Surviving routes never visit the dead node.
        for src in t.nodes().filter(|&s| s != dead) {
            for dest in t.nodes().filter(|&d| d != dead) {
                let route = router.route(src, dest).expect("2-D torus is 2-connected");
                assert!(route.iter().all(|h| h.channel.to(&t) != dead));
            }
        }
        // N-1 healthy nodes all still talk: (N-1)(N-2) ordered pairs.
        assert_eq!(router.reachable_pairs(), 15 * 14);
    }

    #[test]
    fn bidirectional_link_failure_kills_both_directions() {
        let t = KAryNCube::bidirectional(4, 1).unwrap();
        let mut faults = FaultSet::none(t);
        let forward = Channel {
            from: NodeId(1),
            dim: 0,
            direction: Direction::Plus,
        };
        faults.fail_link(forward);
        assert_eq!(faults.num_failed_links(), 1);
        assert!(faults.channel_failed(forward));
        assert!(faults.channel_failed(Channel {
            from: NodeId(2),
            dim: 0,
            direction: Direction::Minus,
        }));
        // The ring minus one link is a path: everyone still reachable, the
        // 1↔2 pairs detour the long way round (3 hops instead of 1).
        let router = FaultRouter::new(faults);
        assert_eq!(router.reachable_fraction(), 1.0);
        assert_eq!(router.distance(NodeId(1), NodeId(2)), Some(3));
        assert_eq!(router.distance(NodeId(2), NodeId(1)), Some(3));
        // Mean detour: 2 of the 12 ordered pairs gained 2 hops each.
        assert!((router.expected_detour() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn unidirectional_link_failure_disconnects_the_ring() {
        // A unidirectional ring has exactly one path between any pair, so a
        // single link failure severs every pair that used it.
        let t = KAryNCube::unidirectional(4, 1).unwrap();
        let mut faults = FaultSet::none(t);
        faults.fail_link(Channel {
            from: NodeId(0),
            dim: 0,
            direction: Direction::Plus,
        });
        let router = FaultRouter::new(faults);
        assert_eq!(router.distance(NodeId(0), NodeId(1)), None);
        assert_eq!(router.distance(NodeId(3), NodeId(1)), None);
        assert_eq!(router.distance(NodeId(1), NodeId(0)), Some(3));
        // Pairs not crossing 0→1 survive: (1,2),(1,3),(1,0),(2,3),(2,0),(3,0).
        assert_eq!(router.reachable_pairs(), 6);
    }

    #[test]
    fn failing_nonexistent_channels_is_a_noop() {
        let m = KAryNCube::mesh(3, 2).unwrap();
        let mut faults = FaultSet::none(m);
        // Wrap-around channel of a mesh: does not exist.
        faults.fail_link(Channel {
            from: m.node_at(&[2, 0]),
            dim: 0,
            direction: Direction::Plus,
        });
        assert_eq!(faults.num_failed_links(), 0);
        assert!(faults.is_empty());
        let u = KAryNCube::unidirectional(3, 1).unwrap();
        let mut faults = FaultSet::none(u);
        faults.fail_link(Channel {
            from: NodeId(0),
            dim: 0,
            direction: Direction::Minus,
        });
        assert_eq!(faults.num_failed_links(), 0);
    }

    #[test]
    fn detour_routes_are_minimal_in_the_surviving_graph() {
        // Mesh corner cut off except one path: routes must still be BFS
        // shortest.  Fail the two links next to corner (0,0)'s neighbors so
        // reaching it requires a specific detour.
        let m = KAryNCube::mesh(3, 2).unwrap();
        let mut faults = FaultSet::none(m);
        faults.fail_link(Channel {
            from: m.node_at(&[0, 0]),
            dim: 0,
            direction: Direction::Plus,
        });
        let router = FaultRouter::new(faults);
        // (0,0) → (1,0) must now go up, right, down: 3 hops.
        assert_eq!(
            router.distance(m.node_at(&[0, 0]), m.node_at(&[1, 0])),
            Some(3)
        );
        let route = router
            .route(m.node_at(&[0, 0]), m.node_at(&[1, 0]))
            .unwrap();
        assert_eq!(route.len(), 3);
        assert!(route
            .iter()
            .all(|h| !router.fault_set().channel_failed(h.channel)));
        assert!(route.iter().all(|h| h.vc_class == VcClass::High));
    }

    #[test]
    fn next_hop_walk_matches_route_and_terminates() {
        let t = KAryNCube::bidirectional(5, 2).unwrap();
        let mut faults = FaultSet::none(t);
        faults.fail_node(NodeId(7));
        faults.fail_link(Channel {
            from: NodeId(3),
            dim: 1,
            direction: Direction::Plus,
        });
        let router = FaultRouter::new(faults);
        for src in t.nodes() {
            for dest in t.nodes() {
                match router.route(src, dest) {
                    None => assert_eq!(router.next_hop(src, dest), None),
                    Some(route) => {
                        let mut cur = src;
                        for hop in &route {
                            assert_eq!(router.next_hop(cur, dest).as_ref(), Some(hop));
                            cur = hop.channel.to(&t);
                        }
                        assert_eq!(router.next_hop(cur, dest), None);
                        assert_eq!(route.len() as u32, router.distance(src, dest).unwrap());
                    }
                }
            }
        }
    }

    #[test]
    fn fingerprint_separates_distinct_sets_and_topologies() {
        let t = KAryNCube::bidirectional(4, 2).unwrap();
        let empty = FaultSet::none(t);
        // Same content hashes equal.
        assert_eq!(empty.fingerprint(), FaultSet::none(t).fingerprint());
        // Same failure *count*, different failed element: must not alias.
        let mut a = FaultSet::none(t);
        a.fail_node(NodeId(1));
        let mut b = FaultSet::none(t);
        b.fail_node(NodeId(2));
        assert_eq!(a.num_failed_routers(), b.num_failed_routers());
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), empty.fingerprint());
        // A link failure is not a router failure.
        let mut c = FaultSet::none(t);
        c.fail_link(Channel {
            from: NodeId(1),
            dim: 0,
            direction: Direction::Plus,
        });
        assert_ne!(c.fingerprint(), a.fingerprint());
        // The topology is part of the digest: the same (empty) set on a
        // different geometry or link kind hashes differently.
        for other in [
            KAryNCube::unidirectional(4, 2).unwrap(),
            KAryNCube::mesh(4, 2).unwrap(),
            KAryNCube::bidirectional(2, 4).unwrap(),
        ] {
            assert_ne!(FaultSet::none(other).fingerprint(), empty.fingerprint());
        }
    }

    #[test]
    fn fingerprint_is_insertion_order_independent() {
        let t = KAryNCube::mesh(4, 2).unwrap();
        let mut ab = FaultSet::none(t);
        ab.fail_node(NodeId(3));
        ab.fail_node(NodeId(9));
        let mut ba = FaultSet::none(t);
        ba.fail_node(NodeId(9));
        ba.fail_node(NodeId(3));
        assert_eq!(ab.fingerprint(), ba.fingerprint());
    }

    #[test]
    fn fault_free_route_sets_are_deadlock_free() {
        // Dimension-order routes with Dally–Seitz wrap classes have an
        // acyclic channel-dependency graph on every geometry.
        for t in all_topologies(5, 2)
            .into_iter()
            .chain(all_topologies(4, 3))
            .chain(all_topologies(2, 4))
        {
            let router = FaultRouter::new(FaultSet::none(t));
            assert!(router.deadlock_free(), "{t:?}");
        }
    }

    #[test]
    fn a_detour_that_turns_against_dimension_order_closes_a_cycle() {
        // On a bidirectional torus, killing a dim-0 link forces detours
        // through dim 1 and back into dim 0 — the classic turn pattern
        // that closes a channel-dependency cycle under the wrap-crossing
        // class rule.  The predicate must catch at least one such set
        // (this is the mechanism behind the simulator deadlocks the
        // faulty-model sweep works around).
        let t = KAryNCube::bidirectional(8, 2).unwrap();
        let mut any_cyclic = false;
        for node in 0..16u32 {
            let mut faults = FaultSet::none(t);
            faults.fail_node(NodeId(node));
            faults.fail_link(Channel {
                from: NodeId(node + 17),
                dim: 0,
                direction: Direction::Plus,
            });
            let router = FaultRouter::new(faults);
            if router.reachable_pairs() > 0 && !router.deadlock_free() {
                any_cyclic = true;
                break;
            }
        }
        assert!(
            any_cyclic,
            "no cyclic dependency found across the probe fault sets"
        );
    }

    #[test]
    fn node_failures_keep_mesh_routes_deadlock_free_when_detours_stay_minimal() {
        // A single failed corner router on a mesh leaves every surviving
        // route dimension-ordered (no wrap links exist to close ring
        // cycles through), so the dependency graph stays acyclic.
        let t = KAryNCube::mesh(5, 2).unwrap();
        let mut faults = FaultSet::none(t);
        faults.fail_node(NodeId(0));
        let router = FaultRouter::new(faults);
        assert!(router.reachable_pairs() > 0);
        assert!(router.deadlock_free());
    }
}
