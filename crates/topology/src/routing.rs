//! Deterministic dimension-order routing and deadlock-avoidance classes.
//!
//! Assumption (v) of the paper: routing is deterministic, messages cross
//! dimensions in a fixed order — dimension `x` (0) first, then `y` (1).
//! Within a dimension a message follows the ring (always `+1 mod k` in the
//! unidirectional case) until its coordinate matches the destination's.
//!
//! Assumption (vi): each physical channel carries `V >= 2` virtual channels
//! so that wrap-around links do not create cyclic channel dependencies.
//! We implement the Dally–Seitz *dating* scheme \[5\]: within a ring a
//! message uses the **high** virtual-channel class while its current
//! coordinate is below the destination coordinate (it will not cross the
//! wrap-around link any more) and the **low** class otherwise.  The
//! resulting channel ordering is acyclic, which is the classical
//! deadlock-freedom argument for wormhole tori.

use crate::channel::{Channel, Direction};
use crate::geometry::{KAryNCube, NodeId};

/// Dally–Seitz virtual-channel class within a ring.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VcClass {
    /// Used while `current coordinate < destination coordinate`: the
    /// remaining path in this ring does not cross the wrap-around link.
    High,
    /// Used while `current coordinate > destination coordinate`: the
    /// remaining path still crosses the wrap-around link.
    Low,
}

impl VcClass {
    /// Class for a hop in a ring from coordinate `cur` towards `dest`
    /// (coordinates in `0..k`; `cur != dest` for a real hop).
    ///
    /// For `Plus`-direction travel the wrap-around is the `k-1 → 0` link, so
    /// the remaining path wraps iff `cur > dest`; for `Minus`-direction
    /// travel the wrap-around is `0 → k-1`, so it wraps iff `cur < dest`.
    #[inline]
    pub fn for_hop(cur: u32, dest: u32, direction: Direction) -> VcClass {
        debug_assert_ne!(cur, dest);
        let wraps = match direction {
            Direction::Plus => cur > dest,
            Direction::Minus => cur < dest,
        };
        if wraps {
            VcClass::Low
        } else {
            VcClass::High
        }
    }

    /// 0 for `High`, 1 for `Low` — used to index VC groups.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            VcClass::High => 0,
            VcClass::Low => 1,
        }
    }
}

/// One hop of a deterministic route.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Hop {
    /// The physical channel crossed.
    pub channel: Channel,
    /// The Dally–Seitz virtual-channel class required on that channel.
    pub vc_class: VcClass,
}

/// A complete dimension-order route.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DorRoute {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// The hops in traversal order (empty iff `src == dest`).
    pub hops: Vec<Hop>,
}

impl DorRoute {
    /// Number of channels crossed.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True iff the route crosses no channel (`src == dest`).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }
}

impl KAryNCube {
    /// Direction of travel for dimension `dim` from `src` to `dest` under
    /// this topology's link kind and boundary, or `None` if no movement is
    /// needed.
    pub fn travel_direction(&self, src: NodeId, dest: NodeId, dim: u32) -> Option<Direction> {
        let (a, b) = (self.coord(src, dim), self.coord(dest, dim));
        if a == b {
            return None;
        }
        Some(if self.ring_offset_routed(a, b) > 0 {
            Direction::Plus
        } else {
            Direction::Minus
        })
    }

    /// Compute the full dimension-order route from `src` to `dest`:
    /// dimension 0 (`x`) first, then dimension 1 (`y`), and so on.
    ///
    /// ```
    /// use kncube_topology::KAryNCube;
    /// let t = KAryNCube::unidirectional(4, 2).unwrap();
    /// let route = t.dor_route(t.node_at(&[3, 1]), t.node_at(&[1, 2]));
    /// // x: 3→1 wraps (2 hops), then y: 1→2 (1 hop).
    /// assert_eq!(route.len(), 3);
    /// assert!(route.hops[..2].iter().all(|h| h.channel.dim == 0));
    /// assert_eq!(route.hops[2].channel.dim, 1);
    /// ```
    pub fn dor_route(&self, src: NodeId, dest: NodeId) -> DorRoute {
        let mut hops = Vec::with_capacity(self.hop_count(src, dest) as usize);
        let mut cur = src;
        for dim in 0..self.n() {
            let target = self.coord(dest, dim);
            while self.coord(cur, dim) != target {
                let direction = self
                    .travel_direction(cur, dest, dim)
                    .expect("coordinate differs, so a direction exists");
                let vc_class = VcClass::for_hop(self.coord(cur, dim), target, direction);
                let channel = Channel {
                    from: cur,
                    dim,
                    direction,
                };
                hops.push(Hop { channel, vc_class });
                cur = channel.to(self);
            }
        }
        debug_assert_eq!(cur, dest);
        DorRoute { src, dest, hops }
    }

    /// The next hop of the dimension-order route at `cur` heading for
    /// `dest`, or `None` when `cur == dest`.  This is the incremental form
    /// used by the simulator's routing stage; it agrees hop-for-hop with
    /// [`KAryNCube::dor_route`].
    pub fn dor_next_hop(&self, cur: NodeId, dest: NodeId) -> Option<Hop> {
        for dim in 0..self.n() {
            let target = self.coord(dest, dim);
            if self.coord(cur, dim) != target {
                let direction = self.travel_direction(cur, dest, dim)?;
                let vc_class = VcClass::for_hop(self.coord(cur, dim), target, direction);
                return Some(Hop {
                    channel: Channel {
                        from: cur,
                        dim,
                        direction,
                    },
                    vc_class,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_reaches_destination_and_matches_hop_count() {
        let t = KAryNCube::unidirectional(4, 2).unwrap();
        for src in t.nodes() {
            for dest in t.nodes() {
                let route = t.dor_route(src, dest);
                assert_eq!(route.len() as u32, t.hop_count(src, dest));
                let mut cur = src;
                for hop in &route.hops {
                    assert_eq!(hop.channel.from, cur);
                    cur = hop.channel.to(&t);
                }
                assert_eq!(cur, dest);
            }
        }
    }

    #[test]
    fn route_is_dimension_ordered() {
        let t = KAryNCube::unidirectional(5, 3).unwrap();
        let src = t.node_at(&[4, 2, 1]);
        let dest = t.node_at(&[1, 0, 3]);
        let route = t.dor_route(src, dest);
        let dims: Vec<u32> = route.hops.iter().map(|h| h.channel.dim).collect();
        let mut sorted = dims.clone();
        sorted.sort_unstable();
        assert_eq!(dims, sorted, "hops must be grouped by ascending dimension");
    }

    #[test]
    fn incremental_routing_agrees_with_full_route() {
        let t = KAryNCube::unidirectional(4, 2).unwrap();
        for src in t.nodes() {
            for dest in t.nodes() {
                let route = t.dor_route(src, dest);
                let mut cur = src;
                for hop in &route.hops {
                    let next = t.dor_next_hop(cur, dest).expect("hop expected");
                    assert_eq!(&next, hop);
                    cur = next.channel.to(&t);
                }
                assert_eq!(t.dor_next_hop(cur, dest), None);
            }
        }
    }

    #[test]
    fn vc_class_switches_exactly_at_wraparound() {
        let t = KAryNCube::unidirectional(8, 1).unwrap();
        // Route 5 → 2 wraps: hops at coords 5,6,7 are Low, then 0,1 High.
        let route = t.dor_route(t.node_at(&[5]), t.node_at(&[2]));
        let classes: Vec<VcClass> = route.hops.iter().map(|h| h.vc_class).collect();
        assert_eq!(
            classes,
            vec![
                VcClass::Low,
                VcClass::Low,
                VcClass::Low,
                VcClass::High,
                VcClass::High
            ]
        );
        // Route 2 → 5 does not wrap: all High.
        let route = t.dor_route(t.node_at(&[2]), t.node_at(&[5]));
        assert!(route.hops.iter().all(|h| h.vc_class == VcClass::High));
    }

    #[test]
    fn vc_class_never_returns_to_low_after_high() {
        // Once a message stops needing the wrap-around in a ring it must
        // stay in the High class — the heart of the deadlock argument.
        let t = KAryNCube::unidirectional(9, 2).unwrap();
        for src in t.nodes() {
            for dest in t.nodes() {
                let route = t.dor_route(src, dest);
                for dim in 0..t.n() {
                    let mut seen_high = false;
                    for hop in route.hops.iter().filter(|h| h.channel.dim == dim) {
                        match hop.vc_class {
                            VcClass::High => seen_high = true,
                            VcClass::Low => assert!(!seen_high, "Low after High in dim {dim}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn bidirectional_routes_take_shortest_way() {
        let t = KAryNCube::bidirectional(8, 2).unwrap();
        let src = t.node_at(&[0, 0]);
        let dest = t.node_at(&[6, 3]);
        let route = t.dor_route(src, dest);
        // x: 0→6 is 2 hops backwards; y: 0→3 is 3 hops forwards.
        assert_eq!(route.len(), 5);
        assert_eq!(t.hop_count(src, dest), 5);
        assert!(route.hops[0].channel.direction == Direction::Minus);
        assert!(route.hops[2].channel.direction == Direction::Plus);
    }

    #[test]
    fn mesh_routes_are_minimal_and_never_wrap() {
        let m = KAryNCube::mesh(5, 2).unwrap();
        for src in m.nodes() {
            for dest in m.nodes() {
                let route = m.dor_route(src, dest);
                assert_eq!(route.len() as u32, m.hop_count(src, dest));
                let mut cur = src;
                for hop in &route.hops {
                    assert!(m.channel_exists(hop.channel), "mesh route used a wrap link");
                    // No wrap-around exists, so no hop ever needs the Low
                    // (dating) class — the mesh is deadlock-free on High
                    // alone.
                    assert_eq!(hop.vc_class, VcClass::High);
                    assert_eq!(hop.channel.from, cur);
                    cur = hop.channel.to(&m);
                }
                assert_eq!(cur, dest);
            }
        }
    }

    #[test]
    fn mesh_incremental_routing_agrees_with_full_route() {
        let m = KAryNCube::mesh(4, 3).unwrap();
        for src in m.nodes() {
            for dest in m.nodes() {
                let route = m.dor_route(src, dest);
                let mut cur = src;
                for hop in &route.hops {
                    let next = m.dor_next_hop(cur, dest).expect("hop expected");
                    assert_eq!(&next, hop);
                    cur = next.channel.to(&m);
                }
                assert_eq!(m.dor_next_hop(cur, dest), None);
            }
        }
    }

    #[test]
    fn hot_spot_paths_cross_expected_channels() {
        // Spot-check the geometry reasoning used in Eqs. (4)-(5): for the
        // unidirectional 2-D torus, every hot-spot message travels x-first
        // within its own x-ring, then down the hot y-ring.
        let t = KAryNCube::unidirectional(4, 2).unwrap();
        let hot = t.node_at(&[1, 2]);
        for src in t.nodes() {
            if src == hot {
                continue;
            }
            let route = t.dor_route(src, hot);
            for hop in &route.hops {
                if hop.channel.dim == 1 {
                    // All y-dimension hops happen inside the hot y-ring
                    // (x coordinate already equals the hot node's).
                    assert_eq!(t.coord(hop.channel.from, 0), t.coord(hot, 0));
                }
            }
        }
    }
}
