//! Rings of the torus.
//!
//! §3 of the paper views the 2-D torus "as a set of k rings along each
//! dimension": the *x-rings* (rings that travel in dimension `x`, one per
//! `y` coordinate) and the *y-rings* (rings that travel in dimension `y`,
//! one per `x` coordinate).  In general, a ring of dimension `d` is the set
//! of `k` nodes that share all coordinates except the one in `d`.

use crate::geometry::{KAryNCube, NodeId};

/// Identifier of a ring: the dimension it travels in plus a dense index over
/// the `N/k` rings of that dimension.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RingId {
    /// Dimension the ring travels in.
    pub dim: u32,
    /// Dense index among the rings of this dimension (`0..N/k`).
    pub index: u32,
}

/// A ring of the torus: the `k` nodes sharing all coordinates except the one
/// in dimension [`Ring::dim`].
#[derive(Clone, Debug)]
pub struct Ring {
    /// Dimension the ring travels in.
    pub dim: u32,
    /// The member nodes, ordered by their coordinate in `dim`.
    pub nodes: Vec<NodeId>,
}

impl KAryNCube {
    /// Number of rings per dimension, `N/k`.
    pub fn rings_per_dim(&self) -> u32 {
        self.num_nodes() / self.k()
    }

    /// The ring of dimension `dim` containing `node`.
    pub fn ring_of(&self, node: NodeId, dim: u32) -> Ring {
        let nodes = (0..self.k())
            .map(|c| self.with_coord(node, dim, c))
            .collect();
        Ring { dim, nodes }
    }

    /// The id of the ring of dimension `dim` containing `node`: the node's
    /// remaining coordinates collapsed into a dense mixed-radix index.
    pub fn ring_id_of(&self, node: NodeId, dim: u32) -> RingId {
        let mut index = 0u32;
        let mut stride = 1u32;
        for d in 0..self.n() {
            if d == dim {
                continue;
            }
            index += self.coord(node, d) * stride;
            stride *= self.k();
        }
        RingId { dim, index }
    }

    /// Whether `a` and `b` lie on the same ring of dimension `dim`.
    pub fn same_ring(&self, a: NodeId, b: NodeId, dim: u32) -> bool {
        self.ring_id_of(a, dim) == self.ring_id_of(b, dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ring_membership_2d() {
        let t = KAryNCube::unidirectional(4, 2).unwrap();
        let node = t.node_at(&[2, 1]);
        // x-ring (dim 0): all nodes with y = 1.
        let xr = t.ring_of(node, 0);
        assert_eq!(xr.nodes.len(), 4);
        for (i, &m) in xr.nodes.iter().enumerate() {
            assert_eq!(t.coords(m), vec![i as u32, 1]);
        }
        // y-ring (dim 1): all nodes with x = 2.
        let yr = t.ring_of(node, 1);
        for (i, &m) in yr.nodes.iter().enumerate() {
            assert_eq!(t.coords(m), vec![2, i as u32]);
        }
    }

    #[test]
    fn ring_ids_partition_nodes() {
        let t = KAryNCube::unidirectional(5, 3).unwrap();
        for dim in 0..t.n() {
            let mut by_ring: std::collections::HashMap<u32, HashSet<NodeId>> = Default::default();
            for node in t.nodes() {
                let rid = t.ring_id_of(node, dim);
                assert_eq!(rid.dim, dim);
                assert!(rid.index < t.rings_per_dim());
                by_ring.entry(rid.index).or_default().insert(node);
            }
            assert_eq!(by_ring.len(), t.rings_per_dim() as usize);
            for members in by_ring.values() {
                assert_eq!(members.len(), t.k() as usize);
            }
        }
    }

    #[test]
    fn same_ring_agrees_with_ring_of() {
        let t = KAryNCube::unidirectional(3, 2).unwrap();
        for a in t.nodes() {
            for dim in 0..t.n() {
                let ring = t.ring_of(a, dim);
                for b in t.nodes() {
                    assert_eq!(t.same_ring(a, b, dim), ring.nodes.contains(&b));
                }
            }
        }
    }
}
