//! Criterion micro-benchmarks for the simulator (experiment MICRO):
//! cycles per second at light and heavy load, and scaling with network
//! size.  Uses `iter_custom` so each measurement simulates a fixed cycle
//! budget from a fresh network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kncube_sim::{SimConfig, Simulator};
use std::time::Instant;

const CYCLES: u64 = 20_000;

fn run_cycles(cfg: SimConfig, cycles: u64) -> u64 {
    let mut sim = Simulator::new(cfg).unwrap();
    for _ in 0..cycles {
        sim.step();
    }
    sim.in_flight() as u64
}

fn bench_sim_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_cycles");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(CYCLES));
    for (name, lambda, h) in [
        ("light_h20", 1e-4, 0.2),
        ("moderate_h20", 3e-4, 0.2),
        ("heavy_h70", 1.5e-4, 0.7),
    ] {
        let cfg = SimConfig::paper_validation(16, 2, 32, lambda, h, 7).with_limits(u64::MAX, 0, 0);
        group.bench_with_input(BenchmarkId::new("k16", name), &cfg, |b, cfg| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(run_cycles(*cfg, CYCLES));
                }
                start.elapsed()
            })
        });
    }
    group.finish();
}

fn bench_sim_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_scale");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(CYCLES));
    for k in [8u32, 16, 32] {
        // Keep the per-node load constant so work scales with N.
        let cfg = SimConfig::paper_validation(k, 2, 32, 1e-4, 0.2, 7).with_limits(u64::MAX, 0, 0);
        group.bench_with_input(BenchmarkId::new("k", k), &cfg, |b, cfg| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(run_cycles(*cfg, CYCLES));
                }
                start.elapsed()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim_load, bench_sim_scale);
criterion_main!(benches);
