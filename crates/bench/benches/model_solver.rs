//! Criterion micro-benchmarks for the analytical side (experiment MICRO):
//! fixed-point solve time across radix and load, and the queueing
//! primitives it is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kncube_core::{HotSpotModel, ModelConfig, UniformModel};
use kncube_queueing::blocking::{blocking_delay, TrafficClass};
use kncube_queueing::vc_multiplex::multiplexing_factor;
use std::hint::black_box;

fn bench_model_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_solve");
    group.sample_size(20);
    for k in [8u32, 16, 32] {
        // A moderate operating point: 40% of the k=16 figure-1 load scaled
        // by k so every radix is comfortably below saturation.
        let lambda = 2e-4 * (16.0 / k as f64);
        let cfg = ModelConfig::paper_validation(k, 2, 32, lambda, 0.2);
        group.bench_with_input(BenchmarkId::new("hotspot_k", k), &cfg, |b, cfg| {
            b.iter(|| {
                HotSpotModel::new(black_box(*cfg))
                    .unwrap()
                    .solve()
                    .unwrap()
                    .latency
            })
        });
    }
    for lambda in [1e-4, 3e-4, 5e-4] {
        let cfg = ModelConfig::paper_validation(16, 2, 32, lambda, 0.2);
        group.bench_with_input(
            BenchmarkId::new("hotspot_load", format!("{lambda:.0e}")),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    HotSpotModel::new(black_box(*cfg))
                        .unwrap()
                        .solve()
                        .unwrap()
                        .latency
                })
            },
        );
    }
    group.bench_function("uniform_k16", |b| {
        b.iter(|| {
            UniformModel::new(16, 2, 32, black_box(1e-3))
                .solve()
                .unwrap()
                .latency
        })
    });
    group.finish();
}

fn bench_queueing_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("queueing");
    group.bench_function("blocking_delay", |b| {
        b.iter(|| {
            blocking_delay(
                black_box(TrafficClass::new(1e-3, 40.0)),
                black_box(TrafficClass::new(5e-3, 33.0)),
                32.0,
                1.0 - 1e-7,
            )
        })
    });
    group.bench_function("vc_multiplexing_v4", |b| {
        b.iter(|| multiplexing_factor(black_box(0.6), 4))
    });
    group.finish();
}

criterion_group!(benches, bench_model_solve, bench_queueing_primitives);
criterion_main!(benches);
