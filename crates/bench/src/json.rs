//! A minimal JSON value type with an emitter and a parser.
//!
//! The perf harness writes `BENCH_simulator.json` and the CI
//! perf-trajectory job reads it back (and the committed baseline) for
//! schema and regression checks.  The workspace deliberately has no
//! serialization dependency, so this is the whole of JSON we need:
//! objects with insertion-ordered keys, arrays, strings, finite
//! numbers, booleans and null.
//!
//! Emission is deterministic (insertion order, fixed indentation) so the
//! committed benchmark file diffs cleanly between runs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as, and emitted from, an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append `key: value` to an object (panics on non-objects — the
    /// builders in the harness only ever hold objects here).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value)),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Member of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number inside, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline —
    /// the committed-file format.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, x: f64) {
    assert!(x.is_finite(), "JSON numbers must be finite, got {x}");
    if x == x.trunc() && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        // Shortest round-trip representation Rust offers.
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document (the full input must be one value plus
/// whitespace).  Errors carry a byte offset and a short description.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(value)
}

/// A parse failure: what went wrong and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Description of the failure.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs don't occur in our own output;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let step = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .map(char::len_utf8)
                        .unwrap_or(1);
                    let text = std::str::from_utf8(&rest[..step]).unwrap();
                    s.push_str(text);
                    self.pos += step;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            offset: start,
            message: format!("bad number '{text}'"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_benchmark_shaped_document() {
        let mut doc = Json::obj();
        doc.set("schema_version", Json::Num(1.0));
        doc.set("commit", Json::Str("abc123".into()));
        let mut cfg = Json::obj();
        cfg.set("k", Json::Num(16.0));
        cfg.set("cycles_per_sec", Json::Num(17_600_000.0));
        cfg.set("anchor_lambda", Json::Num(2.2e-5));
        doc.set("configs", Json::Arr(vec![cfg]));
        let text = doc.pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        let cps = back.get("configs").unwrap().as_arr().unwrap()[0]
            .get("cycles_per_sec")
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(cps, 17_600_000.0);
    }

    #[test]
    fn integers_emit_without_a_fraction() {
        assert_eq!(Json::Num(16.0).pretty(), "16\n");
        assert_eq!(Json::Num(2.5).pretty(), "2.5\n");
        assert_eq!(Json::Num(2.2e-5).pretty(), "0.000022\n");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = Json::Str("a\"b\\c\nd\ttab\u{1}".into());
        let text = s.pretty();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\ttab\\u0001\"\n");
        assert_eq!(parse(&text).unwrap(), s);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let doc = parse(" { \"a\" : [ 1 , -2.5e3 , true , null ] , \"b\" : {} } ").unwrap();
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2], Json::Bool(true));
        assert_eq!(arr[3], Json::Null);
        assert_eq!(doc.get("b"), Some(&Json::obj()));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err_and(|e| e.offset > 0));
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\": 1} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn key_order_is_preserved() {
        let doc = parse("{\"z\": 1, \"a\": 2}").unwrap();
        match &doc {
            Json::Obj(pairs) => {
                assert_eq!(pairs[0].0, "z");
                assert_eq!(pairs[1].0, "a");
            }
            _ => unreachable!(),
        }
        assert_eq!(doc.pretty(), "{\n  \"z\": 1,\n  \"a\": 2\n}\n");
    }
}
