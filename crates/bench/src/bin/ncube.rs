//! EXT-NCUBE: the generalized k-ary n-cube sweep — the paper's title
//! promise made concrete.  Runs the generalized analytical model
//! ([`kncube_core::NCubeModel`]) against the flit-level simulator over
//! `(k, n) ∈ {(4,3), (8,3), (4,4), (16,2)}` under hot-spot traffic: three
//! genuinely 3-/4-dimensional cubes plus the paper's own 256-node torus as
//! the `n = 2` anchor (where the generalized model is bit-identical to the
//! 2-D solver).
//!
//! ```sh
//! cargo run --release -p kncube-bench --bin ncube [-- --quick]
//! ```

use kncube_bench::{
    check_ncube_figure_shape, or_exit, print_ncube_figure, run_ncube_figure, NCubeFigureConfig,
    NCUBE_SWEEP,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (lm, h) = (16u32, 0.2f64);
    let mut all_violations = Vec::new();
    for (k, n) in NCUBE_SWEEP {
        let mut cfg = NCubeFigureConfig::new(k, n, lm, h);
        if quick {
            cfg = cfg.quick();
        }
        let rows = or_exit(run_ncube_figure(&cfg));
        print_ncube_figure(
            &format!("{k}-ary {n}-cube, h = {:.0}% (Lm = {lm} flits)", h * 100.0),
            &cfg,
            &rows,
        );
        for v in check_ncube_figure_shape(&rows) {
            all_violations.push(format!("(k={k}, n={n}): {v}"));
        }
    }
    if all_violations.is_empty() {
        println!("\nshape check: OK (generalized model tracks simulation at light/moderate load)");
    } else {
        println!("\nshape check violations:");
        for v in &all_violations {
            println!("  - {v}");
        }
        std::process::exit(1);
    }
}
