//! Saturation-point study (experiment SAT in DESIGN.md): the paper's
//! figure axes implicitly encode where each configuration saturates;
//! this binary makes that explicit, comparing the model's divergence
//! point against the simulator's queue-blow-up point and the hot-channel
//! flit bound `1/(h·k(k-1)·(Lm+1))`.
//!
//! ```sh
//! cargo run --release -p kncube-bench --bin saturation [-- --quick]
//! ```

use kncube_bench::FigureConfig;
use kncube_sim::Simulator;

/// Bisect the simulator's saturation rate: the smallest λ at which the
/// network cannot deliver the offered load.
///
/// Saturation in an open network is a *throughput deficit*: past λ* the
/// delivery rate pins at capacity while the offered rate keeps rising, and
/// the backlog grows without bound.  (Watching source-queue lengths alone
/// is too blunt near the bound — the early excess spreads over all N
/// queues and takes millions of cycles to trip any per-queue threshold.)
fn sim_saturation(cfg: &FigureConfig, lo0: f64, hi0: f64) -> f64 {
    let saturates = |lambda: f64| {
        let sim_cfg = cfg.sim_config(lambda);
        let report = Simulator::new(sim_cfg).unwrap().run();
        if report.saturated {
            return true;
        }
        // Statistical guard: Poisson counting noise on the measured
        // throughput, plus a 1.5% systematic allowance for warm-up edge
        // effects.
        let measured_cycles = (report.cycles.saturating_sub(cfg.sim_limits.1)).max(1) as f64;
        let n = (cfg.k * cfg.k) as f64;
        let sigma = (lambda / (measured_cycles * n)).sqrt();
        report.throughput < lambda - (3.0 * sigma + 0.015 * lambda)
    };
    let (mut lo, mut hi) = (lo0, hi0);
    // Make sure the bracket is valid; widen hi if needed.
    let mut guard = 0;
    while !saturates(hi) {
        lo = hi;
        hi *= 1.5;
        guard += 1;
        assert!(guard < 24, "failed to bracket simulator saturation");
    }
    while (hi - lo) / hi > 0.05 {
        let mid = 0.5 * (lo + hi);
        if saturates(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "{:>4} {:>4} {:>5} {:>14} {:>14} {:>14} {:>9}",
        "Lm", "V", "h", "model λ*", "sim λ*", "flit bound", "model/sim"
    );
    let configs: Vec<(u32, f64)> = if quick {
        vec![(32, 0.2), (32, 0.7)]
    } else {
        vec![
            (32, 0.2),
            (32, 0.4),
            (32, 0.7),
            (100, 0.2),
            (100, 0.4),
            (100, 0.7),
        ]
    };
    for (lm, h) in configs {
        let mut cfg = FigureConfig::paper(lm, h);
        // Short runs suffice: saturation shows up fast in the queues.
        cfg.sim_limits = if quick {
            (250_000, 25_000, 0)
        } else {
            (600_000, 50_000, 0)
        };
        let model_sat = kncube_bench::or_exit(kncube_core::find_saturation(
            cfg.model_config(0.0),
            1e-8,
            1e-2,
            1e-3,
        ));
        let sim_sat = sim_saturation(&cfg, 0.5 * model_sat, 1.4 * model_sat);
        let bound = 1.0 / (h * (cfg.k * (cfg.k - 1)) as f64 * (lm + 1) as f64);
        println!(
            "{lm:>4} {:>4} {h:>5.2} {model_sat:>14.3e} {sim_sat:>14.3e} {bound:>14.3e} {:>9.2}",
            cfg.v,
            model_sat / sim_sat
        );
    }
    println!(
        "\nreading: model and simulator collapse at the same operating\n\
         points (ratio ≈ 1), both slightly below the pure flit bound — the\n\
         background regular traffic consumes the difference."
    );
}
