//! Batched model-query binary: JSON batches in, JSON answers out, plus
//! the CI-gated query-throughput benchmark.
//!
//! Two modes:
//!
//! * **Batch** (default): read a `{"queries": [...]}` document from
//!   `--in FILE` (or stdin), answer it with the warm-start/cache engine
//!   ([`kncube_bench::queries::run_batch`]), and write the results to
//!   `--out FILE` (or stdout).  `--check-cold` re-solves every latency
//!   query cold and exits 3 if any engine answer drifts past `1e-9`
//!   relative — the CI smoke gate.
//! * **Benchmark** (`--bench`): run the near-saturation λ-grid sweep and
//!   emit `BENCH_model_queries.json` (`--quick` shrinks the grids; with
//!   `--baseline` compare throughput, warning below `--min-ratio`).
//!
//! Exit codes: 0 ok (including throughput warnings), 1 bad input or
//! baseline schema drift, 2 measurement/solver failure, 3 cold-check
//! mismatch.

use kncube_bench::json::parse;
use kncube_bench::queries::{
    check_cold, query_bench_compare, query_bench_schema_violations, run_batch, run_query_bench,
};
use std::io::Read as _;

struct Options {
    input: Option<String>,
    out: Option<String>,
    check_cold: bool,
    bench: bool,
    quick: bool,
    baseline: Option<String>,
    min_ratio: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: queries [--in FILE] [--out FILE] [--check-cold]\n\
         \x20      queries --bench [--quick] [--out FILE] [--baseline FILE] [--min-ratio R]\n\
         \n\
         Batch mode answers a {{\"queries\": [...]}} JSON document (from --in or\n\
         stdin) with the warm-start/cache engine; --check-cold re-solves every\n\
         latency query cold and fails (exit 3) on drift beyond 1e-9 relative.\n\
         Bench mode sweeps near-saturation λ grids and emits the\n\
         BENCH_model_queries.json document; with --baseline, throughput ratios\n\
         below R (default 0.8) warn, schema drift is an error (exit 1)."
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        input: None,
        out: None,
        check_cold: false,
        bench: false,
        quick: false,
        baseline: None,
        min_ratio: 0.8,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--in" => opts.input = Some(args.next().unwrap_or_else(|| usage())),
            "--out" => opts.out = Some(args.next().unwrap_or_else(|| usage())),
            "--check-cold" => opts.check_cold = true,
            "--bench" => opts.bench = true,
            "--quick" => opts.quick = true,
            "--baseline" => opts.baseline = Some(args.next().unwrap_or_else(|| usage())),
            "--min-ratio" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.min_ratio = v.parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }
    opts
}

fn write_output(out: &Option<String>, text: &str) {
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
}

fn main() {
    let opts = parse_args();

    if opts.bench {
        let doc = run_query_bench(opts.quick);
        let violations = query_bench_schema_violations(&doc);
        assert!(
            violations.is_empty(),
            "freshly measured document violates its own schema: {violations:?}"
        );
        write_output(&opts.out, &doc.pretty());
        if let Some(path) = &opts.baseline {
            let raw = match std::fs::read_to_string(path) {
                Ok(raw) => raw,
                Err(e) => {
                    eprintln!("error: cannot read baseline {path}: {e}");
                    std::process::exit(1);
                }
            };
            let baseline = match parse(&raw) {
                Ok(baseline) => baseline,
                Err(e) => {
                    eprintln!("error: baseline {path} is not valid JSON: {e}");
                    std::process::exit(1);
                }
            };
            let drift = query_bench_schema_violations(&baseline);
            if !drift.is_empty() {
                eprintln!("error: baseline {path} does not match the schema:");
                for v in &drift {
                    eprintln!("  - {v}");
                }
                std::process::exit(1);
            }
            let warnings = query_bench_compare(&doc, &baseline, opts.min_ratio);
            if warnings > 0 {
                eprintln!(
                    "{warnings} regression warning(s) — not failing the build; \
                     timing on shared runners is noisy"
                );
            }
        }
        return;
    }

    let raw = match &opts.input {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("error: cannot read stdin: {e}");
                std::process::exit(1);
            }
            buf
        }
    };
    let input = match parse(&raw) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: input is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    let output = match run_batch(&input) {
        Ok(output) => output,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    write_output(&opts.out, &output.pretty());

    if opts.check_cold {
        match check_cold(&input, &output) {
            Ok(violations) if violations.is_empty() => {
                eprintln!("cold check: all latency answers agree within 1e-9");
            }
            Ok(violations) => {
                eprintln!("error: engine answers drifted from cold solves:");
                for v in &violations {
                    eprintln!("  - {v}");
                }
                std::process::exit(3);
            }
            Err(e) => {
                eprintln!("error: cold check failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
