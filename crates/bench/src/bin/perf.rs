//! Perf trajectory harness: measures simulator throughput (cycles/s) and
//! model solve time across representative `(k, n)` configurations and
//! emits a machine-readable `BENCH_simulator.json`.
//!
//! Three load points per configuration, all driven through the production
//! `Simulator::run()` path:
//!
//! * `anchor` — 5% of the model's saturation rate λ*, the near-zero-load
//!   regime the paper's validation curves start from.  This is the
//!   **headline** `cycles_per_sec`: the engine's idle fast-forward makes
//!   it the rate a validation sweep actually experiences at its first
//!   grid points.
//! * `light` — 25% of λ*: busy-cycle dominated, little queueing.
//! * `moderate` — 50% of λ*: every cycle does flit work.
//!
//! The committed `BENCH_simulator.json` at the repo root is the baseline;
//! CI re-runs this harness with `--quick` and compares via `--baseline`:
//! a throughput ratio below `--min-ratio` (default 0.8) prints a warning
//! (exit 0 — timing on shared runners is noisy), a malformed or
//! schema-drifted baseline exits 1, and any measurement failure exits 2.

use kncube_bench::json::{parse, Json};
use kncube_bench::stamp::{git_commit, utc_now_iso8601};
use kncube_core::{find_saturation_ncube, NCubeConfig, NCubeModel};
use kncube_sim::{SimConfig, Simulator};
use std::time::Instant;

/// Schema version of the emitted document; bump on breaking changes.
const SCHEMA_VERSION: f64 = 1.0;

/// One benchmarked configuration: `(k, n, v, lm, h)`.
const CONFIGS: [(u32, u32, u32, u32, f64); 3] =
    [(16, 2, 2, 32, 0.2), (8, 3, 2, 16, 0.2), (4, 4, 2, 16, 0.2)];

/// `(label, fraction of λ*, full-run cycle budget, quick-run cycle budget)`.
const LOADS: [(&str, f64, u64, u64); 3] = [
    ("anchor", 0.05, 20_000_000, 2_000_000),
    ("light", 0.25, 6_000_000, 600_000),
    ("moderate", 0.50, 2_000_000, 200_000),
];

const SEED: u64 = 7;

struct Options {
    quick: bool,
    out: Option<String>,
    baseline: Option<String>,
    min_ratio: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: perf [--quick] [--out FILE] [--baseline FILE] [--min-ratio R]\n\
         \n\
         Measures simulator cycles/s and model solve time across (k,n) in\n\
         {{(16,2),(8,3),(4,4)}} and writes a BENCH_simulator.json document.\n\
         With --baseline, compares against a previous document: ratios below\n\
         R (default 0.8) warn; a malformed baseline is an error (exit 1)."
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        out: None,
        baseline: None,
        min_ratio: 0.8,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--out" => opts.out = Some(args.next().unwrap_or_else(|| usage())),
            "--baseline" => opts.baseline = Some(args.next().unwrap_or_else(|| usage())),
            "--min-ratio" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.min_ratio = v.parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }
    opts
}

/// Time one production `run()` and return `(cycles/s, cycles, seconds,
/// completed)`.
fn time_run(cfg: SimConfig) -> (f64, u64, f64, u64) {
    let sim = match Simulator::new(cfg) {
        Ok(sim) => sim,
        Err(e) => {
            eprintln!("error: invalid benchmark configuration: {e}");
            std::process::exit(2);
        }
    };
    let start = Instant::now();
    let report = sim.run();
    let dt = start.elapsed().as_secs_f64().max(1e-9);
    (
        report.cycles as f64 / dt,
        report.cycles,
        dt,
        report.completed,
    )
}

/// Mean solve time of the generalized model, in microseconds.
fn time_model_solve(cfg: NCubeConfig, iters: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        let out = NCubeModel::new(cfg).and_then(|m| m.solve());
        if let Err(e) = out {
            eprintln!("error: model failed to solve at λ={}: {e}", cfg.lambda);
            std::process::exit(2);
        }
    }
    start.elapsed().as_secs_f64() / iters as f64 * 1e6
}

fn measure(opts: &Options) -> Json {
    let mut configs = Vec::new();
    for (k, n, v, lm, h) in CONFIGS {
        let base = NCubeConfig::new(k, n, v, lm, 0.0, h);
        let sat = match find_saturation_ncube(base, 1e-9, 1e-1, 1e-3) {
            Ok(sat) => sat,
            Err(e) => {
                eprintln!("error: no saturation rate for k={k} n={n}: {e}");
                std::process::exit(2);
            }
        };
        let mut entry = Json::obj();
        entry.set("k", Json::Num(k as f64));
        entry.set("n", Json::Num(n as f64));
        entry.set("v", Json::Num(v as f64));
        entry.set("lm", Json::Num(lm as f64));
        entry.set("h", Json::Num(h));
        entry.set("saturation_lambda", Json::Num(sat));

        let mut loads = Vec::new();
        let mut headline = 0.0;
        for (label, frac, full_cycles, quick_cycles) in LOADS {
            let budget = if opts.quick {
                quick_cycles
            } else {
                full_cycles
            };
            let lambda = sat * frac;
            let cfg = SimConfig::ncube(k, n, v, lm, lambda, h, SEED).with_limits(budget, 0, 0);
            let (cps, cycles, seconds, completed) = time_run(cfg);
            eprintln!(
                "k={k} n={n} {label:>8} λ={lambda:.3e}: {:.3}M cycles/s \
                 ({cycles} cycles, {completed} messages, {seconds:.2}s)",
                cps / 1e6
            );
            if label == "anchor" {
                headline = cps;
            }
            let mut point = Json::obj();
            point.set("label", Json::Str(label.into()));
            point.set("lambda", Json::Num(lambda));
            point.set("cycles", Json::Num(cycles as f64));
            point.set("seconds", Json::Num(seconds));
            point.set("cycles_per_sec", Json::Num(cps));
            point.set("completed", Json::Num(completed as f64));
            loads.push(point);
        }
        entry.set("cycles_per_sec", Json::Num(headline));
        entry.set("loads", Json::Arr(loads));

        let solve_iters = if opts.quick { 20 } else { 200 };
        let solve_cfg = NCubeConfig::new(k, n, v, lm, sat * 0.5, h);
        let solve_us = time_model_solve(solve_cfg, solve_iters);
        eprintln!("k={k} n={n} model solve: {solve_us:.1} µs");
        entry.set("model_solve_us", Json::Num(solve_us));

        configs.push(entry);
    }

    let mut doc = Json::obj();
    doc.set("schema_version", Json::Num(SCHEMA_VERSION));
    doc.set("commit", Json::Str(git_commit()));
    doc.set("date", Json::Str(utc_now_iso8601()));
    doc.set("quick", Json::Bool(opts.quick));
    doc.set("configs", Json::Arr(configs));
    doc
}

/// Validate the benchmark document schema.  Returns the list of
/// violations (empty = conforming).
fn schema_violations(doc: &Json) -> Vec<String> {
    let mut bad = Vec::new();
    match doc.get("schema_version").and_then(Json::as_f64) {
        Some(v) if v == SCHEMA_VERSION => {}
        Some(v) => bad.push(format!("schema_version {v} != {SCHEMA_VERSION}")),
        None => bad.push("missing numeric schema_version".into()),
    }
    if doc.get("commit").and_then(Json::as_str).is_none() {
        bad.push("missing string commit".into());
    }
    if doc.get("date").and_then(Json::as_str).is_none() {
        bad.push("missing string date".into());
    }
    let Some(configs) = doc.get("configs").and_then(Json::as_arr) else {
        bad.push("missing configs array".into());
        return bad;
    };
    if configs.is_empty() {
        bad.push("configs array is empty".into());
    }
    for (i, cfg) in configs.iter().enumerate() {
        for key in ["k", "n", "v", "lm", "h", "cycles_per_sec", "model_solve_us"] {
            match cfg.get(key).and_then(Json::as_f64) {
                Some(v) if v.is_finite() && v >= 0.0 => {}
                _ => bad.push(format!("configs[{i}].{key} missing or not a finite number")),
            }
        }
        match cfg.get("loads").and_then(Json::as_arr) {
            Some(loads) if !loads.is_empty() => {
                for (j, point) in loads.iter().enumerate() {
                    if point.get("label").and_then(Json::as_str).is_none()
                        || point.get("cycles_per_sec").and_then(Json::as_f64).is_none()
                    {
                        bad.push(format!("configs[{i}].loads[{j}] malformed"));
                    }
                }
            }
            _ => bad.push(format!("configs[{i}].loads missing or empty")),
        }
    }
    bad
}

/// Compare against a baseline document; returns the number of warnings.
fn compare(new: &Json, baseline: &Json, min_ratio: f64) -> u32 {
    let mut warnings = 0;
    let empty = Vec::new();
    let base_cfgs = baseline
        .get("configs")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    for cfg in new.get("configs").and_then(Json::as_arr).unwrap_or(&empty) {
        let (k, n) = (
            cfg.get("k").and_then(Json::as_f64).unwrap_or(-1.0),
            cfg.get("n").and_then(Json::as_f64).unwrap_or(-1.0),
        );
        let Some(base) = base_cfgs.iter().find(|b| {
            b.get("k").and_then(Json::as_f64) == Some(k)
                && b.get("n").and_then(Json::as_f64) == Some(n)
        }) else {
            eprintln!("note: no baseline entry for k={k} n={n}");
            continue;
        };
        let now = cfg
            .get("cycles_per_sec")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let then = base
            .get("cycles_per_sec")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        if then <= 0.0 {
            continue;
        }
        let ratio = now / then;
        if ratio < min_ratio {
            eprintln!(
                "WARNING: k={k} n={n} throughput regressed to {ratio:.2}x of baseline \
                 ({:.3}M vs {:.3}M cycles/s)",
                now / 1e6,
                then / 1e6
            );
            warnings += 1;
        } else {
            eprintln!(
                "ok: k={k} n={n} at {ratio:.2}x of baseline ({:.3}M vs {:.3}M cycles/s)",
                now / 1e6,
                then / 1e6
            );
        }
    }
    warnings
}

fn main() {
    let opts = parse_args();
    let doc = measure(&opts);

    let violations = schema_violations(&doc);
    assert!(
        violations.is_empty(),
        "freshly measured document violates its own schema: {violations:?}"
    );

    let text = doc.pretty();
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }

    if let Some(path) = &opts.baseline {
        let raw = match std::fs::read_to_string(path) {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("error: cannot read baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        let baseline = match parse(&raw) {
            Ok(baseline) => baseline,
            Err(e) => {
                eprintln!("error: baseline {path} is not valid JSON: {e}");
                std::process::exit(1);
            }
        };
        let drift = schema_violations(&baseline);
        if !drift.is_empty() {
            eprintln!("error: baseline {path} does not match the schema:");
            for v in &drift {
                eprintln!("  - {v}");
            }
            std::process::exit(1);
        }
        let warnings = compare(&doc, &baseline, opts.min_ratio);
        if warnings > 0 {
            eprintln!(
                "{warnings} regression warning(s) — not failing the build; \
                 timing on shared runners is noisy"
            );
        }
    }
}
