//! EXT-BURST: the paper's stated future work, implemented on the
//! simulation side.
//!
//! §5: "there have been some attempts to construct analytical models for
//! interconnection networks operating under non-Poissonian traffic load,
//! including bursty and self-similar traffic.  Our next objective is to
//! extend the above modelling approach to deal with such traffic
//! patterns."
//!
//! This experiment quantifies how much the Poisson assumption hides: the
//! same *mean* load is offered through a two-state Markov-modulated
//! Poisson process with increasing peak-to-mean ratio β (bursts of rate
//! β·λ lasting ~200 cycles).  The Poisson-based model's prediction is the
//! β = 1 column; the simulator shows the latency the model would need to
//! capture for β > 1.
//!
//! ```sh
//! cargo run --release -p kncube-bench --bin bursty [-- --quick]
//! ```

use kncube_bench::FigureConfig;
use kncube_core::HotSpotModel;
use kncube_sim::{SimConfig, Simulator};
use kncube_traffic::ArrivalProcess;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let fig = FigureConfig::paper(32, 0.2);
    let sat = kncube_bench::or_exit(kncube_core::find_saturation(
        fig.model_config(0.0),
        1e-8,
        1e-2,
        1e-3,
    ));
    let betas = [1.0, 2.0, 4.0, 8.0];
    let fractions = if quick {
        vec![0.3, 0.6]
    } else {
        vec![0.2, 0.4, 0.6, 0.8]
    };
    let limits = if quick {
        (400_000u64, 40_000u64, 10_000u64)
    } else {
        (2_000_000, 150_000, 30_000)
    };

    println!("bursty traffic on the paper's network (k=16, V=2, Lm=32, h=20%)");
    println!("mean burst length 200 cycles; β = peak-to-mean ratio\n");
    print!("{:>12} {:>10}", "traffic", "model");
    for b in betas {
        print!(" {:>9}", format!("sim β={b:.0}"));
    }
    println!();

    let mut cell = 0u32;
    for f in fractions {
        let lambda = f * sat;
        let model = HotSpotModel::new(fig.model_config(lambda))
            .unwrap()
            .solve()
            .map(|o| format!("{:10.1}", o.latency))
            .unwrap_or_else(|_| " saturated".into());
        print!("{lambda:>12.3e} {model}");
        for beta in betas {
            let cfg = SimConfig {
                arrivals: ArrivalProcess::bursty(lambda, beta, 200.0),
                seed: kncube_bench::cell_seed(fig.seed, cell),
                ..fig.sim_config(lambda)
            }
            .with_limits(limits.0, limits.1, limits.2);
            cell += 1;
            let report = Simulator::new(cfg).unwrap().run();
            if report.saturated {
                print!(" {:>9}", "SAT");
            } else {
                print!(" {:>9.1}", report.mean_latency);
            }
        }
        println!();
    }

    println!(
        "\nreading: burstiness inflates latency at every load and drags the\n\
         effective saturation point down — the Poisson-based model (and the\n\
         β=1 column it matches) is increasingly optimistic as β grows,\n\
         which is exactly why the authors flag non-Poissonian modelling as\n\
         future work."
    );
}
