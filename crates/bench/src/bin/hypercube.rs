//! EXT-HYPERCUBE: the paper's closest prior work, reference \[12\] —
//! hot-spot latency in the deterministically-routed binary hypercube —
//! rebuilt with the same methodology and validated against the flit-level
//! simulator (a hypercube is the 2-ary n-cube, which the simulator runs
//! natively).
//!
//! Also reproduces the structural comparison the paper's introduction
//! implies: at equal node count, the high-radix torus funnels almost twice
//! as much hot traffic through its worst channel as the hypercube
//! (`k(k-1)` vs `N/2` sources behind the last hop), so the torus saturates
//! earlier under hot-spot load — the gap the "first model for *high-radix*
//! cubes" claim is about.
//!
//! ```sh
//! cargo run --release -p kncube-bench --bin hypercube [-- --quick]
//! ```

use kncube_core::{find_saturation, HypercubeModel, ModelConfig};
use kncube_sim::{SimConfig, Simulator};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, lm, h) = (6u32, 32u32, 0.3); // 64-node hypercube
    let model0 = HypercubeModel::new(n, 2, lm, 0.0, h).unwrap();
    let sat = model0.saturation_bound();
    let fractions = if quick {
        vec![0.2, 0.5]
    } else {
        vec![0.2, 0.4, 0.6, 0.8]
    };
    let limits = if quick {
        (400_000u64, 40_000u64, 10_000u64)
    } else {
        (2_000_000, 120_000, 30_000)
    };

    println!("binary {n}-cube (N = {}), V=2, Lm={lm}, h={h}", 1u64 << n);
    println!("model saturation bound λ* = {sat:.3e}\n");
    println!(
        "{:>12} {:>10} {:>14} {:>8}",
        "traffic", "model", "simulation", "err%"
    );
    for f in &fractions {
        let lambda = f * sat;
        let model = HypercubeModel::new(n, 2, lm, lambda, h).unwrap().solve();
        // The simulator runs the hypercube as the 2-ary n-cube.
        let mut cfg = SimConfig::paper_validation(2, 2, lm, lambda, h, 20_050_408);
        cfg.n = n;
        let cfg = cfg.with_limits(limits.0, limits.1, limits.2);
        let sim = Simulator::new(cfg).unwrap().run();
        match model {
            Ok(m) => println!(
                "{lambda:>12.3e} {:>10.1} {:>11.1}±{:<4.1} {:>6.1}",
                m.latency,
                sim.mean_latency,
                sim.ci_half_width.unwrap_or(f64::NAN),
                (m.latency - sim.mean_latency) / sim.mean_latency * 100.0
            ),
            Err(e) => println!("{lambda:>12.3e} {e:>10} {:>14.1}", sim.mean_latency),
        }
    }

    // Structural comparison at N = 256.
    let hyper256 = HypercubeModel::new(8, 2, 32, 0.0, 0.2)
        .unwrap()
        .saturation_bound();
    let torus256 = kncube_bench::or_exit(find_saturation(
        ModelConfig::paper_validation(16, 2, 32, 0.0, 0.2),
        1e-8,
        1e-2,
        1e-3,
    ));
    println!(
        "\nat N = 256, Lm = 32, h = 20%:\n\
         hypercube λ* ≈ {hyper256:.3e}   (worst channel drains N/2 = 128 hot sources)\n\
         16×16 torus λ* ≈ {torus256:.3e}   (worst channel drains k(k-1) = 240 hot sources)\n\
         ratio {:.2} — the high-radix torus pays for its low wire count under\n\
         hot-spot load, which is why a dedicated high-radix model was needed.",
        hyper256 / torus256
    );
}
