//! Ablation studies for the reconstruction decisions called out in
//! DESIGN.md:
//!
//! * **ABL-EQ25** — Eq. (25)'s blocking term: x-channel entrance service
//!   (our reading) vs. the OCR's hot-ring service;
//! * **ABL-HOLD** — channel service-time model: pipelined transfer
//!   (`Lm + 1`, default) vs. path occupancy (`1 + S_{j-1}`);
//! * **ABL-EJECT** — simulator ejection policy: per-message sink
//!   (assumption iv) vs. a shared 1-flit/cycle ejection channel;
//! * **ABL-BUF** — per-VC buffer depth (unspecified in the paper):
//!   2 (sustains full pipelining) vs. 1 (half bandwidth) vs. 4.
//!
//! ```sh
//! cargo run --release -p kncube-bench --bin ablations [-- --quick]
//! ```

use kncube_bench::FigureConfig;
use kncube_core::{HotSpotModel, ModelConfig, ModelVariant, MultiplexingModel, ServiceTimeModel};
use kncube_sim::{EjectionPolicy, SimConfig, Simulator};

fn model_latency(cfg: ModelConfig) -> String {
    match HotSpotModel::new(cfg).unwrap().solve() {
        Ok(o) => format!("{:10.1}", o.latency),
        Err(_) => " saturated".to_string(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let fig = FigureConfig::paper(32, 0.4);
    let sat = kncube_bench::or_exit(kncube_core::find_saturation(
        fig.model_config(0.0),
        1e-8,
        1e-2,
        1e-3,
    ));
    let grid: Vec<f64> = [0.3, 0.6, 0.85].iter().map(|f| f * sat).collect();

    // The Eq. 25 reading only matters when competitor services depend on
    // the family (path occupancy); under the default pipelined transfer
    // both readings coincide at Lm + 1.  Use low loads where the
    // path-occupancy model still converges.
    let path_grid: Vec<f64> = [0.05, 0.1, 0.15].iter().map(|f| f * sat).collect();
    println!("== ABL-EQ25: Eq. (25) blocking service (model, path-occupancy, Lm=32, h=40%) ==");
    println!(
        "{:>12} {:>10} {:>10} {:>8}",
        "traffic", "x-ring", "hot-ring", "Δ%"
    );
    for &lambda in &path_grid {
        let base = ModelConfig {
            service_model: ServiceTimeModel::PathOccupancy,
            ..fig.model_config(lambda)
        };
        let a = HotSpotModel::new(base).unwrap().solve();
        let b = HotSpotModel::new(ModelConfig {
            variant: ModelVariant::HotRingServiceEq25,
            ..base
        })
        .unwrap()
        .solve();
        let delta = match (&a, &b) {
            (Ok(x), Ok(y)) => format!("{:8.2}", (y.latency - x.latency) / x.latency * 100.0),
            _ => "       -".into(),
        };
        println!(
            "{lambda:>12.3e} {} {} {delta}",
            model_latency(base),
            model_latency(ModelConfig {
                variant: ModelVariant::HotRingServiceEq25,
                ..base
            })
        );
    }

    println!("\n== ABL-HOLD: service-time model (model, Lm=32, h=40%) ==");
    println!("{:>12} {:>10} {:>10}", "traffic", "pipelined", "path-occ");
    for &lambda in path_grid.iter().chain(&grid) {
        let base = fig.model_config(lambda);
        let path = ModelConfig {
            service_model: ServiceTimeModel::PathOccupancy,
            ..base
        };
        println!(
            "{lambda:>12.3e} {} {}",
            model_latency(base),
            model_latency(path)
        );
    }
    println!("(path occupancy saturates far below the paper's plotted range — the");
    println!(" reason the pipelined reading is the default; see DESIGN.md)");

    let sim_limits = if quick {
        (300_000u64, 30_000u64, 8_000u64)
    } else {
        (1_200_000, 100_000, 25_000)
    };

    println!("\n== ABL-VMUX: multiplexing model vs simulation (Lm=32, h=40%) ==");
    println!(
        "{:>12} {:>10} {:>11} {:>12}",
        "traffic", "Dally V̄", "class-aware", "simulation"
    );
    for &lambda in &grid {
        let base = fig.model_config(lambda);
        let aware = ModelConfig {
            multiplexing: MultiplexingModel::ClassAware,
            ..base
        };
        let sim = Simulator::new(fig.sim_config(lambda).with_limits(
            sim_limits.0,
            sim_limits.1,
            sim_limits.2,
        ))
        .unwrap()
        .run();
        println!(
            "{lambda:>12.3e} {} {} {:>11.1}{}",
            model_latency(base),
            model_latency(aware),
            sim.mean_latency,
            if sim.saturated { "S" } else { " " }
        );
    }
    println!("(Dally's Eq. 33-35 assumes any VC is usable; the Dally-Seitz classes");
    println!(" restrict hot messages to one class, which the class-aware variant");
    println!(" captures — it tracks the simulator more tightly at moderate load)");

    println!("\n== ABL-EJECT: ejection policy (simulation, Lm=32, h=40%) ==");
    println!(
        "{:>12} {:>12} {:>12}",
        "traffic", "per-msg sink", "shared 1f/c"
    );
    for &lambda in &grid {
        let mk = |policy| {
            let cfg = SimConfig {
                ejection: policy,
                ..fig.sim_config(lambda)
            }
            .with_limits(sim_limits.0, sim_limits.1, sim_limits.2);
            Simulator::new(cfg).unwrap().run()
        };
        let sink = mk(EjectionPolicy::PerMessageSink);
        let shared = mk(EjectionPolicy::SharedChannel);
        println!(
            "{lambda:>12.3e} {:>12.1} {:>11.1}{}",
            sink.mean_latency,
            shared.mean_latency,
            if shared.saturated { "S" } else { " " }
        );
    }

    println!("\n== ABL-BUF: per-VC buffer depth (simulation, Lm=32, h=40%) ==");
    println!(
        "{:>12} {:>10} {:>10} {:>10}",
        "traffic", "depth 1", "depth 2", "depth 4"
    );
    for &lambda in &grid {
        let mk = |depth| {
            let cfg = SimConfig {
                buffer_depth: depth,
                ..fig.sim_config(lambda)
            }
            .with_limits(sim_limits.0, sim_limits.1, sim_limits.2);
            Simulator::new(cfg).unwrap().run()
        };
        let d1 = mk(1);
        let d2 = mk(2);
        let d4 = mk(4);
        let cell = |r: &kncube_sim::SimReport| {
            if r.saturated {
                "  saturated".to_string()
            } else {
                format!("{:>10.1}", r.mean_latency)
            }
        };
        println!("{lambda:>12.3e} {} {} {}", cell(&d1), cell(&d2), cell(&d4));
    }
    println!("(depth 1 halves sustainable bandwidth — it saturates where depth 2 cruises)");
}
