//! Regenerate **Figure 1** of the paper: mean message latency predicted by
//! the model against simulation results, message length `Lm = 32` flits,
//! hot-spot fractions `h ∈ {20%, 40%, 70%}`, on the 256-node (16×16)
//! unidirectional torus with `V = 2` virtual channels.
//!
//! ```sh
//! cargo run --release -p kncube-bench --bin figure1 [-- --quick]
//! ```

use kncube_bench::{check_figure_shape, or_exit, print_figure, run_figure, FigureConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut all_violations = Vec::new();
    for h in [0.2, 0.4, 0.7] {
        let mut cfg = FigureConfig::paper(32, h);
        if quick {
            cfg = cfg.quick();
        }
        let rows = or_exit(run_figure(&cfg));
        print_figure(
            &format!("Figure 1, h = {:.0}% (Lm = 32 flits)", h * 100.0),
            &cfg,
            &rows,
        );
        for v in check_figure_shape(&rows) {
            all_violations.push(format!("h={h}: {v}"));
        }
    }
    if all_violations.is_empty() {
        println!("\nshape check: OK (model tracks simulation at light/moderate load)");
    } else {
        println!("\nshape check violations:");
        for v in &all_violations {
            println!("  - {v}");
        }
        std::process::exit(1);
    }
}
