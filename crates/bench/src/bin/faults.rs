//! EXT-FAULTS: reachability and latency of faulty k-ary n-cubes — the
//! fault-injection sweep behind the EXPERIMENTS.md reliability table.
//!
//! For an 8×8 bidirectional torus and an 8×8 mesh, sweeps a common
//! element-failure probability `p` (applied to routers and physical links
//! alike), samples many deterministic fault sets per point, and reports
//! the seed-averaged fraction of ordered pairs that can still communicate
//! plus the mean detour of the surviving shortest routes.  One simulation
//! per point confirms the transport layer agrees with the router's
//! reachability census.
//!
//! The sweep is **gated** by the closed-form independent-failure
//! envelopes (in the spirit of the probabilistic analyses of faulty
//! cubes, arXiv:1301.5993): a pair with fault-free distance `h` survives
//! at most when both endpoints do — probability `(1-p)²` — and at least
//! when its entire dimension-order path of `h+1` routers and `h` physical
//! links does — probability `(1-p)^{2h+1}`.  Averaged over pairs these
//! bracket the measured reachability; violations exit non-zero.
//!
//! ```sh
//! cargo run --release -p kncube-bench --bin faults [-- --quick]
//! ```

use kncube_sim::{SimConfig, Simulator};
use kncube_topology::{Boundary, FaultRouter, KAryNCube, LinkKind};
use kncube_traffic::{sample_fault_set, FaultSpec};

/// One sweep point, seed-averaged.
struct SweepRow {
    p: f64,
    reach_mean: f64,
    detour_mean: f64,
    sim_reach: f64,
    sim_latency: f64,
    sim_dropped: u64,
    deadlocked: bool,
    lower: f64,
    upper: f64,
}

/// Seed-averaged closed-form envelopes: `upper = (1-p)²`,
/// `lower = mean over ordered pairs of (1-p)^{2h+1}`.
fn envelopes(topo: &KAryNCube, p: f64) -> (f64, f64) {
    let q = 1.0 - p;
    let mut lower_sum = 0.0;
    let mut pairs = 0u64;
    for src in topo.nodes() {
        for dest in topo.nodes() {
            if src != dest {
                let h = topo.hop_count(src, dest);
                lower_sum += q.powi(2 * h as i32 + 1);
                pairs += 1;
            }
        }
    }
    (lower_sum / pairs as f64, q * q)
}

fn sweep_point(
    topo: KAryNCube,
    link_kind: LinkKind,
    boundary: Boundary,
    p: f64,
    seeds: u64,
    sim_cycles: u64,
) -> SweepRow {
    let spec = FaultSpec {
        router_failure_prob: p,
        link_failure_prob: p,
    };
    let mut reach_sum = 0.0;
    let mut detour_sum = 0.0;
    for seed in 0..seeds {
        let router = FaultRouter::new(sample_fault_set(topo, spec, 0xFA0 + seed));
        reach_sum += router.reachable_fraction();
        detour_sum += router.expected_detour();
    }
    let mut cfg = SimConfig::paper_validation(topo.k(), 8, 8, 1e-3, 0.0, 0xFA0)
        .with_topology(link_kind, boundary)
        .with_limits(sim_cycles, sim_cycles / 10, 0);
    if p > 0.0 {
        cfg = cfg.with_faults(spec);
    }
    let report = Simulator::new(cfg).expect("valid sweep config").run();
    let (lower, upper) = envelopes(&topo, p);
    SweepRow {
        p,
        reach_mean: reach_sum / seeds as f64,
        detour_mean: detour_sum / seeds as f64,
        sim_reach: report.reachable_fraction,
        sim_latency: report.mean_latency,
        sim_dropped: report.dropped_unreachable,
        deadlocked: report.deadlocked,
        lower,
        upper,
    }
}

fn check_rows(name: &str, rows: &[SweepRow], slack: f64) -> Vec<String> {
    let mut violations = Vec::new();
    for row in rows {
        let ctx = format!("{name} p={:.2}", row.p);
        if row.p == 0.0 {
            if row.reach_mean != 1.0 {
                violations.push(format!(
                    "{ctx}: fault-free reachability {} != 1",
                    row.reach_mean
                ));
            }
            if row.detour_mean != 0.0 {
                violations.push(format!("{ctx}: fault-free detour {} != 0", row.detour_mean));
            }
        }
        if row.reach_mean > row.upper + slack {
            violations.push(format!(
                "{ctx}: reachability {:.4} above the (1-p)² envelope {:.4}",
                row.reach_mean, row.upper
            ));
        }
        if row.reach_mean < row.lower - slack {
            violations.push(format!(
                "{ctx}: reachability {:.4} below the minimal-path envelope {:.4}",
                row.reach_mean, row.lower
            ));
        }
        if row.deadlocked {
            violations.push(format!("{ctx}: simulation deadlocked"));
        }
        if row.p == 0.0 && row.sim_dropped != 0 {
            violations.push(format!("{ctx}: drops without faults"));
        }
    }
    // Reachability must not increase with the failure probability (beyond
    // sampling noise).
    for pair in rows.windows(2) {
        if pair[1].reach_mean > pair[0].reach_mean + slack {
            violations.push(format!(
                "{name}: reachability rose {:.4} → {:.4} as p rose {:.2} → {:.2}",
                pair[0].reach_mean, pair[1].reach_mean, pair[0].p, pair[1].p
            ));
        }
    }
    violations
}

fn print_rows(name: &str, rows: &[SweepRow]) {
    println!("\n{name}: reachable fraction vs element failure probability");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10} {:>9}",
        "p", "lower-env", "reach", "upper-env", "detour", "sim-reach", "latency", "dropped"
    );
    for r in rows {
        println!(
            "{:>6.2} {:>12.4} {:>12.4} {:>12.4} {:>10.3} {:>10.4} {:>10.1} {:>9}",
            r.p,
            r.lower,
            r.reach_mean,
            r.upper,
            r.detour_mean,
            r.sim_reach,
            r.sim_latency,
            r.sim_dropped
        );
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (seeds, sim_cycles, slack, grid): (u64, u64, f64, &[f64]) = if quick {
        (4, 6_000, 0.10, &[0.0, 0.05, 0.15])
    } else {
        (20, 20_000, 0.05, &[0.0, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20])
    };

    let mut all_violations = Vec::new();
    for (name, link_kind, boundary) in [
        (
            "8x8 bidirectional torus",
            LinkKind::Bidirectional,
            Boundary::Torus,
        ),
        ("8x8 mesh", LinkKind::Bidirectional, Boundary::Mesh),
    ] {
        let topo = KAryNCube::with_boundary(8, 2, link_kind, boundary).expect("valid topology");
        let rows: Vec<SweepRow> = grid
            .iter()
            .map(|&p| sweep_point(topo, link_kind, boundary, p, seeds, sim_cycles))
            .collect();
        print_rows(name, &rows);
        all_violations.extend(check_rows(name, &rows, slack));
    }

    if all_violations.is_empty() {
        println!("\nenvelope check: OK (reachability inside the closed-form failure envelopes)");
    } else {
        println!("\nenvelope check violations:");
        for v in &all_violations {
            println!("  - {v}");
        }
        std::process::exit(1);
    }
}
