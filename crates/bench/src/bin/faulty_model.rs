//! EXT-FAULTY-MODEL: the faulty-network analytical model against the
//! flit-level simulator — the model-vs-sim sweep behind the
//! EXPERIMENTS.md fault-density error table.
//!
//! For an 8×8 bidirectional torus and an 8×8 mesh, sweeps a common
//! element-failure density `p` (routers and physical links alike),
//! samples the **same** deterministic fault set the simulator will use
//! (same spec, same seed), and compares [`FaultyNCubeModel`] latency
//! predictions against simulation at fixed fractions of the model's own
//! saturation rate `λ*`.
//!
//! The comparison follows `tests/model_vs_sim.rs`: the simulator carries
//! a constant instrumentation offset (injection-port crossing plus
//! end-of-cycle completion observation) that is calibrated once per
//! fault set at near-zero load, then every calibrated prediction is
//! **gated** by a load-dependent agreement factor (1.2× through 0.5·λ*,
//! 1.35× through 0.7·λ*, 2× at 0.85·λ*, with the batch-means 95% CI band
//! as an absolute override) — the stated error envelope.  Reachability
//! must agree exactly (model and simulator share the fault-aware
//! router), and violations exit non-zero.
//!
//! ```sh
//! cargo run --release -p kncube-bench --bin faulty_model [-- --quick]
//! ```

use kncube_core::{FaultyNCubeConfig, FaultyNCubeModel};
use kncube_sim::{SimConfig, SimReport, Simulator};
use kncube_topology::{Boundary, FaultRouter, FaultSet, KAryNCube, LinkKind};
use kncube_traffic::{sample_fault_set, FaultSpec};

const K: u32 = 8;
const N: u32 = 2;
const V: u32 = 2;
const LM: u32 = 16;
const H: f64 = 0.2;
/// Base seed for fault sampling and simulation; the per-density seed is
/// `SEED + density index` so model and simulator draw identical sets.
const SEED: u64 = 0xFA17;

/// One model-vs-sim comparison point.
struct SweepRow {
    density: f64,
    frac: f64,
    lambda: f64,
    model: f64,
    offset: f64,
    sim: f64,
    ci: f64,
    reach_model: f64,
    reach_sim: f64,
    completed: u64,
    saturated: bool,
    deadlocked: bool,
}

impl SweepRow {
    /// Calibrated absolute residual `|model + offset - sim|`.
    fn residual(&self) -> f64 {
        (self.model + self.offset - self.sim).abs()
    }
}

/// Run one simulation sized so ~`target` delivered messages are
/// measured (`delivered` is the model's delivered-traffic fraction,
/// which discounts sources and destinations lost to faults).
#[allow(clippy::too_many_arguments)]
fn run_sim(
    link_kind: LinkKind,
    boundary: Boundary,
    spec: Option<FaultSpec>,
    seed: u64,
    lambda: f64,
    delivered: f64,
    target: u64,
    warmup: u64,
) -> SimReport {
    let nodes = (K as u64).pow(N) as f64;
    let rate = (nodes * lambda * delivered.max(0.05)).max(1e-9);
    let max_cycles = warmup + (1.6 * target as f64 / rate) as u64;
    let mut cfg = SimConfig::ncube(K, N, V, LM, lambda, H, seed)
        .with_topology(link_kind, boundary)
        .with_limits(max_cycles, warmup, target);
    if let Some(spec) = spec {
        cfg = cfg.with_faults(spec);
    }
    Simulator::new(cfg).expect("valid sim config").run()
}

/// Deterministically pick a fault sample at `density`: scan seeds from
/// `base`, preferring a sample whose surviving route set carries the
/// exact wormhole-deadlock-freedom certificate
/// ([`FaultRouter::deadlock_free`]), and falling back to the first
/// *connected* sample when no certified one exists in the scan window.
///
/// The certificate is sufficient but not necessary: on a bidirectional
/// torus, almost any detour breaks strict dimension order and closes a
/// channel-dependency cycle on paper, yet the actual occupancy pattern
/// rarely completes the cycle.  Uncertified samples therefore stay
/// admissible — the simulation's own deadlock detector is the gate that
/// catches the real thing.
fn select_fault_set(
    topo: KAryNCube,
    density: f64,
    base: u64,
) -> Option<(FaultSet, Option<FaultSpec>, u64, bool)> {
    if density == 0.0 {
        return Some((FaultSet::none(topo), None, base, true));
    }
    let spec = FaultSpec {
        router_failure_prob: density,
        link_failure_prob: density,
    };
    let mut connected: Option<(FaultSet, u64)> = None;
    for seed in base..base + 64 {
        let faults = sample_fault_set(topo, spec, seed);
        let router = FaultRouter::new(faults.clone());
        if router.reachable_pairs() == 0 {
            continue;
        }
        if router.deadlock_free() {
            return Some((faults, Some(spec), seed, true));
        }
        if connected.is_none() {
            connected = Some((faults, seed));
        }
    }
    connected.map(|(faults, seed)| (faults, Some(spec), seed, false))
}

/// Sweep one geometry across fault densities and load fractions.
#[allow(clippy::too_many_arguments)]
fn sweep_geometry(
    name: &str,
    link_kind: LinkKind,
    boundary: Boundary,
    densities: &[f64],
    fracs: &[f64],
    cal_target: u64,
    target: u64,
    warmup: u64,
) -> (Vec<SweepRow>, Vec<String>) {
    let topo = KAryNCube::with_boundary(K, N, link_kind, boundary).expect("valid topology");
    let mut rows = Vec::new();
    let mut violations = Vec::new();

    for (idx, &density) in densities.iter().enumerate() {
        // Wormhole routing around faults is not deadlock-free in general:
        // detours can close channel-dependency cycles the Dally–Seitz
        // classes were ordered to prevent.  Prefer a fault sample whose
        // route set carries the acyclicity certificate — the simulator
        // draws the same set from the same seed.
        let (faults, spec, seed, certified) =
            match select_fault_set(topo, density, SEED + 100 * idx as u64) {
                Some(found) => found,
                None => {
                    violations.push(format!(
                        "{name} p={density:.2}: no connected fault sample in the seed scan"
                    ));
                    continue;
                }
            };
        if !certified {
            println!(
                "{name} p={density:.2}: seed {seed:#x} sample is connected but carries \
                 no deadlock-freedom certificate; relying on the simulator's detector"
            );
        }
        let model = FaultyNCubeModel::new(FaultyNCubeConfig::new(faults, V, LM, 0.0, H))
            .expect("valid faulty config");

        let sat = match model.saturation(1e-9, 1e-1, 1e-3) {
            Ok(report) => report.lambda_star,
            Err(e) => {
                violations.push(format!("{name} p={density:.2}: no saturation rate: {e:?}"));
                continue;
            }
        };
        let delivered = model
            .solve_at(0.0)
            .expect("zero load cannot saturate")
            .delivered_fraction;

        // Calibrate the simulator's instrumentation offset at 5% of λ*,
        // where the model is exact (delivered-weighted hops + Lm).
        let cal_lambda = 0.05 * sat;
        let cal = run_sim(
            link_kind, boundary, spec, seed, cal_lambda, delivered, cal_target, warmup,
        );
        let cal_model = model
            .solve_at(cal_lambda)
            .expect("calibration load is below saturation")
            .latency;
        let offset = cal.mean_latency - cal_model;
        if !(0.0..3.0).contains(&offset) {
            violations.push(format!(
                "{name} p={density:.2}: calibration offset {offset:.3} outside the \
                 plausible injection overhead [0, 3)"
            ));
        }
        let cal_ci = cal.ci_half_width.unwrap_or(f64::INFINITY);

        for &frac in fracs {
            // Near-saturation occupancy is what completes a paper
            // dependency cycle; without the acyclicity certificate the
            // sweep stays in the light/moderate region where wormhole
            // deadlock has never been observed for these samples.
            if !certified && frac > 0.7 {
                println!(
                    "{name} p={density:.2} frac={frac:.2}: skipped (near-saturation \
                     load needs the deadlock-freedom certificate)"
                );
                continue;
            }
            let lambda = frac * sat;
            let out = match model.solve_at(lambda) {
                Ok(out) => out,
                Err(e) => {
                    violations.push(format!(
                        "{name} p={density:.2} frac={frac:.2}: model saturated below \
                         its own λ* estimate: {e:?}"
                    ));
                    continue;
                }
            };
            let sim = run_sim(
                link_kind, boundary, spec, seed, lambda, delivered, target, warmup,
            );
            let ci = sim.ci_half_width.unwrap_or(f64::INFINITY);
            rows.push(SweepRow {
                density,
                frac,
                lambda,
                model: out.latency,
                offset,
                sim: sim.mean_latency,
                ci: ci + cal_ci,
                reach_model: out.reachable_fraction,
                reach_sim: sim.reachable_fraction,
                completed: sim.completed,
                saturated: sim.saturated,
                deadlocked: sim.deadlocked,
            });
        }
    }
    (rows, violations)
}

/// The stated error envelope, as an agreement factor on the calibrated
/// prediction: `(model + offset) / sim` must lie within `[1/f, f]` with
/// `f = 1.2` through 0.5·λ*, `f = 1.35` through 0.7·λ*, and `f = 2`
/// beyond — or the absolute residual must sit inside the batch-means 95%
/// CI band.  The widening mirrors the paper's own claim ("reasonable
/// accuracy in the light and moderate load regions", §4): near
/// saturation the latency curve is steep, so a small λ* estimation error
/// swings the predicted ordinate far more than the model/simulator
/// disagreement at matched load.
fn agreement_factor(frac: f64) -> f64 {
    if frac <= 0.5 {
        1.2
    } else if frac <= 0.7 {
        1.35
    } else {
        2.0
    }
}

/// Whether a row satisfies the stated envelope.
fn within_envelope(row: &SweepRow) -> bool {
    if row.residual() <= row.ci {
        return true;
    }
    let f = agreement_factor(row.frac);
    let ratio = (row.model + row.offset) / row.sim;
    ratio.is_finite() && ratio >= 1.0 / f && ratio <= f
}

fn check_rows(name: &str, rows: &[SweepRow], min_completed: u64) -> Vec<String> {
    let mut violations = Vec::new();
    for row in rows {
        let ctx = format!("{name} p={:.2} frac={:.2}", row.density, row.frac);
        if row.deadlocked {
            violations.push(format!("{ctx}: simulation deadlocked"));
            continue;
        }
        if row.saturated {
            violations.push(format!("{ctx}: simulation saturated at λ={}", row.lambda));
            continue;
        }
        if row.completed < min_completed {
            violations.push(format!(
                "{ctx}: too few measured messages ({} < {min_completed})",
                row.completed
            ));
            continue;
        }
        // Model and simulator share the fault-aware router, so their
        // reachability censuses must agree exactly.
        if (row.reach_model - row.reach_sim).abs() > 1e-12 {
            violations.push(format!(
                "{ctx}: reachability disagrees — model {:.6} vs sim {:.6}",
                row.reach_model, row.reach_sim
            ));
        }
        if !within_envelope(row) {
            violations.push(format!(
                "{ctx}: model {:.2}+{:.2} vs sim {:.2} — ratio {:.3} outside \
                 [1/{f}, {f}] and residual {:.3} outside the CI band {:.3}",
                row.model,
                row.offset,
                row.sim,
                (row.model + row.offset) / row.sim,
                row.residual(),
                row.ci,
                f = agreement_factor(row.frac),
            ));
        }
    }
    violations
}

fn print_rows(name: &str, rows: &[SweepRow]) {
    println!("\n{name}: faulty-model latency vs simulation (calibrated)");
    println!(
        "{:>6} {:>6} {:>12} {:>9} {:>9} {:>8} {:>8} {:>9} {:>8}",
        "p", "frac", "lambda", "model", "sim", "ratio", "factor", "reach", "samples"
    );
    for r in rows {
        println!(
            "{:>6.2} {:>6.2} {:>12.3e} {:>9.2} {:>9.2} {:>8.3} {:>8.2} {:>9.4} {:>8}",
            r.density,
            r.frac,
            r.lambda,
            r.model + r.offset,
            r.sim,
            (r.model + r.offset) / r.sim,
            agreement_factor(r.frac),
            r.reach_model,
            r.completed,
        );
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (densities, fracs, cal_target, target, warmup, min_completed): (
        &[f64],
        &[f64],
        u64,
        u64,
        u64,
        u64,
    ) = if quick {
        (&[0.0, 0.05], &[0.3, 0.6], 1_200, 2_000, 12_000, 800)
    } else {
        (
            &[0.0, 0.02, 0.05, 0.10],
            &[0.3, 0.6, 0.85],
            3_000,
            6_000,
            25_000,
            2_500,
        )
    };

    let mut all_violations = Vec::new();
    for (name, link_kind, boundary) in [
        (
            "8x8 bidirectional torus",
            LinkKind::Bidirectional,
            Boundary::Torus,
        ),
        ("8x8 mesh", LinkKind::Bidirectional, Boundary::Mesh),
    ] {
        let (rows, mut sweep_violations) = sweep_geometry(
            name, link_kind, boundary, densities, fracs, cal_target, target, warmup,
        );
        print_rows(name, &rows);
        sweep_violations.extend(check_rows(name, &rows, min_completed));
        all_violations.extend(sweep_violations);
    }

    if all_violations.is_empty() {
        println!(
            "\nenvelope check: OK (model within the stated agreement factors of \
             simulation up to 0.85·λ* at every fault density)"
        );
    } else {
        println!("\nenvelope check violations:");
        for v in &all_violations {
            println!("  - {v}");
        }
        std::process::exit(1);
    }
}
