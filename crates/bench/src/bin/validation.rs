//! The validation matrix behind §4's sentence: "Extensive simulation
//! experiments have been conducted to validate the model for different
//! combinations of network sizes, message lengths, and hot-spot fraction
//! h, and the general conclusions have been found to be consistent across
//! all cases considered."
//!
//! Sweeps N ∈ {64, 256}, Lm ∈ {16, 32, 64, 100}, h ∈ {0, 0.05, 0.2, 0.4,
//! 0.7}, V ∈ {2, 3} at a moderate load (40% of each configuration's
//! saturation rate) and reports the model-vs-simulation relative error.
//!
//! ```sh
//! cargo run --release -p kncube-bench --bin validation [-- --quick]
//! ```

use kncube_bench::FigureConfig;
use kncube_core::HotSpotModel;
use kncube_sim::Simulator;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ks: &[u32] = if quick { &[8] } else { &[8, 16] };
    let lms: &[u32] = if quick { &[16, 32] } else { &[16, 32, 64, 100] };
    let hs: &[f64] = if quick {
        &[0.0, 0.2, 0.7]
    } else {
        &[0.0, 0.05, 0.2, 0.4, 0.7]
    };
    let vs: &[u32] = if quick { &[2] } else { &[2, 3] };

    println!(
        "{:>4} {:>4} {:>4} {:>5} {:>12} {:>10} {:>12} {:>7}",
        "k", "V", "Lm", "h", "λ (0.4λ*)", "model", "simulation", "err%"
    );

    let mut worst: f64 = 0.0;
    let mut worst_hot: f64 = 0.0;
    let mut count = 0u32;
    let mut cell = 0u32;
    for &k in ks {
        for &v in vs {
            for &lm in lms {
                for &h in hs {
                    let mut cfg = FigureConfig::paper(lm, h);
                    cfg.k = k;
                    cfg.v = v;
                    cfg.seed = kncube_bench::cell_seed(cfg.seed, cell);
                    cell += 1;
                    cfg.sim_limits = if quick {
                        (400_000, 40_000, 10_000)
                    } else {
                        (1_500_000, 100_000, 30_000)
                    };
                    let sat = kncube_bench::or_exit(kncube_core::find_saturation(
                        cfg.model_config(0.0),
                        1e-8,
                        1e-1,
                        1e-3,
                    ));
                    let lambda = 0.4 * sat;
                    let model = HotSpotModel::new(cfg.model_config(lambda)).unwrap().solve();
                    let sim = Simulator::new(cfg.sim_config(lambda)).unwrap().run();
                    match model {
                        Ok(m) => {
                            let err = (m.latency - sim.mean_latency) / sim.mean_latency * 100.0;
                            worst = worst.max(err.abs());
                            if h > 0.0 {
                                worst_hot = worst_hot.max(err.abs());
                            }
                            count += 1;
                            println!(
                                "{k:>4} {v:>4} {lm:>4} {h:>5.2} {lambda:>12.3e} {:>10.1} {:>12.1} {err:>7.1}",
                                m.latency, sim.mean_latency
                            );
                        }
                        Err(e) => println!(
                            "{k:>4} {v:>4} {lm:>4} {h:>5.2} {lambda:>12.3e} {e:>10} {:>12.1} {:>7}",
                            sim.mean_latency, "-"
                        ),
                    }
                }
            }
        }
    }
    println!("\n{count} configurations; worst |error| at 0.4λ*: {worst:.1}%");
    println!(
        "worst |error| within the paper's hot-spot scope (h > 0): {worst_hot:.1}%\n\
         (h = 0 rows probe pure uniform traffic, which the paper never\n\
         validates — the blocking operator's mid-load optimism shows there)"
    );
}
