//! Shared harness for regenerating the paper's figures and the extension
//! experiments.
//!
//! Every binary in `src/bin/` drives the same primitives: a λ grid per
//! configuration, the analytical model, the flit-level simulator, and a
//! plain-text table/CSV emitter (the paper's figures are line charts of
//! latency vs. offered traffic; we print the series that draw them).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod queries;
pub mod stamp;

use kncube_core::{
    HotSpotModel, ModelConfig, ModelError, ModelOutput, NCubeConfig, NCubeModel, NCubeOutput,
    SaturationError,
};
use kncube_sim::{SimConfig, SimReport, Simulator};
use rayon::prelude::*;

/// Unwrap a saturation-search result in a figure binary: on failure,
/// print a one-line human-readable message (not the `Debug` form) to
/// stderr and exit non-zero.
pub fn or_exit<T>(result: Result<T, SaturationError>) -> T {
    match result {
        Ok(value) => value,
        Err(e) => {
            eprintln!("error: saturation search failed: {e}");
            std::process::exit(2);
        }
    }
}

/// Derive the simulator seed for experiment cell `cell` of a sweep from
/// the binary's base seed, so each cell runs an independent replication
/// stream instead of re-using one literal seed everywhere.  Cell 0 is the
/// base seed itself; the derivation is
/// [`kncube_traffic::replication_seed`], the same one the simulator's
/// parallel replications use, so a sweep cell can be reproduced as
/// "replication `cell` of the base configuration".
pub fn cell_seed(base: u64, cell: u32) -> u64 {
    kncube_traffic::replication_seed(base, cell)
}

/// One experimental configuration (a subfigure of the paper).
#[derive(Clone, Copy, Debug)]
pub struct FigureConfig {
    /// Radix of the `k × k` torus.
    pub k: u32,
    /// Virtual channels per physical channel.
    pub v: u32,
    /// Message length in flits.
    pub lm: u32,
    /// Hot-spot fraction.
    pub h: f64,
    /// Number of λ points on the curve.
    pub points: usize,
    /// Highest λ as a fraction of the model's saturation rate.
    pub top_fraction: f64,
    /// Simulator seed.
    pub seed: u64,
    /// Simulator limits: (max_cycles, warmup, target messages).
    pub sim_limits: (u64, u64, u64),
}

impl FigureConfig {
    /// The paper's subfigure for `(lm, h)` with tuned run lengths.
    pub fn paper(lm: u32, h: f64) -> Self {
        FigureConfig {
            k: 16,
            v: 2,
            lm,
            h,
            points: 8,
            top_fraction: 0.95,
            seed: 20_050_408, // the conference's opening day
            sim_limits: (3_000_000, 150_000, 40_000),
        }
    }

    /// Quick variant for smoke tests (fewer points, shorter runs).
    pub fn quick(mut self) -> Self {
        self.points = 4;
        self.top_fraction = 0.8;
        self.sim_limits = (400_000, 40_000, 8_000);
        self
    }

    /// The model configuration at rate `lambda`.
    pub fn model_config(&self, lambda: f64) -> ModelConfig {
        ModelConfig::paper_validation(self.k, self.v, self.lm, lambda, self.h)
    }

    /// The simulator configuration at rate `lambda`.
    pub fn sim_config(&self, lambda: f64) -> SimConfig {
        let (max_cycles, warmup, target) = self.sim_limits;
        SimConfig::paper_validation(self.k, self.v, self.lm, lambda, self.h, self.seed)
            .with_limits(max_cycles, warmup, target)
    }

    /// The same sweep as a generalized configuration with `n = 2` —
    /// mirroring `ModelConfig::as_ncube` and `SimConfig::paper_validation`,
    /// so the grid/print/shape machinery has a single implementation.
    pub fn as_ncube(&self) -> NCubeFigureConfig {
        NCubeFigureConfig {
            k: self.k,
            n: 2,
            v: self.v,
            lm: self.lm,
            h: self.h,
            points: self.points,
            top_fraction: self.top_fraction,
            seed: self.seed,
            sim_limits: self.sim_limits,
        }
    }

    /// The λ grid: `points` evenly-spaced rates from `λ*/points` to
    /// `top_fraction · λ*`, where `λ*` is the model's saturation rate —
    /// the same sweep the paper's figures plot.
    pub fn lambda_grid(&self) -> Result<Vec<f64>, SaturationError> {
        self.as_ncube().lambda_grid()
    }
}

/// One row of a regenerated figure.
#[derive(Clone, Debug)]
pub struct FigureRow {
    /// Offered traffic (messages/node/cycle).
    pub lambda: f64,
    /// The model's prediction.
    pub model: Result<ModelOutput, ModelError>,
    /// The simulation measurement.
    pub sim: SimReport,
}

impl FigureRow {
    /// Relative model error vs. simulation, when the model solved.
    pub fn relative_error(&self) -> Option<f64> {
        self.model
            .as_ref()
            .ok()
            .map(|m| (m.latency - self.sim.mean_latency) / self.sim.mean_latency)
    }
}

/// Regenerate one subfigure: run the model and the simulator over the λ
/// grid.  Points run in parallel on the pooled rayon workers (the
/// simulator dominates the cost; the model solve per point is cheap).
pub fn run_figure(config: &FigureConfig) -> Result<Vec<FigureRow>, SaturationError> {
    let lambdas = config.lambda_grid()?;
    Ok(lambdas
        .par_iter()
        .map(|&lambda| {
            let sim = Simulator::new(config.sim_config(lambda))
                .expect("valid sim config")
                .run();
            FigureRow {
                lambda,
                model: HotSpotModel::new(config.model_config(lambda)).and_then(|m| m.solve()),
                sim,
            }
        })
        .collect())
}

/// Print a figure as an aligned table (and CSV-ish rows for re-plotting).
pub fn print_figure(title: &str, config: &FigureConfig, rows: &[FigureRow]) {
    println!("\n=== {title} ===");
    println!(
        "k={} V={} Lm={} h={:.0}% (seed {})",
        config.k,
        config.v,
        config.lm,
        config.h * 100.0,
        config.seed
    );
    print_rows(
        rows.iter()
            .map(|r| (r.lambda, r.model.as_ref().map(|m| m.latency), &r.sim)),
    );
}

/// The shared table body behind [`print_figure`] and
/// [`print_ncube_figure`].
fn print_rows<'a>(rows: impl Iterator<Item = (f64, Result<f64, &'a ModelError>, &'a SimReport)>) {
    println!(
        "{:>12} {:>12} {:>12} {:>8} {:>8} {:>7}",
        "traffic", "model", "simulation", "ci95", "err%", "note"
    );
    for (lambda, model, sim) in rows {
        let (model_str, err_str) = match model {
            Ok(m) => (
                format!("{m:12.1}"),
                format!("{:8.1}", (m - sim.mean_latency) / sim.mean_latency * 100.0),
            ),
            Err(ModelError::Saturated { .. }) | Err(ModelError::NotConverged) => {
                ("   saturated".to_string(), "       -".to_string())
            }
            Err(e) => (format!("{e}"), "       -".to_string()),
        };
        println!(
            "{lambda:>12.4e} {model_str} {:>12.1} {:>8.1} {err_str} {:>7}",
            sim.mean_latency,
            sim.ci_half_width.unwrap_or(f64::NAN),
            if sim.saturated { "SAT" } else { "" }
        );
    }
}

/// Shape assertions shared by the figure binaries and integration tests:
/// the paper's headline claims for one regenerated subfigure.
///
/// Returns a list of violated claims (empty = all good).
pub fn check_figure_shape(rows: &[FigureRow]) -> Vec<String> {
    let points: Vec<(f64, Option<f64>, &SimReport)> = rows
        .iter()
        .map(|r| (r.lambda, r.model.as_ref().ok().map(|m| m.latency), &r.sim))
        .collect();
    shape_violations(&points)
}

/// The shared shape claims behind [`check_figure_shape`] and
/// [`check_ncube_figure_shape`], over `(λ, model latency if solved, sim)`
/// points in grid order.
fn shape_violations(points: &[(f64, Option<f64>, &SimReport)]) -> Vec<String> {
    let mut violations = Vec::new();
    // Claim 1: at light load (first half of the grid, excluding points the
    // simulator itself flagged saturated) the model tracks simulation.
    for &(lambda, model, sim) in points.iter().take(points.len() / 2) {
        if sim.saturated {
            continue;
        }
        match model {
            Some(m) => {
                let err = (m - sim.mean_latency) / sim.mean_latency;
                if err.abs() > 0.25 {
                    violations.push(format!(
                        "light-load error {:.0}% at λ={lambda:.3e}",
                        err * 100.0
                    ));
                }
            }
            None => violations.push(format!("model saturated at light load λ={lambda:.3e}")),
        }
    }
    // Claim 2: simulated latency grows monotonically with load (within
    // noise) — it is a latency/throughput curve.
    for pair in points.windows(2) {
        let (a, b) = (pair[0].2, pair[1].2);
        if a.saturated || b.saturated {
            continue;
        }
        let slack =
            3.0 * (a.ci_half_width.unwrap_or(0.0) + b.ci_half_width.unwrap_or(0.0)).max(1.0);
        if b.mean_latency + slack < a.mean_latency {
            violations.push(format!(
                "simulated latency decreased: {:.1} → {:.1} between λ={:.3e} and {:.3e}",
                a.mean_latency, b.mean_latency, pair[0].0, pair[1].0
            ));
        }
    }
    violations
}

// ---------------------------------------------------------------------
// Generalized k-ary n-cube figures
// ---------------------------------------------------------------------

/// The `(k, n)` pairs the `ncube` experiment sweeps: three genuinely
/// higher-dimensional cubes plus the paper's 256-node torus as the
/// `n = 2` anchor.
pub const NCUBE_SWEEP: [(u32, u32); 4] = [(4, 3), (8, 3), (4, 4), (16, 2)];

/// One experimental configuration of the generalized model-vs-simulator
/// sweep — [`FigureConfig`] with the dimension count as a parameter.
#[derive(Clone, Copy, Debug)]
pub struct NCubeFigureConfig {
    /// Radix `k` (nodes per dimension).
    pub k: u32,
    /// Dimension count `n`.
    pub n: u32,
    /// Virtual channels per physical channel.
    pub v: u32,
    /// Message length in flits.
    pub lm: u32,
    /// Hot-spot fraction.
    pub h: f64,
    /// Number of λ points on the curve.
    pub points: usize,
    /// Highest λ as a fraction of the model's saturation rate.
    pub top_fraction: f64,
    /// Simulator seed.
    pub seed: u64,
    /// Simulator limits: (max_cycles, warmup, target messages).
    pub sim_limits: (u64, u64, u64),
}

impl NCubeFigureConfig {
    /// A `(k, n)` sweep configuration with run lengths sized for cubes up
    /// to a few hundred nodes.
    pub fn new(k: u32, n: u32, lm: u32, h: f64) -> Self {
        NCubeFigureConfig {
            k,
            n,
            v: 2,
            lm,
            h,
            points: 6,
            top_fraction: 0.9,
            seed: 20_050_408,
            sim_limits: (1_500_000, 100_000, 20_000),
        }
    }

    /// Quick variant for smoke tests (fewer points, shorter runs).
    pub fn quick(mut self) -> Self {
        self.points = 3;
        self.top_fraction = 0.7;
        self.sim_limits = (300_000, 30_000, 5_000);
        self
    }

    /// The generalized model configuration at rate `lambda`.
    pub fn model_config(&self, lambda: f64) -> NCubeConfig {
        NCubeConfig::new(self.k, self.n, self.v, self.lm, lambda, self.h)
    }

    /// The simulator configuration at rate `lambda`.
    pub fn sim_config(&self, lambda: f64) -> SimConfig {
        let (max_cycles, warmup, target) = self.sim_limits;
        SimConfig::ncube(self.k, self.n, self.v, self.lm, lambda, self.h, self.seed)
            .with_limits(max_cycles, warmup, target)
    }

    /// The λ grid: `points` evenly-spaced rates up to
    /// `top_fraction · λ*` of the generalized model's saturation rate.
    pub fn lambda_grid(&self) -> Result<Vec<f64>, SaturationError> {
        let sat = kncube_core::find_saturation_ncube(self.model_config(0.0), 1e-9, 1e-1, 1e-3)?;
        Ok((1..=self.points)
            .map(|i| sat * self.top_fraction * i as f64 / self.points as f64)
            .collect())
    }
}

/// One row of a generalized `(k, n)` figure.
#[derive(Clone, Debug)]
pub struct NCubeFigureRow {
    /// Offered traffic (messages/node/cycle).
    pub lambda: f64,
    /// The generalized model's prediction.
    pub model: Result<NCubeOutput, ModelError>,
    /// The simulation measurement.
    pub sim: SimReport,
}

impl NCubeFigureRow {
    /// Relative model error vs. simulation, when the model solved.
    pub fn relative_error(&self) -> Option<f64> {
        self.model
            .as_ref()
            .ok()
            .map(|m| (m.latency - self.sim.mean_latency) / self.sim.mean_latency)
    }
}

/// Run the generalized model and the simulator over the λ grid of one
/// `(k, n)` configuration, in parallel on the pooled rayon workers.
pub fn run_ncube_figure(
    config: &NCubeFigureConfig,
) -> Result<Vec<NCubeFigureRow>, SaturationError> {
    let lambdas = config.lambda_grid()?;
    Ok(lambdas
        .par_iter()
        .map(|&lambda| {
            let sim = Simulator::new(config.sim_config(lambda))
                .expect("valid sim config")
                .run();
            NCubeFigureRow {
                lambda,
                model: NCubeModel::new(config.model_config(lambda)).and_then(|m| m.solve()),
                sim,
            }
        })
        .collect())
}

/// Print a generalized figure as an aligned table.
pub fn print_ncube_figure(title: &str, config: &NCubeFigureConfig, rows: &[NCubeFigureRow]) {
    println!("\n=== {title} ===");
    println!(
        "k={} n={} (N={}) V={} Lm={} h={:.0}% (seed {})",
        config.k,
        config.n,
        (config.k as u64).pow(config.n),
        config.v,
        config.lm,
        config.h * 100.0,
        config.seed
    );
    print_rows(
        rows.iter()
            .map(|r| (r.lambda, r.model.as_ref().map(|m| m.latency), &r.sim)),
    );
}

/// [`check_figure_shape`] for the generalized `(k, n)` sweeps.
pub fn check_ncube_figure_shape(rows: &[NCubeFigureRow]) -> Vec<String> {
    let points: Vec<(f64, Option<f64>, &SimReport)> = rows
        .iter()
        .map(|r| (r.lambda, r.model.as_ref().ok().map(|m| m.latency), &r.sim))
        .collect();
    shape_violations(&points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_grid_is_increasing_and_below_saturation() {
        let cfg = FigureConfig::paper(32, 0.2);
        let grid = cfg.lambda_grid().expect("paper config saturates");
        assert_eq!(grid.len(), cfg.points);
        for pair in grid.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        // The whole grid must be solvable by the model except possibly the
        // last point (at 95% of λ* it should still solve).
        for &l in &grid {
            assert!(
                HotSpotModel::new(cfg.model_config(l))
                    .unwrap()
                    .solve()
                    .is_ok(),
                "λ={l} unexpectedly saturated"
            );
        }
    }

    #[test]
    fn quick_figure_run_has_sane_shape() {
        let cfg = FigureConfig::paper(16, 0.3).quick();
        let rows = run_figure(&cfg).expect("paper config saturates");
        assert_eq!(rows.len(), cfg.points);
        let violations = check_figure_shape(&rows);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn ncube_grid_is_solvable_below_saturation() {
        let cfg = NCubeFigureConfig::new(4, 3, 16, 0.3);
        let grid = cfg.lambda_grid().expect("hot-spot cubes saturate");
        assert_eq!(grid.len(), cfg.points);
        for pair in grid.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        for &l in &grid {
            assert!(
                NCubeModel::new(cfg.model_config(l))
                    .unwrap()
                    .solve()
                    .is_ok(),
                "λ={l} unexpectedly saturated"
            );
        }
    }

    #[test]
    fn quick_ncube_figure_run_has_sane_shape() {
        let cfg = NCubeFigureConfig::new(4, 3, 8, 0.3).quick();
        let rows = run_ncube_figure(&cfg).expect("hot-spot cubes saturate");
        assert_eq!(rows.len(), cfg.points);
        let violations = check_ncube_figure_shape(&rows);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
