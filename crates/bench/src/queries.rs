//! The batched model-query engine: JSON in, JSON out.
//!
//! The `queries` binary answers batches of design-space questions against
//! the analytical model — point latencies, saturation rates, and Pareto
//! picks ("the lowest-latency cube with at least N nodes").  The engine
//! is built from three ingredients the interactive figure binaries don't
//! use:
//!
//! * a shared [`SolveCache`]: every solve is memoised behind a quantized
//!   `(k, n, V, Lm, h, λ)` key, so repeated and near-duplicate queries
//!   become lookups;
//! * **warm-start continuation**: latency queries are grouped by
//!   geometry, sorted by `λ`, and each group is solved as a chain where
//!   every fixed point starts from its neighbour's converged state
//!   ([`kncube_core::NCubeModel::solve_warm`]);
//! * **Anderson acceleration** for the iterative service-time ablation,
//!   where plain Picard slows to hundreds of iterations near saturation.
//!
//! Chains and standalone queries run in parallel on the bounded rayon
//! pool; results come back in input order, so the output is deterministic
//! for a given input batch (modulo the floating-point-identical answers
//! the cache guarantees per lattice point).
//!
//! # Input document
//!
//! ```json
//! { "queries": [
//!   { "type": "latency", "k": 16, "n": 2, "v": 2, "lm": 32,
//!     "h": 0.2, "lambda": 1e-4 },
//!   { "type": "saturation", "k": 8, "n": 3, "v": 2, "lm": 16, "h": 0.3 },
//!   { "type": "pareto", "v": 2, "lm": 32, "h": 0.2, "lambda": 1e-5,
//!     "min_nodes": 256, "candidates": [[16, 2], [8, 3], [4, 4]] }
//! ] }
//! ```
//!
//! Latency and saturation queries accept two optional knobs:
//! `"service_model"` (`"pipelined_transfer"`, the default, or
//! `"path_occupancy"`) and `"anderson_depth"` (a positive integer turning
//! on Anderson acceleration of that depth).  Pareto queries accept them
//! too and apply them to every candidate.
//!
//! # Output document
//!
//! One result object per query, in input order, each tagged with the
//! query `type` and an `"ok"` flag; failures (e.g. a latency query past
//! `λ*`) carry an `"error"` string instead of aborting the batch.  The
//! footer `"cache"` object reports hit/miss counters for the whole batch.
//!
//! Answers are for the *quantized* configuration (the `λ`/`h` lattice of
//! [`SolveCache`], relative snap below `2⁻²⁰`); latency results echo the
//! snapped `λ` they solved.

use crate::json::Json;
use crate::stamp::{git_commit, utc_now_iso8601};
use kncube_core::{
    find_saturation_ncube_report, ModelError, NCubeConfig, NCubeModel, ServiceTimeModel, SolveCache,
};
use kncube_queueing::fixed_point::Acceleration;
use rayon::prelude::*;
use std::collections::HashMap;
use std::time::Instant;

/// Default candidate `(k, n)` geometries for Pareto queries that don't
/// supply their own list: every cube from 16 to ~4096 nodes with radix a
/// power of two, the range the simulator cross-validates.
pub const DEFAULT_PARETO_CANDIDATES: [(u32, u32); 9] = [
    (4, 2),
    (8, 2),
    (16, 2),
    (32, 2),
    (4, 3),
    (8, 3),
    (16, 3),
    (4, 4),
    (8, 4),
];

/// Relative tolerance of the saturation bisection behind `"saturation"`
/// queries (tight enough that the reported `λ*` is stable under the
/// cache's `λ` quantization).
const SATURATION_REL_TOL: f64 = 1e-6;

/// A parsed query, index-tagged so results scatter back to input order.
#[derive(Clone, Debug)]
enum Query {
    Latency(NCubeConfig),
    Saturation(NCubeConfig),
    Pareto {
        proto: NCubeConfig,
        min_nodes: u64,
        candidates: Vec<(u32, u32)>,
    },
}

/// The geometry key that decides which continuation chain a latency
/// query joins: everything that shapes the fixed point except `λ`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct ChainKey {
    k: u32,
    n: u32,
    v: u32,
    lm: u32,
    h_bits: u64,
    variant: kncube_core::ModelVariant,
    service: ServiceTimeModel,
    multiplexing: kncube_core::MultiplexingModel,
    max_iterations: usize,
    tolerance_bits: u64,
    damping_bits: u64,
    acceleration: Acceleration,
}

impl ChainKey {
    fn of(cfg: &NCubeConfig) -> Self {
        ChainKey {
            k: cfg.k,
            n: cfg.n,
            v: cfg.virtual_channels,
            lm: cfg.message_length,
            h_bits: cfg.hot_fraction.to_bits(),
            variant: cfg.variant,
            service: cfg.service_model,
            multiplexing: cfg.multiplexing,
            max_iterations: cfg.options.max_iterations,
            tolerance_bits: cfg.options.tolerance.to_bits(),
            damping_bits: cfg.options.damping.to_bits(),
            acceleration: cfg.options.acceleration,
        }
    }
}

/// A schedulable unit of batch work: one continuation chain or one
/// standalone query.
enum Unit {
    Chain(Vec<(usize, NCubeConfig)>),
    Saturation(usize, NCubeConfig),
    Pareto(usize, Query),
}

fn req_num(q: &Json, i: usize, key: &str) -> Result<f64, String> {
    q.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("queries[{i}]: missing numeric field '{key}'"))
}

fn req_u32(q: &Json, i: usize, key: &str) -> Result<u32, String> {
    let x = req_num(q, i, key)?;
    if x >= 0.0 && x.fract() == 0.0 && x <= u32::MAX as f64 {
        Ok(x as u32)
    } else {
        Err(format!("queries[{i}]: field '{key}' must be an integer"))
    }
}

/// Shared `(k, n, v, lm, h, knobs)` parsing of latency/saturation
/// queries; `lambda` comes from the field named `lambda_key` (pareto
/// prototypes skip `k`/`n` by passing placeholders).
fn parse_config(q: &Json, i: usize, k: u32, n: u32, lambda: f64) -> Result<NCubeConfig, String> {
    let v = req_u32(q, i, "v")?;
    let lm = req_u32(q, i, "lm")?;
    let h = req_num(q, i, "h")?;
    let mut cfg = NCubeConfig::new(k, n, v, lm, lambda, h);
    match q.get("service_model").and_then(Json::as_str) {
        None | Some("pipelined_transfer") => {}
        Some("path_occupancy") => cfg.service_model = ServiceTimeModel::PathOccupancy,
        Some(other) => {
            return Err(format!(
                "queries[{i}]: unknown service_model '{other}' \
                 (expected 'pipelined_transfer' or 'path_occupancy')"
            ))
        }
    }
    if let Some(depth) = q.get("anderson_depth") {
        let depth = depth
            .as_f64()
            .filter(|d| *d >= 1.0 && d.fract() == 0.0 && *d <= 64.0)
            .ok_or_else(|| format!("queries[{i}]: anderson_depth must be an integer in 1..=64"))?;
        cfg.options.acceleration = Acceleration::Anderson {
            depth: depth as usize,
        };
    }
    Ok(cfg)
}

fn parse_query(q: &Json, i: usize) -> Result<Query, String> {
    match q.get("type").and_then(Json::as_str) {
        Some("latency") => {
            let k = req_u32(q, i, "k")?;
            let n = req_u32(q, i, "n")?;
            let lambda = req_num(q, i, "lambda")?;
            Ok(Query::Latency(parse_config(q, i, k, n, lambda)?))
        }
        Some("saturation") => {
            let k = req_u32(q, i, "k")?;
            let n = req_u32(q, i, "n")?;
            Ok(Query::Saturation(parse_config(q, i, k, n, 0.0)?))
        }
        Some("pareto") => {
            let lambda = req_num(q, i, "lambda")?;
            let min_nodes = req_num(q, i, "min_nodes")?;
            if !(min_nodes >= 1.0 && min_nodes.fract() == 0.0) {
                return Err(format!(
                    "queries[{i}]: min_nodes must be a positive integer"
                ));
            }
            let candidates = match q.get("candidates") {
                None => DEFAULT_PARETO_CANDIDATES.to_vec(),
                Some(list) => {
                    let items = list
                        .as_arr()
                        .ok_or_else(|| format!("queries[{i}]: candidates must be an array"))?;
                    let mut pairs = Vec::with_capacity(items.len());
                    for item in items {
                        let pair = item.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                            format!("queries[{i}]: each candidate must be a [k, n] pair")
                        })?;
                        let as_u32 = |x: &Json| {
                            x.as_f64()
                                .filter(|v| *v >= 1.0 && v.fract() == 0.0 && *v <= u32::MAX as f64)
                                .map(|v| v as u32)
                        };
                        match (as_u32(&pair[0]), as_u32(&pair[1])) {
                            (Some(k), Some(n)) => pairs.push((k, n)),
                            _ => {
                                return Err(format!(
                                    "queries[{i}]: candidate entries must be positive integers"
                                ))
                            }
                        }
                    }
                    pairs
                }
            };
            if candidates.is_empty() {
                return Err(format!("queries[{i}]: candidates must not be empty"));
            }
            // k/n placeholders: each candidate substitutes its own.
            let proto = parse_config(q, i, 2, 2, lambda)?;
            Ok(Query::Pareto {
                proto,
                min_nodes: min_nodes as u64,
                candidates,
            })
        }
        Some(other) => Err(format!(
            "queries[{i}]: unknown type '{other}' \
             (expected 'latency', 'saturation' or 'pareto')"
        )),
        None => Err(format!("queries[{i}]: missing string field 'type'")),
    }
}

fn model_error_json(kind: &str, e: &ModelError) -> Json {
    let mut out = Json::obj();
    out.set("type", Json::Str(kind.into()));
    out.set("ok", Json::Bool(false));
    out.set("error", Json::Str(format!("{e}")));
    out
}

fn latency_result(cfg: &NCubeConfig, solved: Result<kncube_core::NCubeOutput, ModelError>) -> Json {
    match solved {
        Ok(out) => {
            let mut r = Json::obj();
            r.set("type", Json::Str("latency".into()));
            r.set("ok", Json::Bool(true));
            r.set("lambda", Json::Num(SolveCache::quantize(cfg).lambda));
            r.set("latency", Json::Num(out.latency));
            r.set("regular_latency", Json::Num(out.regular_latency));
            r.set("hot_latency", Json::Num(out.hot_latency));
            r.set("max_utilization", Json::Num(out.max_utilization));
            r.set("iterations", Json::Num(out.iterations as f64));
            r
        }
        Err(e) => model_error_json("latency", &e),
    }
}

fn run_unit(unit: &Unit, cache: &SolveCache) -> Vec<(usize, Json)> {
    match unit {
        Unit::Chain(links) => {
            let mut warm: Option<Vec<f64>> = None;
            links
                .iter()
                .map(|(idx, cfg)| {
                    let (solved, state) = cache.solve_with_warm(cfg, warm.as_deref());
                    warm = state;
                    (*idx, latency_result(cfg, solved))
                })
                .collect()
        }
        Unit::Saturation(idx, cfg) => {
            let report = find_saturation_ncube_report(*cfg, 1e-9, 1e-1, SATURATION_REL_TOL);
            let result = match report {
                Ok(report) => {
                    let mut r = Json::obj();
                    r.set("type", Json::Str("saturation".into()));
                    r.set("ok", Json::Bool(true));
                    r.set("lambda_star", Json::Num(report.lambda_star));
                    r.set("probes", Json::Num(report.probes as f64));
                    r.set(
                        "solver_iterations",
                        Json::Num(report.solver_iterations as f64),
                    );
                    r.set("mean_iterations", Json::Num(report.mean_iterations()));
                    r
                }
                Err(e) => {
                    let mut r = Json::obj();
                    r.set("type", Json::Str("saturation".into()));
                    r.set("ok", Json::Bool(false));
                    r.set("error", Json::Str(format!("{e}")));
                    r
                }
            };
            vec![(*idx, result)]
        }
        Unit::Pareto(
            idx,
            Query::Pareto {
                proto,
                min_nodes,
                candidates,
            },
        ) => {
            let mut best: Option<(u32, u32, u64, f64)> = None;
            for &(k, n) in candidates {
                let nodes = (k as u64).saturating_pow(n);
                if nodes < *min_nodes {
                    continue;
                }
                let cfg = NCubeConfig { k, n, ..*proto };
                // Geometries differ, so every candidate solves cold —
                // but the shared cache still pays off across queries.
                if let Ok(out) = cache.solve(&cfg) {
                    if best.is_none_or(|(.., l)| out.latency < l) {
                        best = Some((k, n, nodes, out.latency));
                    }
                }
            }
            let result = match best {
                Some((k, n, nodes, latency)) => {
                    let mut r = Json::obj();
                    r.set("type", Json::Str("pareto".into()));
                    r.set("ok", Json::Bool(true));
                    r.set("k", Json::Num(k as f64));
                    r.set("n", Json::Num(n as f64));
                    r.set("nodes", Json::Num(nodes as f64));
                    r.set("latency", Json::Num(latency));
                    r
                }
                None => {
                    let mut r = Json::obj();
                    r.set("type", Json::Str("pareto".into()));
                    r.set("ok", Json::Bool(false));
                    r.set(
                        "error",
                        Json::Str(format!(
                            "no candidate with at least {min_nodes} nodes solves at λ={}",
                            proto.lambda
                        )),
                    );
                    r
                }
            };
            vec![(*idx, result)]
        }
        Unit::Pareto(..) => unreachable!("pareto units only wrap pareto queries"),
    }
}

/// Answer a batch document.  Returns the output document, or a message
/// describing the first malformed query.
pub fn run_batch(doc: &Json) -> Result<Json, String> {
    let queries = doc
        .get("queries")
        .and_then(Json::as_arr)
        .ok_or("input document must have a 'queries' array")?;
    let parsed: Vec<Query> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| parse_query(q, i))
        .collect::<Result<_, _>>()?;

    // Latency queries join per-geometry continuation chains (sorted by
    // λ so neighbours warm-start each other); everything else is its own
    // unit.  Units run in parallel on the bounded pool.
    let mut chains: HashMap<ChainKey, Vec<(usize, NCubeConfig)>> = HashMap::new();
    let mut units: Vec<Unit> = Vec::new();
    for (idx, query) in parsed.iter().enumerate() {
        match query {
            Query::Latency(cfg) => chains
                .entry(ChainKey::of(cfg))
                .or_default()
                .push((idx, *cfg)),
            Query::Saturation(cfg) => units.push(Unit::Saturation(idx, *cfg)),
            Query::Pareto { .. } => units.push(Unit::Pareto(idx, query.clone())),
        }
    }
    for (_, mut links) in chains {
        links.sort_by(|a, b| a.1.lambda.total_cmp(&b.1.lambda));
        units.push(Unit::Chain(links));
    }

    let cache = SolveCache::new();
    let scattered: Vec<Vec<(usize, Json)>> = units
        .par_iter()
        .map(|unit| run_unit(unit, &cache))
        .collect();

    let mut results: Vec<Json> = vec![Json::Null; parsed.len()];
    for (idx, result) in scattered.into_iter().flatten() {
        results[idx] = result;
    }

    let mut out = Json::obj();
    out.set("results", Json::Arr(results));
    let mut stats = Json::obj();
    stats.set("hits", Json::Num(cache.hits() as f64));
    stats.set("misses", Json::Num(cache.misses() as f64));
    stats.set("entries", Json::Num(cache.len() as f64));
    out.set("cache", stats);
    Ok(out)
}

/// Cross-check an output document against cold solves: every latency
/// result must agree with a fresh `NCubeModel::solve` of its quantized
/// configuration to within `1e-9` relative.  Returns the violations
/// (empty = the engine and the cold path agree).
pub fn check_cold(input: &Json, output: &Json) -> Result<Vec<String>, String> {
    let queries = input
        .get("queries")
        .and_then(Json::as_arr)
        .ok_or("input document must have a 'queries' array")?;
    let results = output
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("output document must have a 'results' array")?;
    if queries.len() != results.len() {
        return Err(format!(
            "query/result length mismatch: {} vs {}",
            queries.len(),
            results.len()
        ));
    }
    let mut violations = Vec::new();
    for (i, (q, r)) in queries.iter().zip(results).enumerate() {
        let Query::Latency(cfg) = parse_query(q, i)? else {
            continue;
        };
        let cold = NCubeModel::new(SolveCache::quantize(&cfg)).and_then(|m| m.solve());
        let ok = r.get("ok") == Some(&Json::Bool(true));
        match (cold, ok) {
            (Ok(cold), true) => {
                let engine = r.get("latency").and_then(Json::as_f64).unwrap_or(f64::NAN);
                let rel = (engine - cold.latency).abs() / cold.latency.abs().max(1.0);
                if rel.is_nan() || rel > 1e-9 {
                    violations.push(format!(
                        "queries[{i}]: engine latency {engine} vs cold {} \
                         (relative difference {rel:.3e} > 1e-9)",
                        cold.latency
                    ));
                }
            }
            (Err(_), false) => {}
            (Ok(_), false) => violations.push(format!(
                "queries[{i}]: engine failed where cold solve succeeds"
            )),
            (Err(e), true) => violations.push(format!(
                "queries[{i}]: engine answered where cold solve fails ({e})"
            )),
        }
    }
    Ok(violations)
}

// ---------------------------------------------------------------------
// The query-throughput benchmark (BENCH_model_queries.json)
// ---------------------------------------------------------------------

/// Schema version of `BENCH_model_queries.json`; bump on breaking change.
pub const QUERY_BENCH_SCHEMA_VERSION: f64 = 1.0;

/// The committed iteration-reduction floor: the engine pass (warm
/// continuation + Anderson) must use at least this factor fewer mean
/// fixed-point iterations than cold Picard on the benchmark grids.
/// Iteration counts are deterministic — unlike wall-clock throughput —
/// so CI checks this as a hard schema requirement, not a soft warning.
pub const MIN_ITERATION_REDUCTION: f64 = 5.0;

/// Benchmark geometries `(k, n, v, lm, h)` — the paper's torus at two
/// subfigure corners plus a 3-cube, all under the iterative
/// path-occupancy ablation (the service model where the fixed point
/// actually iterates; the default pipelined model converges in 2
/// iterations from any start and has nothing to accelerate).
const BENCH_CONFIGS: [(u32, u32, u32, u32, f64); 3] = [
    (16, 2, 2, 32, 0.2),
    (16, 2, 2, 100, 0.7),
    (8, 3, 2, 16, 0.3),
];

/// The benchmark λ grid spans this band of `λ*` — the near-saturation
/// regime where Picard's contraction rate degrades towards 1 and cold
/// solves cost hundreds of iterations.  This is also where design-space
/// exploration spends its probes: bisection clusters at `λ*`.
const GRID_BAND: (f64, f64) = (0.98, 0.9999);

/// Run the λ-grid query benchmark and emit the
/// `BENCH_model_queries.json` document.  `quick` shrinks the grids for
/// CI smoke runs; the reduction factors are deterministic either way.
pub fn run_query_bench(quick: bool) -> Json {
    let points = if quick { 48 } else { 128 };
    let (lo, hi) = GRID_BAND;

    let mut configs = Vec::new();
    let mut total_queries = 0usize;
    let mut total_cold_iters = 0usize;
    let mut total_warm_iters = 0usize;
    let mut total_warm_secs = 0.0f64;
    let mut total_replay_secs = 0.0f64;

    for (k, n, v, lm, h) in BENCH_CONFIGS {
        let mut base = NCubeConfig::new(k, n, v, lm, 0.0, h);
        base.service_model = ServiceTimeModel::PathOccupancy;
        let sat = match find_saturation_ncube_report(base, 1e-9, 1e-1, 1e-6) {
            Ok(report) => report.lambda_star,
            Err(e) => {
                eprintln!("error: no saturation rate for k={k} n={n}: {e}");
                std::process::exit(2);
            }
        };
        let configs_grid: Vec<NCubeConfig> = (0..points)
            .map(|i| {
                let f = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                NCubeConfig {
                    lambda: sat * f,
                    ..base
                }
            })
            .collect();

        // Cold pass: what a naive caller pays — independent Picard
        // solves, no cache, no continuation.
        let cold_start = Instant::now();
        let mut cold_iters = 0usize;
        for cfg in &configs_grid {
            match NCubeModel::new(*cfg).and_then(|m| m.solve()) {
                Ok(out) => cold_iters += out.iterations,
                Err(e) => {
                    eprintln!("error: cold solve failed at λ={}: {e}", cfg.lambda);
                    std::process::exit(2);
                }
            }
        }
        let cold_secs = cold_start.elapsed().as_secs_f64().max(1e-9);

        // Engine pass: the batch path — Anderson-accelerated warm
        // continuation through a fresh cache (all misses).
        let cache = SolveCache::new();
        let mut accelerated = configs_grid.clone();
        for cfg in &mut accelerated {
            cfg.options.acceleration = Acceleration::Anderson { depth: 4 };
        }
        let warm_start = Instant::now();
        let mut warm_iters = 0usize;
        let mut warm: Option<Vec<f64>> = None;
        for cfg in &accelerated {
            let (solved, state) = cache.solve_with_warm(cfg, warm.as_deref());
            warm = state;
            match solved {
                Ok(out) => warm_iters += out.iterations,
                Err(e) => {
                    eprintln!("error: engine solve failed at λ={}: {e}", cfg.lambda);
                    std::process::exit(2);
                }
            }
        }
        let warm_secs = warm_start.elapsed().as_secs_f64().max(1e-9);

        // Replay pass: the same grid again — pure cache hits.
        let replay_start = Instant::now();
        for cfg in &accelerated {
            if cache.solve(cfg).is_err() {
                eprintln!("error: cache replay failed at λ={}", cfg.lambda);
                std::process::exit(2);
            }
        }
        let replay_secs = replay_start.elapsed().as_secs_f64().max(1e-9);

        let reduction = cold_iters as f64 / warm_iters.max(1) as f64;
        eprintln!(
            "k={k} n={n} lm={lm} h={h}: {points} queries in [{lo}, {hi}]·λ*: \
             cold {:.1} iters/query, engine {:.1} ({reduction:.2}x), \
             {:.0} queries/s warm, {:.0} replayed",
            cold_iters as f64 / points as f64,
            warm_iters as f64 / points as f64,
            points as f64 / warm_secs,
            points as f64 / replay_secs,
        );

        let mut entry = Json::obj();
        entry.set("k", Json::Num(k as f64));
        entry.set("n", Json::Num(n as f64));
        entry.set("v", Json::Num(v as f64));
        entry.set("lm", Json::Num(lm as f64));
        entry.set("h", Json::Num(h));
        entry.set("service_model", Json::Str("path_occupancy".into()));
        entry.set("saturation_lambda", Json::Num(sat));
        entry.set("points", Json::Num(points as f64));
        entry.set("grid_lo_fraction", Json::Num(lo));
        entry.set("grid_hi_fraction", Json::Num(hi));
        entry.set(
            "cold_mean_iterations",
            Json::Num(cold_iters as f64 / points as f64),
        );
        entry.set(
            "warm_mean_iterations",
            Json::Num(warm_iters as f64 / points as f64),
        );
        entry.set("iteration_reduction", Json::Num(reduction));
        entry.set("cold_seconds", Json::Num(cold_secs));
        entry.set("warm_seconds", Json::Num(warm_secs));
        entry.set("queries_per_sec", Json::Num(points as f64 / warm_secs));
        entry.set(
            "cached_queries_per_sec",
            Json::Num(points as f64 / replay_secs),
        );
        entry.set("cache_hits", Json::Num(cache.hits() as f64));
        entry.set("cache_misses", Json::Num(cache.misses() as f64));
        configs.push(entry);

        total_queries += points;
        total_cold_iters += cold_iters;
        total_warm_iters += warm_iters;
        total_warm_secs += warm_secs;
        total_replay_secs += replay_secs;
    }

    let mut doc = Json::obj();
    doc.set("schema_version", Json::Num(QUERY_BENCH_SCHEMA_VERSION));
    doc.set("commit", Json::Str(git_commit()));
    doc.set("date", Json::Str(utc_now_iso8601()));
    doc.set("quick", Json::Bool(quick));
    doc.set(
        "queries_per_sec",
        Json::Num(total_queries as f64 / total_warm_secs.max(1e-9)),
    );
    doc.set(
        "cached_queries_per_sec",
        Json::Num(total_queries as f64 / total_replay_secs.max(1e-9)),
    );
    doc.set(
        "mean_iteration_reduction",
        Json::Num(total_cold_iters as f64 / total_warm_iters.max(1) as f64),
    );
    doc.set("configs", Json::Arr(configs));
    doc
}

/// Validate a `BENCH_model_queries.json` document.  Returns the list of
/// violations (empty = conforming).  The iteration-reduction floor is
/// part of the schema: it is a deterministic quantity, so drifting below
/// [`MIN_ITERATION_REDUCTION`] means the engine regressed, not the
/// runner.
pub fn query_bench_schema_violations(doc: &Json) -> Vec<String> {
    let mut bad = Vec::new();
    match doc.get("schema_version").and_then(Json::as_f64) {
        Some(v) if v == QUERY_BENCH_SCHEMA_VERSION => {}
        Some(v) => bad.push(format!(
            "schema_version {v} != {QUERY_BENCH_SCHEMA_VERSION}"
        )),
        None => bad.push("missing numeric schema_version".into()),
    }
    for key in ["commit", "date"] {
        if doc.get(key).and_then(Json::as_str).is_none() {
            bad.push(format!("missing string {key}"));
        }
    }
    for key in ["queries_per_sec", "cached_queries_per_sec"] {
        match doc.get(key).and_then(Json::as_f64) {
            Some(v) if v.is_finite() && v > 0.0 => {}
            _ => bad.push(format!("{key} missing or not a positive number")),
        }
    }
    match doc.get("mean_iteration_reduction").and_then(Json::as_f64) {
        Some(v) if v >= MIN_ITERATION_REDUCTION => {}
        Some(v) => bad.push(format!(
            "mean_iteration_reduction {v:.2} below the committed floor \
             {MIN_ITERATION_REDUCTION}"
        )),
        None => bad.push("missing numeric mean_iteration_reduction".into()),
    }
    let Some(configs) = doc.get("configs").and_then(Json::as_arr) else {
        bad.push("missing configs array".into());
        return bad;
    };
    if configs.is_empty() {
        bad.push("configs array is empty".into());
    }
    for (i, cfg) in configs.iter().enumerate() {
        for key in [
            "k",
            "n",
            "v",
            "lm",
            "h",
            "saturation_lambda",
            "points",
            "cold_mean_iterations",
            "warm_mean_iterations",
            "iteration_reduction",
            "queries_per_sec",
            "cached_queries_per_sec",
            "cache_misses",
        ] {
            match cfg.get(key).and_then(Json::as_f64) {
                Some(v) if v.is_finite() && v >= 0.0 => {}
                _ => bad.push(format!("configs[{i}].{key} missing or not a finite number")),
            }
        }
        if cfg.get("service_model").and_then(Json::as_str).is_none() {
            bad.push(format!("configs[{i}].service_model missing"));
        }
    }
    bad
}

/// Compare a fresh query-bench document against a baseline: throughput
/// ratios below `min_ratio` warn (timing on shared runners is noisy);
/// returns the number of warnings.
pub fn query_bench_compare(new: &Json, baseline: &Json, min_ratio: f64) -> u32 {
    let mut warnings = 0;
    let now = new
        .get("queries_per_sec")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let then = baseline
        .get("queries_per_sec")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if then > 0.0 {
        let ratio = now / then;
        if ratio < min_ratio {
            eprintln!(
                "WARNING: query throughput regressed to {ratio:.2}x of baseline \
                 ({now:.0} vs {then:.0} queries/s)"
            );
            warnings += 1;
        } else {
            eprintln!(
                "ok: query throughput at {ratio:.2}x of baseline ({now:.0} vs {then:.0} queries/s)"
            );
        }
    }
    let new_red = new
        .get("mean_iteration_reduction")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let base_red = baseline
        .get("mean_iteration_reduction")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    eprintln!("iteration reduction: {new_red:.2}x now vs {base_red:.2}x at baseline");
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn batch(text: &str) -> Json {
        parse(text).expect("test batches are valid JSON")
    }

    #[test]
    fn latency_batch_matches_cold_solves() {
        let input = batch(
            r#"{"queries": [
                {"type": "latency", "k": 16, "n": 2, "v": 2, "lm": 32, "h": 0.2, "lambda": 1e-4},
                {"type": "latency", "k": 16, "n": 2, "v": 2, "lm": 32, "h": 0.2, "lambda": 5e-5},
                {"type": "latency", "k": 8, "n": 3, "v": 2, "lm": 16, "h": 0.3, "lambda": 2e-5}
            ]}"#,
        );
        let output = run_batch(&input).unwrap();
        let violations = check_cold(&input, &output).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
        // Results come back in input order: λ=1e-4 first despite the
        // chain being sorted ascending.
        let results = output.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 3);
        assert!((results[0].get("lambda").unwrap().as_f64().unwrap() - 1e-4).abs() < 1e-9);
        let l0 = results[0].get("latency").unwrap().as_f64().unwrap();
        let l1 = results[1].get("latency").unwrap().as_f64().unwrap();
        assert!(
            l0 > l1,
            "higher load must have higher latency: {l0} vs {l1}"
        );
    }

    #[test]
    fn saturated_latency_queries_fail_soft() {
        let input = batch(
            r#"{"queries": [
                {"type": "latency", "k": 16, "n": 2, "v": 2, "lm": 32, "h": 0.2, "lambda": 5e-3},
                {"type": "latency", "k": 16, "n": 2, "v": 2, "lm": 32, "h": 0.2, "lambda": 1e-5}
            ]}"#,
        );
        let output = run_batch(&input).unwrap();
        let results = output.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results[0].get("ok"), Some(&Json::Bool(false)));
        assert!(results[0].get("error").is_some());
        assert_eq!(results[1].get("ok"), Some(&Json::Bool(true)));
        let violations = check_cold(&input, &output).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn saturation_query_agrees_with_the_direct_search() {
        let input = batch(
            r#"{"queries": [
                {"type": "saturation", "k": 8, "n": 3, "v": 2, "lm": 16, "h": 0.3}
            ]}"#,
        );
        let output = run_batch(&input).unwrap();
        let r = &output.get("results").unwrap().as_arr().unwrap()[0];
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        let engine = r.get("lambda_star").unwrap().as_f64().unwrap();
        let direct = kncube_core::find_saturation_ncube(
            NCubeConfig::new(8, 3, 2, 16, 0.0, 0.3),
            1e-9,
            1e-1,
            SATURATION_REL_TOL,
        )
        .unwrap();
        assert_eq!(engine.to_bits(), direct.to_bits());
        assert!(r.get("probes").unwrap().as_f64().unwrap() > 10.0);
    }

    #[test]
    fn pareto_picks_the_lowest_latency_big_enough_cube() {
        let input = batch(
            r#"{"queries": [
                {"type": "pareto", "v": 2, "lm": 16, "h": 0.2, "lambda": 1e-6,
                 "min_nodes": 256, "candidates": [[4, 2], [16, 2], [8, 3], [4, 4]]}
            ]}"#,
        );
        let output = run_batch(&input).unwrap();
        let r = &output.get("results").unwrap().as_arr().unwrap()[0];
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
        let (k, n) = (
            r.get("k").unwrap().as_f64().unwrap() as u32,
            r.get("n").unwrap().as_f64().unwrap() as u32,
        );
        let nodes = r.get("nodes").unwrap().as_f64().unwrap() as u64;
        assert!(nodes >= 256, "picked an undersized cube: {k}-ary {n}-cube");
        // The winner must actually be the argmin over qualifying
        // candidates, recomputed cold.
        let reported = r.get("latency").unwrap().as_f64().unwrap();
        for (ck, cn) in [(16u32, 2u32), (8, 3), (4, 4)] {
            let cfg = SolveCache::quantize(&NCubeConfig::new(ck, cn, 2, 16, 1e-6, 0.2));
            let cold = NCubeModel::new(cfg).unwrap().solve().unwrap().latency;
            assert!(
                reported <= cold + 1e-9,
                "({ck},{cn}) beats the reported winner: {cold} < {reported}"
            );
        }
    }

    #[test]
    fn malformed_batches_are_rejected_with_the_query_index() {
        for (text, needle) in [
            (r#"{"no_queries": []}"#, "queries"),
            (
                r#"{"queries": [{"type": "latency", "k": 16}]}"#,
                "queries[0]",
            ),
            (
                r#"{"queries": [{"type": "latency", "k": 16, "n": 2, "v": 2,
                   "lm": 32, "h": 0.2, "lambda": 1e-4, "service_model": "warp"}]}"#,
                "service_model",
            ),
            (r#"{"queries": [{"type": "teleport"}]}"#, "teleport"),
            (
                r#"{"queries": [{"type": "pareto", "v": 2, "lm": 16, "h": 0.2,
                   "lambda": 1e-6, "min_nodes": 4, "candidates": []}]}"#,
                "candidates",
            ),
        ] {
            let err = run_batch(&batch(text)).unwrap_err();
            assert!(err.contains(needle), "'{err}' should mention '{needle}'");
        }
    }

    #[test]
    fn duplicate_queries_hit_the_cache() {
        let input = batch(
            r#"{"queries": [
                {"type": "latency", "k": 8, "n": 3, "v": 2, "lm": 16, "h": 0.3, "lambda": 1e-5},
                {"type": "latency", "k": 8, "n": 3, "v": 2, "lm": 16, "h": 0.3, "lambda": 1e-5}
            ]}"#,
        );
        let output = run_batch(&input).unwrap();
        let stats = output.get("cache").unwrap();
        assert_eq!(stats.get("hits").unwrap().as_f64(), Some(1.0));
        assert_eq!(stats.get("misses").unwrap().as_f64(), Some(1.0));
        let results = output.get("results").unwrap().as_arr().unwrap();
        assert_eq!(
            results[0]
                .get("latency")
                .unwrap()
                .as_f64()
                .unwrap()
                .to_bits(),
            results[1]
                .get("latency")
                .unwrap()
                .as_f64()
                .unwrap()
                .to_bits()
        );
    }

    #[test]
    fn query_bench_schema_accepts_its_own_output_shape() {
        // A hand-built document with the committed shape (running the
        // real benchmark here would be slow; the binary self-checks its
        // fresh output at every run).
        let mut cfg = Json::obj();
        for (key, val) in [
            ("k", 16.0),
            ("n", 2.0),
            ("v", 2.0),
            ("lm", 32.0),
            ("h", 0.2),
            ("saturation_lambda", 1.5e-4),
            ("points", 128.0),
            ("cold_mean_iterations", 117.0),
            ("warm_mean_iterations", 10.7),
            ("iteration_reduction", 10.9),
            ("queries_per_sec", 4000.0),
            ("cached_queries_per_sec", 90000.0),
            ("cache_misses", 128.0),
        ] {
            cfg.set(key, Json::Num(val));
        }
        cfg.set("service_model", Json::Str("path_occupancy".into()));
        let mut doc = Json::obj();
        doc.set("schema_version", Json::Num(QUERY_BENCH_SCHEMA_VERSION));
        doc.set("commit", Json::Str("abc".into()));
        doc.set("date", Json::Str("2026-01-01T00:00:00Z".into()));
        doc.set("quick", Json::Bool(false));
        doc.set("queries_per_sec", Json::Num(4000.0));
        doc.set("cached_queries_per_sec", Json::Num(90000.0));
        doc.set("mean_iteration_reduction", Json::Num(7.4));
        doc.set("configs", Json::Arr(vec![cfg]));
        assert_eq!(query_bench_schema_violations(&doc), Vec::<String>::new());

        // Dropping below the committed reduction floor is a schema
        // violation, not a warning.
        let mut weak = doc.clone();
        if let Json::Obj(pairs) = &mut weak {
            for (k, v) in pairs.iter_mut() {
                if k == "mean_iteration_reduction" {
                    *v = Json::Num(3.0);
                }
            }
        }
        let bad = query_bench_schema_violations(&weak);
        assert!(
            bad.iter().any(|b| b.contains("below the committed floor")),
            "{bad:?}"
        );
    }
}
