//! Provenance stamps for emitted benchmark documents: the current git
//! commit and a dependency-free UTC timestamp.  Shared by every harness
//! that writes a `BENCH_*.json`.

/// The current `HEAD` commit hash, or `"unknown"` outside a git checkout.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Current UTC time as `YYYY-MM-DDTHH:MM:SSZ`, from the Unix clock alone
/// (no date/time dependency; Hinnant's civil-from-days algorithm).
pub fn utc_now_iso8601() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (h, m, s) = (rem / 3600, rem % 3600 / 60, rem % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}T{h:02}:{m:02}:{s:02}Z")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_has_the_iso8601_shape() {
        let t = utc_now_iso8601();
        assert_eq!(t.len(), 20, "{t}");
        assert!(t.ends_with('Z'));
        assert_eq!(&t[4..5], "-");
        assert_eq!(&t[10..11], "T");
        // The repo's clock is past the paper's publication year.
        let year: i32 = t[..4].parse().unwrap();
        assert!(year >= 2005, "{t}");
    }
}
