//! Dally's Markovian model of virtual-channel multiplexing (Eqs. 33–35).
//!
//! `V` virtual channels share one physical channel in a time-multiplexed
//! fashion.  Dally's model \[3\] tracks the number of busy virtual channels
//! as a birth–death chain driven by the channel's offered load `ρ = λ·S`:
//!
//! ```text
//! q_0 = 1
//! q_v = q_{v-1} · ρ            0 < v < V        (33)
//! q_V = q_{V-1} · ρ/(1-ρ)      v = V
//! P_v = q_v / Σ_{l=0}^{V} q_l                   (34)
//! V̄  = Σ_v v² P_v / Σ_v v P_v                  (35)
//! ```
//!
//! `V̄ >= 1` is the *average multiplexing degree*: when more than one
//! virtual channel is busy the physical channel's bandwidth is shared, so
//! every latency component is stretched by `V̄`.

/// Eq. (34): steady-state distribution of the number of busy virtual
/// channels for offered load `rho = λ·S` and `v_channels` virtual channels.
///
/// `rho` is clamped into `[0, 1)` — at and beyond saturation the chain has
/// all channels busy, which the clamp approaches continuously.
pub fn occupancy_distribution(rho: f64, v_channels: u32) -> Vec<f64> {
    assert!(v_channels >= 1, "need at least one virtual channel");
    let v = v_channels as usize;
    let rho = rho.clamp(0.0, 1.0 - 1e-12);
    let mut q = vec![0.0; v + 1];
    q[0] = 1.0;
    for i in 1..v {
        q[i] = q[i - 1] * rho;
    }
    q[v] = q[v - 1] * rho / (1.0 - rho);
    let total: f64 = q.iter().sum();
    for p in &mut q {
        *p /= total;
    }
    q
}

/// Eq. (35): the average degree of virtual-channel multiplexing `V̄` at a
/// physical channel with offered load `rho = λ·S` and `v_channels` virtual
/// channels.
///
/// Properties (tested below): `V̄ = 1` at zero load, `V̄ → V` at
/// saturation, and `V̄` is monotone non-decreasing in `rho`.
///
/// ```
/// use kncube_queueing::vc_multiplex::multiplexing_factor;
/// assert_eq!(multiplexing_factor(0.0, 2), 1.0);
/// // V = 2 at ρ = 0.5: hand-computable from Eqs. 33-35 → 5/3.
/// assert!((multiplexing_factor(0.5, 2) - 5.0 / 3.0).abs() < 1e-12);
/// ```
pub fn multiplexing_factor(rho: f64, v_channels: u32) -> f64 {
    if rho <= 0.0 {
        return 1.0;
    }
    let p = occupancy_distribution(rho, v_channels);
    let num: f64 = p
        .iter()
        .enumerate()
        .map(|(v, &pv)| (v * v) as f64 * pv)
        .sum();
    let den: f64 = p.iter().enumerate().map(|(v, &pv)| v as f64 * pv).sum();
    if den == 0.0 {
        1.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_is_normalized() {
        for &rho in &[0.0, 0.1, 0.5, 0.9, 0.999, 1.5] {
            for v in 1..=6 {
                let p = occupancy_distribution(rho, v);
                assert_eq!(p.len(), v as usize + 1);
                let sum: f64 = p.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12, "rho={rho} v={v}: sum={sum}");
                assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
            }
        }
    }

    #[test]
    fn zero_load_means_no_multiplexing() {
        for v in 1..=6 {
            assert_eq!(multiplexing_factor(0.0, v), 1.0);
        }
        // Vanishing load approaches 1 continuously.
        assert!((multiplexing_factor(1e-9, 4) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn saturation_approaches_v() {
        for v in 2..=5 {
            let f = multiplexing_factor(1.0 - 1e-13, v);
            assert!(
                (f - v as f64).abs() < 1e-3,
                "V={v}: multiplexing at saturation {f}"
            );
        }
    }

    #[test]
    fn bounded_between_one_and_v() {
        for v in 1..=6 {
            for i in 0..100 {
                let rho = i as f64 / 100.0;
                let f = multiplexing_factor(rho, v);
                assert!(f >= 1.0 - 1e-12);
                assert!(f <= v as f64 + 1e-12);
            }
        }
    }

    #[test]
    fn monotone_in_load() {
        for v in 2..=4 {
            let mut prev = 0.0;
            for i in 0..=100 {
                let rho = i as f64 / 101.0;
                let f = multiplexing_factor(rho, v);
                assert!(f >= prev - 1e-12, "V={v} rho={rho}: {f} < {prev}");
                prev = f;
            }
        }
    }

    #[test]
    fn single_virtual_channel_never_multiplexes() {
        for i in 0..10 {
            let rho = i as f64 / 10.0;
            assert!((multiplexing_factor(rho, 1) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_hand_computed_v2() {
        // V = 2, rho = 0.5: q = [1, 0.5, 0.5], P = [0.5, 0.25, 0.25],
        // V̄ = (1·0.25 + 4·0.25)/(1·0.25 + 2·0.25) = 1.25/0.75 = 5/3.
        let f = multiplexing_factor(0.5, 2);
        assert!((f - 5.0 / 3.0).abs() < 1e-12, "got {f}");
    }
}
