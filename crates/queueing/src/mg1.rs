//! M/G/1 mean waiting time with the Draper–Ghosh variance approximation.
//!
//! Eq. (28) of the paper (after \[6\], Draper & Ghosh): a channel visited by
//! Poisson traffic of rate `λ` with mean service time `S` behaves as an
//! M/G/1 queue whose mean waiting time is
//!
//! ```text
//!            λ S² (1 + C²)                 (S - Lm)²
//! w(S, λ) = ----------------   with  C² = -----------
//!             2 (1 - λ S)                     S²
//! ```
//!
//! The variance term approximates the service-time standard deviation by
//! `S - Lm`: a message's minimum possible service time is its own length
//! `Lm` (no blocking), so all service-time variability is attributed to the
//! blocking component.  When `S = Lm` the formula degenerates to the M/D/1
//! waiting time `λS²/(2(1-λS))`, which the tests check.

use std::fmt;

/// The channel (or source queue) is saturated: offered load `ρ = λS >= 1`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Saturated {
    /// The offending utilization.
    pub rho: f64,
}

impl fmt::Display for Saturated {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "queue saturated: utilization {:.4} >= 1", self.rho)
    }
}

impl std::error::Error for Saturated {}

/// Offered load `ρ = λ·S` of a server with arrival rate `λ` and mean
/// service time `S`.
#[inline]
pub fn utilization(lambda: f64, service: f64) -> f64 {
    lambda * service
}

/// Eq. (28): mean M/G/1 waiting time for arrival rate `lambda`, mean
/// service time `service`, and message length `lm` flits.
///
/// Returns [`Saturated`] when `ρ = λS >= 1` (the queue has no steady
/// state), which the model reports as the saturation point.
pub fn waiting_time(lambda: f64, service: f64, lm: f64) -> Result<f64, Saturated> {
    debug_assert!(lambda >= 0.0 && service >= 0.0 && lm >= 0.0);
    if lambda == 0.0 || service == 0.0 {
        return Ok(0.0);
    }
    let rho = utilization(lambda, service);
    if rho >= 1.0 {
        return Err(Saturated { rho });
    }
    let c2 = {
        let sigma = service - lm;
        (sigma * sigma) / (service * service)
    };
    Ok(lambda * service * service * (1.0 + c2) / (2.0 * (1.0 - rho)))
}

/// Like [`waiting_time`] but saturating: past `ρ >= rho_cap` the `1 - ρ`
/// denominator is frozen at `1 - rho_cap`, producing a large-but-finite
/// wait.
///
/// The fixed-point solver uses this so that a transiently-overloaded
/// intermediate iterate does not abort the iteration with NaN/negative
/// waits; saturation is then diagnosed on the *converged* state (or by
/// non-convergence).
pub fn waiting_time_clamped(lambda: f64, service: f64, lm: f64, rho_cap: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&rho_cap));
    if lambda == 0.0 || service == 0.0 {
        return 0.0;
    }
    let rho = utilization(lambda, service).min(rho_cap);
    let c2 = {
        let sigma = service - lm;
        (sigma * sigma) / (service * service)
    };
    lambda * service * service * (1.0 + c2) / (2.0 * (1.0 - rho))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_or_service_waits_nothing() {
        assert_eq!(waiting_time(0.0, 50.0, 32.0).unwrap(), 0.0);
        assert_eq!(waiting_time(0.1, 0.0, 32.0).unwrap(), 0.0);
        assert_eq!(waiting_time_clamped(0.0, 50.0, 32.0, 0.999), 0.0);
    }

    #[test]
    fn reduces_to_md1_when_service_equals_length() {
        // With S = Lm the variance term vanishes and w = λS²/(2(1-λS)).
        let (lambda, s) = (0.01, 32.0);
        let w = waiting_time(lambda, s, s).unwrap();
        let md1 = lambda * s * s / (2.0 * (1.0 - lambda * s));
        assert!((w - md1).abs() < 1e-12);
    }

    #[test]
    fn saturation_detected() {
        let err = waiting_time(0.05, 32.0, 32.0).unwrap_err();
        assert!(err.rho >= 1.0);
        assert!(waiting_time(0.03, 32.0, 32.0).is_ok());
    }

    #[test]
    fn monotone_in_rate_and_service() {
        let lm = 32.0;
        let mut prev = 0.0;
        for i in 1..30 {
            let lambda = i as f64 * 0.001;
            let w = waiting_time(lambda, lm, lm).unwrap();
            assert!(w > prev, "waiting time must grow with load");
            prev = w;
        }
        let mut prev = 0.0;
        for i in 1..20 {
            let s = 32.0 + i as f64;
            let w = waiting_time(0.005, s, lm).unwrap();
            assert!(w > prev, "waiting time must grow with service time");
            prev = w;
        }
    }

    #[test]
    fn clamped_matches_exact_below_cap_and_is_finite_above() {
        let lm = 32.0;
        let exact = waiting_time(0.01, 40.0, lm).unwrap();
        let clamped = waiting_time_clamped(0.01, 40.0, lm, 0.999_999);
        assert!((exact - clamped).abs() < 1e-9);
        let over = waiting_time_clamped(1.0, 40.0, lm, 0.999);
        assert!(over.is_finite() && over > 0.0);
    }

    #[test]
    fn blocking_variance_term_increases_wait() {
        // Same rate/service; larger gap S - Lm means more variance, more
        // waiting.
        let w_tight = waiting_time(0.005, 64.0, 60.0).unwrap();
        let w_loose = waiting_time(0.005, 64.0, 32.0).unwrap();
        assert!(w_loose > w_tight);
    }
}
