//! Damped fixed-point iteration for the model's interdependent equations.
//!
//! §3 of the paper: "Given that a closed-form solution to these
//! interdependencies is very difficult to determine, the different variables
//! of the model are computed using iterative techniques."
//!
//! The solver iterates `x_{n+1} = (1-d)·x_n + d·F(x_n)` on a flat `f64`
//! state vector with damping factor `d`, declaring convergence when the
//! largest relative component change drops below a tolerance, and divergence
//! when a component goes non-finite or the iteration budget is exhausted
//! (which, for this model, is how the saturation point manifests).

/// Options controlling the iteration.
#[derive(Clone, Copy, Debug)]
pub struct FixedPointOptions {
    /// Maximum number of iterations before declaring failure.
    pub max_iterations: usize,
    /// Convergence tolerance on the maximum relative component change.
    pub tolerance: f64,
    /// Damping factor `d` in `(0, 1]`; `1` is undamped Picard iteration.
    pub damping: f64,
}

impl Default for FixedPointOptions {
    fn default() -> Self {
        FixedPointOptions {
            max_iterations: 20_000,
            tolerance: 1e-10,
            // The model's update is monotone when chains are swept
            // Gauss-Seidel style, so undamped Picard converges from the
            // zero-load start; damping stays available for experiments.
            damping: 1.0,
        }
    }
}

/// Why the iteration stopped without converging.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FixedPointError {
    /// A state component became NaN or infinite.
    NonFinite,
    /// The iteration budget was exhausted before the tolerance was met.
    NotConverged,
}

impl std::fmt::Display for FixedPointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FixedPointError::NonFinite => write!(f, "fixed point diverged to non-finite values"),
            FixedPointError::NotConverged => {
                write!(
                    f,
                    "fixed point failed to converge within the iteration budget"
                )
            }
        }
    }
}

impl std::error::Error for FixedPointError {}

/// Convergence report for a successful solve.
#[derive(Clone, Debug)]
pub struct FixedPointReport {
    /// The converged state vector.
    pub state: Vec<f64>,
    /// Iterations actually used.
    pub iterations: usize,
    /// Final maximum relative change (below the tolerance).
    pub residual: f64,
}

/// Iterate `update` from `initial` until the maximum relative change of any
/// component is below `options.tolerance`.
///
/// `update` writes the next state into its second argument (same length as
/// the current state, passed as the first argument).
pub fn solve<F>(
    initial: Vec<f64>,
    options: FixedPointOptions,
    mut update: F,
) -> Result<FixedPointReport, FixedPointError>
where
    F: FnMut(&[f64], &mut [f64]),
{
    assert!(options.damping > 0.0 && options.damping <= 1.0);
    assert!(options.tolerance > 0.0);
    let mut state = initial;
    let mut next = vec![0.0; state.len()];
    for iteration in 1..=options.max_iterations {
        update(&state, &mut next);
        let mut residual: f64 = 0.0;
        for (cur, nxt) in state.iter_mut().zip(next.iter()) {
            if !nxt.is_finite() {
                return Err(FixedPointError::NonFinite);
            }
            let blended = (1.0 - options.damping) * *cur + options.damping * *nxt;
            let denom = blended.abs().max(1.0);
            residual = residual.max((blended - *cur).abs() / denom);
            *cur = blended;
        }
        if residual < options.tolerance {
            return Ok(FixedPointReport {
                state,
                iterations: iteration,
                residual,
            });
        }
    }
    Err(FixedPointError::NotConverged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_scalar_contraction() {
        // x = cos(x) has the Dottie fixed point ~0.739085.
        let report = solve(vec![0.0], FixedPointOptions::default(), |x, out| {
            out[0] = x[0].cos();
        })
        .unwrap();
        assert!((report.state[0] - 0.739_085_133).abs() < 1e-6);
    }

    #[test]
    fn solves_coupled_system() {
        // x = 0.5 y + 1, y = 0.25 x + 1  →  x = 12/7, y = 10/7.
        let report = solve(vec![0.0, 0.0], FixedPointOptions::default(), |s, out| {
            out[0] = 0.5 * s[1] + 1.0;
            out[1] = 0.25 * s[0] + 1.0;
        })
        .unwrap();
        assert!((report.state[0] - 12.0 / 7.0).abs() < 1e-7);
        assert!((report.state[1] - 10.0 / 7.0).abs() < 1e-7);
    }

    #[test]
    fn damping_stabilizes_oscillation() {
        // x = 2.5 - x oscillates undamped about 1.25 with |f'| = 1; damping
        // turns it into a contraction.
        let opts = FixedPointOptions {
            damping: 0.5,
            ..Default::default()
        };
        let report = solve(vec![0.0], opts, |x, out| {
            out[0] = 2.5 - x[0];
        })
        .unwrap();
        assert!((report.state[0] - 1.25).abs() < 1e-7);
    }

    #[test]
    fn reports_divergence_to_infinity() {
        let opts = FixedPointOptions {
            max_iterations: 10_000,
            ..Default::default()
        };
        let err = solve(vec![1.0], opts, |x, out| {
            out[0] = x[0] * 3.0;
        })
        .unwrap_err();
        // Either it runs out of budget or overflows to infinity; both are
        // reported as failures.
        assert!(matches!(
            err,
            FixedPointError::NotConverged | FixedPointError::NonFinite
        ));
    }

    #[test]
    fn reports_nan() {
        let err = solve(vec![1.0], FixedPointOptions::default(), |_, out| {
            out[0] = f64::NAN;
        })
        .unwrap_err();
        assert_eq!(err, FixedPointError::NonFinite);
    }

    #[test]
    fn iteration_budget_respected() {
        let opts = FixedPointOptions {
            max_iterations: 3,
            tolerance: 1e-15,
            damping: 1.0,
        };
        let err = solve(vec![0.0], opts, |x, out| {
            out[0] = 0.999_999 * x[0] + 1.0;
        })
        .unwrap_err();
        assert_eq!(err, FixedPointError::NotConverged);
    }
}
