//! Damped and Anderson-accelerated fixed-point iteration for the model's
//! interdependent equations.
//!
//! §3 of the paper: "Given that a closed-form solution to these
//! interdependencies is very difficult to determine, the different variables
//! of the model are computed using iterative techniques."
//!
//! The baseline solver iterates `x_{n+1} = (1-d)·x_n + d·F(x_n)` on a flat
//! `f64` state vector with damping factor `d`, declaring convergence when
//! the largest relative component change drops below a tolerance, and
//! divergence when a component goes non-finite or the iteration budget is
//! exhausted (which, for this model, is how the saturation point manifests).
//!
//! [`Acceleration::Anderson`] switches the update to Anderson mixing
//! (type-II AA(m), the scheme used to accelerate routing-equilibrium
//! fixed points à la Brightwell–Luczak): the next iterate extrapolates
//! through the last `m` residuals by solving a tiny least-squares problem,
//! falling back to the damped Picard step whenever the extrapolation is
//! ill-conditioned or leaves the finite/non-negative region.  Warm starts
//! are expressed through the existing `initial` argument — callers that
//! keep the converged state of a neighbouring configuration (see
//! `kncube_core::sweep`) pass it back in and typically converge in a
//! handful of iterations.

/// How successive fixed-point iterates are combined.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Acceleration {
    /// Damped Picard: `x_{n+1} = (1-d)·x_n + d·F(x_n)` (default; the
    /// reconstruction numerics are pinned to this path).
    #[default]
    Picard,
    /// Anderson mixing over a window of `depth` previous residuals, with
    /// the damping factor as the mixing parameter β.  Falls back to the
    /// damped Picard step when the window is empty or the least-squares
    /// extrapolation misbehaves.
    Anderson {
        /// History window `m >= 1`; 3–5 is typical for smooth updates.
        depth: usize,
    },
}

/// Options controlling the iteration.
#[derive(Clone, Copy, Debug)]
pub struct FixedPointOptions {
    /// Maximum number of iterations before declaring failure.
    pub max_iterations: usize,
    /// Convergence tolerance on the maximum relative component change.
    pub tolerance: f64,
    /// Damping factor `d` in `(0, 1]`; `1` is undamped Picard iteration.
    pub damping: f64,
    /// Iterate-combination scheme (Picard by default).
    pub acceleration: Acceleration,
}

impl Default for FixedPointOptions {
    fn default() -> Self {
        FixedPointOptions {
            max_iterations: 20_000,
            tolerance: 1e-10,
            // The model's update is monotone when chains are swept
            // Gauss-Seidel style, so undamped Picard converges from the
            // zero-load start; damping stays available for experiments.
            damping: 1.0,
            acceleration: Acceleration::Picard,
        }
    }
}

/// Why the iteration stopped without converging.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FixedPointError {
    /// A state component became NaN or infinite.
    NonFinite,
    /// The iteration budget was exhausted before the tolerance was met.
    NotConverged,
}

impl std::fmt::Display for FixedPointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FixedPointError::NonFinite => write!(f, "fixed point diverged to non-finite values"),
            FixedPointError::NotConverged => {
                write!(
                    f,
                    "fixed point failed to converge within the iteration budget"
                )
            }
        }
    }
}

impl std::error::Error for FixedPointError {}

/// Convergence report for a successful solve.
#[derive(Clone, Debug)]
pub struct FixedPointReport {
    /// The converged state vector.
    pub state: Vec<f64>,
    /// Iterations actually used.
    pub iterations: usize,
    /// Final maximum relative change (below the tolerance).
    pub residual: f64,
}

/// Iterate `update` from `initial` until the maximum relative change of any
/// component is below `options.tolerance`.
///
/// `update` writes the next state into its second argument (same length as
/// the current state, passed as the first argument).  A warm start is just
/// a good `initial`: pass back the converged state of a nearby
/// configuration and the solver reports however few iterations it needed.
pub fn solve<F>(
    initial: Vec<f64>,
    options: FixedPointOptions,
    update: F,
) -> Result<FixedPointReport, FixedPointError>
where
    F: FnMut(&[f64], &mut [f64]),
{
    assert!(options.damping > 0.0 && options.damping <= 1.0);
    assert!(options.tolerance > 0.0);
    match options.acceleration {
        Acceleration::Picard => solve_picard(initial, options, update),
        Acceleration::Anderson { depth } => solve_anderson(initial, options, depth.max(1), update),
    }
}

/// The damped Picard loop (the reconstruction's pinned numerics).
fn solve_picard<F>(
    initial: Vec<f64>,
    options: FixedPointOptions,
    mut update: F,
) -> Result<FixedPointReport, FixedPointError>
where
    F: FnMut(&[f64], &mut [f64]),
{
    let mut state = initial;
    let mut next = vec![0.0; state.len()];
    for iteration in 1..=options.max_iterations {
        update(&state, &mut next);
        let mut residual: f64 = 0.0;
        for (cur, nxt) in state.iter_mut().zip(next.iter()) {
            if !nxt.is_finite() {
                return Err(FixedPointError::NonFinite);
            }
            let blended = (1.0 - options.damping) * *cur + options.damping * *nxt;
            let denom = blended.abs().max(1.0);
            residual = residual.max((blended - *cur).abs() / denom);
            *cur = blended;
        }
        if residual < options.tolerance {
            return Ok(FixedPointReport {
                state,
                iterations: iteration,
                residual,
            });
        }
    }
    Err(FixedPointError::NotConverged)
}

/// Anderson mixing (type-II AA(m)): keep the last `depth` iterate/residual
/// pairs, extrapolate through them by a small least-squares solve, and fall
/// back to the damped Picard step whenever the extrapolation is singular or
/// non-finite.
fn solve_anderson<F>(
    initial: Vec<f64>,
    options: FixedPointOptions,
    depth: usize,
    mut update: F,
) -> Result<FixedPointReport, FixedPointError>
where
    F: FnMut(&[f64], &mut [f64]),
{
    let dim = initial.len();
    let beta = options.damping;
    let mut state = initial;
    let mut image = vec![0.0; dim];
    // Ring buffers of previous (iterate, residual) pairs, oldest first.
    let mut xs: Vec<Vec<f64>> = Vec::with_capacity(depth + 1);
    let mut fs: Vec<Vec<f64>> = Vec::with_capacity(depth + 1);
    for iteration in 1..=options.max_iterations {
        update(&state, &mut image);
        if image.iter().any(|x| !x.is_finite()) {
            return Err(FixedPointError::NonFinite);
        }
        // Residual f = F(x) - x, and the Picard-metric convergence check:
        // with β = 1 this is exactly the Picard residual, so Anderson and
        // Picard agree on what "converged" means.
        let mut residual: f64 = 0.0;
        let f: Vec<f64> = state
            .iter()
            .zip(image.iter())
            .map(|(&x, &g)| {
                let blended = (1.0 - beta) * x + beta * g;
                residual = residual.max((blended - x).abs() / blended.abs().max(1.0));
                g - x
            })
            .collect();
        if residual < options.tolerance {
            // Return the update's image so the final state satisfies F to
            // within the tolerance even after an extrapolated step.
            return Ok(FixedPointReport {
                state: image,
                iterations: iteration,
                residual,
            });
        }
        xs.push(state.clone());
        fs.push(f);
        if xs.len() > depth + 1 {
            xs.remove(0);
            fs.remove(0);
        }
        let candidate = anderson_step(&xs, &fs, beta);
        state = match candidate {
            Some(accel) if accel.iter().all(|x| x.is_finite()) => accel,
            // Fallback: the damped Picard step (always well-defined).
            _ => state
                .iter()
                .zip(image.iter())
                .map(|(&x, &g)| (1.0 - beta) * x + beta * g)
                .collect(),
        };
    }
    Err(FixedPointError::NotConverged)
}

/// One Anderson extrapolation from history `(xs, fs)` (oldest first, the
/// last entry is the current pair): minimise `‖f_k - ΔF γ‖₂` over the
/// residual differences and return
/// `x_k + β f_k - (ΔX + β ΔF) γ`.  `None` when there is no history or the
/// normal equations are (near-)singular.
fn anderson_step(xs: &[Vec<f64>], fs: &[Vec<f64>], beta: f64) -> Option<Vec<f64>> {
    let m = xs.len().checked_sub(1)?;
    if m == 0 {
        return None;
    }
    let k = xs.len() - 1;
    let dim = xs[0].len();
    // Gram matrix G = ΔFᵀΔF and right-hand side b = ΔFᵀ f_k, where
    // ΔF_j = f_{j+1} - f_j.
    let df = |j: usize, i: usize| fs[j + 1][i] - fs[j][i];
    let mut g = vec![0.0; m * m];
    let mut b = vec![0.0; m];
    for r in 0..m {
        for c in r..m {
            let dot: f64 = (0..dim).map(|i| df(r, i) * df(c, i)).sum();
            g[r * m + c] = dot;
            g[c * m + r] = dot;
        }
        b[r] = (0..dim).map(|i| df(r, i) * fs[k][i]).sum();
    }
    // Tikhonov-regularise relative to the trace so a rank-deficient window
    // (e.g. duplicate iterates) degrades gracefully instead of exploding.
    let trace: f64 = (0..m).map(|r| g[r * m + r]).sum();
    let ridge = 1e-12 * trace.max(f64::MIN_POSITIVE);
    for r in 0..m {
        g[r * m + r] += ridge;
    }
    let gamma = solve_dense(&mut g, &mut b, m)?;
    let mut next = Vec::with_capacity(dim);
    for i in 0..dim {
        let mut x = xs[k][i] + beta * fs[k][i];
        for (j, &gj) in gamma.iter().enumerate() {
            let dx = xs[j + 1][i] - xs[j][i];
            x -= gj * (dx + beta * df(j, i));
        }
        next.push(x);
    }
    Some(next)
}

/// Gaussian elimination with partial pivoting on an `m × m` system stored
/// row-major in `a` with right-hand side `b`.  Returns `None` on a
/// (near-)zero pivot.
fn solve_dense(a: &mut [f64], b: &mut [f64], m: usize) -> Option<Vec<f64>> {
    for col in 0..m {
        let pivot_row =
            (col..m).max_by(|&r, &s| a[r * m + col].abs().total_cmp(&a[s * m + col].abs()))?;
        if a[pivot_row * m + col].abs() < f64::MIN_POSITIVE {
            return None;
        }
        if pivot_row != col {
            for i in 0..m {
                a.swap(col * m + i, pivot_row * m + i);
            }
            b.swap(col, pivot_row);
        }
        let pivot = a[col * m + col];
        for row in col + 1..m {
            let factor = a[row * m + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for i in col..m {
                a[row * m + i] -= factor * a[col * m + i];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; m];
    for row in (0..m).rev() {
        let mut sum = b[row];
        for i in row + 1..m {
            sum -= a[row * m + i] * x[i];
        }
        x[row] = sum / a[row * m + row];
        if !x[row].is_finite() {
            return None;
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_scalar_contraction() {
        // x = cos(x) has the Dottie fixed point ~0.739085.
        let report = solve(vec![0.0], FixedPointOptions::default(), |x, out| {
            out[0] = x[0].cos();
        })
        .unwrap();
        assert!((report.state[0] - 0.739_085_133).abs() < 1e-6);
    }

    #[test]
    fn solves_coupled_system() {
        // x = 0.5 y + 1, y = 0.25 x + 1  →  x = 12/7, y = 10/7.
        let report = solve(vec![0.0, 0.0], FixedPointOptions::default(), |s, out| {
            out[0] = 0.5 * s[1] + 1.0;
            out[1] = 0.25 * s[0] + 1.0;
        })
        .unwrap();
        assert!((report.state[0] - 12.0 / 7.0).abs() < 1e-7);
        assert!((report.state[1] - 10.0 / 7.0).abs() < 1e-7);
    }

    #[test]
    fn damping_stabilizes_oscillation() {
        // x = 2.5 - x oscillates undamped about 1.25 with |f'| = 1; damping
        // turns it into a contraction.
        let opts = FixedPointOptions {
            damping: 0.5,
            ..Default::default()
        };
        let report = solve(vec![0.0], opts, |x, out| {
            out[0] = 2.5 - x[0];
        })
        .unwrap();
        assert!((report.state[0] - 1.25).abs() < 1e-7);
    }

    #[test]
    fn reports_divergence_to_infinity() {
        let opts = FixedPointOptions {
            max_iterations: 10_000,
            ..Default::default()
        };
        let err = solve(vec![1.0], opts, |x, out| {
            out[0] = x[0] * 3.0;
        })
        .unwrap_err();
        // Either it runs out of budget or overflows to infinity; both are
        // reported as failures.
        assert!(matches!(
            err,
            FixedPointError::NotConverged | FixedPointError::NonFinite
        ));
    }

    #[test]
    fn reports_nan() {
        let err = solve(vec![1.0], FixedPointOptions::default(), |_, out| {
            out[0] = f64::NAN;
        })
        .unwrap_err();
        assert_eq!(err, FixedPointError::NonFinite);
    }

    fn anderson(depth: usize) -> FixedPointOptions {
        FixedPointOptions {
            acceleration: Acceleration::Anderson { depth },
            ..Default::default()
        }
    }

    #[test]
    fn anderson_solves_the_scalar_contraction() {
        let report = solve(vec![0.0], anderson(3), |x, out| {
            out[0] = x[0].cos();
        })
        .unwrap();
        assert!((report.state[0] - 0.739_085_133).abs() < 1e-8);
    }

    #[test]
    fn anderson_beats_picard_on_a_stiff_contraction() {
        // x = 0.999 x + 1 contracts agonisingly slowly under Picard but is
        // affine, so AA(1) nails it as soon as it has two residuals.
        let f = |x: &[f64], out: &mut [f64]| out[0] = 0.999 * x[0] + 1.0;
        let picard = solve(vec![0.0], FixedPointOptions::default(), f).unwrap();
        let aa = solve(vec![0.0], anderson(2), f).unwrap();
        assert!((aa.state[0] - 1000.0).abs() < 1e-6, "{}", aa.state[0]);
        assert!(
            aa.iterations * 100 < picard.iterations,
            "AA {} vs Picard {} iterations",
            aa.iterations,
            picard.iterations
        );
    }

    #[test]
    fn anderson_solves_the_coupled_system_to_the_same_point() {
        let f = |s: &[f64], out: &mut [f64]| {
            out[0] = 0.5 * s[1] + 1.0;
            out[1] = 0.25 * s[0] + 1.0;
        };
        let report = solve(vec![0.0, 0.0], anderson(4), f).unwrap();
        assert!((report.state[0] - 12.0 / 7.0).abs() < 1e-7);
        assert!((report.state[1] - 10.0 / 7.0).abs() < 1e-7);
    }

    #[test]
    fn anderson_warm_start_converges_immediately() {
        // Starting at the fixed point must be recognised in one iteration.
        let report = solve(vec![0.739_085_133_215_160_6], anderson(3), |x, out| {
            out[0] = x[0].cos();
        })
        .unwrap();
        assert_eq!(report.iterations, 1);
    }

    #[test]
    fn anderson_survives_a_constant_update() {
        // F(x) = c makes every residual difference zero: the regularised
        // least-squares must fall back to Picard instead of dividing by
        // zero, and still converge.
        let report = solve(vec![5.0], anderson(3), |_, out| {
            out[0] = 2.0;
        })
        .unwrap();
        assert!((report.state[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn anderson_reports_nonfinite_divergence() {
        // e^x has no fixed point on the reals, so no amount of
        // extrapolation can succeed.
        let err = solve(vec![1.0], anderson(3), |x, out| {
            out[0] = x[0].exp();
        })
        .unwrap_err();
        assert!(matches!(
            err,
            FixedPointError::NonFinite | FixedPointError::NotConverged
        ));
    }

    #[test]
    fn iteration_budget_respected() {
        let opts = FixedPointOptions {
            max_iterations: 3,
            tolerance: 1e-15,
            damping: 1.0,
            acceleration: Acceleration::Picard,
        };
        let err = solve(vec![0.0], opts, |x, out| {
            out[0] = 0.999_999 * x[0] + 1.0;
        })
        .unwrap_err();
        assert_eq!(err, FixedPointError::NotConverged);
    }
}
