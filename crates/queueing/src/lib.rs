//! Queueing-theoretic machinery for the analytical model.
//!
//! The IPDPS 2005 hot-spot model is a system of interdependent M/G/1-style
//! equations.  This crate provides the reusable pieces:
//!
//! * [`mg1`] — the M/G/1 mean waiting time with the Draper–Ghosh variance
//!   approximation `σ ≈ S - Lm` (Eq. 28 of the paper);
//! * [`blocking`] — the two-class blocking-delay operator
//!   `B(λ, γ, S_λ, S_γ)` of Eqs. (26)–(30);
//! * [`vc_multiplex`] — Dally's Markovian model of virtual-channel
//!   multiplexing (Eqs. 33–35), giving the average multiplexing degree `V̄`
//!   that scales all latencies;
//! * [`fixed_point`] — a damped fixed-point iterator with convergence and
//!   divergence detection, used to solve the interdependent equations
//!   ("the different variables of the model are computed using iterative
//!   techniques", §3).
//!
//! Everything is deliberately scalar and allocation-free on the hot paths so
//! model evaluation stays cheap inside parameter sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocking;
pub mod fixed_point;
pub mod mg1;
pub mod vc_multiplex;

pub use blocking::{
    blocking_delay, channel_metrics, weighted_service, ChannelMetrics, TrafficClass,
};
pub use fixed_point::{solve, Acceleration, FixedPointError, FixedPointOptions, FixedPointReport};
pub use mg1::{utilization, waiting_time, waiting_time_clamped, Saturated};
pub use vc_multiplex::{multiplexing_factor, occupancy_distribution};
