//! The two-class blocking-delay operator of Eqs. (26)–(30).
//!
//! A channel is visited by *regular* traffic of rate `λ` (mean service time
//! `S_λ`) and *hot-spot* traffic of rate `γ` (mean service time `S_γ`).
//! A message arriving at the channel is blocked with probability equal to
//! the channel utilization (Eq. 27) and then waits for the M/G/1 waiting
//! time computed at the combined rate with the rate-weighted service time
//! (Eqs. 29–30):
//!
//! ```text
//! S̄  = (λ·S_λ + γ·S_γ) / (λ + γ)                          (30)
//! Pb = (λ + γ) · S̄ = λ·S_λ + γ·S_γ                        (27)
//! wc = (λ+γ) S̄² (1 + (S̄-Lm)²/S̄²) / (2 (1 - (λ+γ) S̄))   (29)
//! B  = Pb · wc                                             (26)
//! ```

use crate::mg1;

/// One class of traffic visiting a channel: a Poisson rate and the mean
/// service time its messages require.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct TrafficClass {
    /// Arrival rate in messages/cycle.
    pub rate: f64,
    /// Mean service time in cycles.
    pub service: f64,
}

impl TrafficClass {
    /// Convenience constructor.
    pub fn new(rate: f64, service: f64) -> Self {
        TrafficClass { rate, service }
    }

    /// A class carrying no traffic.
    pub fn none() -> Self {
        TrafficClass {
            rate: 0.0,
            service: 0.0,
        }
    }
}

/// Eq. (30): the rate-weighted mean service time of the channel.  Zero when
/// no traffic visits the channel.
pub fn weighted_service(regular: TrafficClass, hot: TrafficClass) -> f64 {
    let total = regular.rate + hot.rate;
    if total == 0.0 {
        return 0.0;
    }
    (regular.rate * regular.service + hot.rate * hot.service) / total
}

/// Eqs. (26)–(30): mean blocking delay at a channel visited by the two
/// traffic classes, for messages of length `lm` flits.
///
/// The waiting-time denominator is clamped at utilization `rho_cap` (see
/// [`mg1::waiting_time_clamped`]); callers diagnose saturation on the
/// converged state.
pub fn blocking_delay(regular: TrafficClass, hot: TrafficClass, lm: f64, rho_cap: f64) -> f64 {
    let total_rate = regular.rate + hot.rate;
    if total_rate == 0.0 {
        return 0.0;
    }
    let s_bar = weighted_service(regular, hot);
    // Eq. (27): blocking probability = channel utilization, capped at 1
    // (it is a probability; the un-capped product can exceed 1 only past
    // saturation, which the solver reports separately).
    let pb = (total_rate * s_bar).min(1.0);
    let wc = mg1::waiting_time_clamped(total_rate, s_bar, lm, rho_cap);
    pb * wc
}

/// The exact (un-clamped) utilization seen by the channel, used by the
/// solver's saturation diagnosis.
pub fn channel_utilization(regular: TrafficClass, hot: TrafficClass) -> f64 {
    regular.rate * regular.service + hot.rate * hot.service
}

/// The blocking delay and exact utilization of one channel, in one call.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ChannelMetrics {
    /// Eq. (26): mean blocking delay, as [`blocking_delay`].
    pub delay: f64,
    /// The un-clamped utilization, as [`channel_utilization`].
    pub utilization: f64,
}

/// Evaluate [`blocking_delay`] and [`channel_utilization`] together —
/// the per-channel inner loop of the faulty-network model, which visits
/// every directed channel of the topology once per solve.  Bit-identical
/// to the two separate calls.
pub fn channel_metrics(
    regular: TrafficClass,
    hot: TrafficClass,
    lm: f64,
    rho_cap: f64,
) -> ChannelMetrics {
    ChannelMetrics {
        delay: blocking_delay(regular, hot, lm, rho_cap),
        utilization: channel_utilization(regular, hot),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: f64 = 1.0 - 1e-9;

    #[test]
    fn idle_channel_never_blocks() {
        let b = blocking_delay(TrafficClass::none(), TrafficClass::none(), 32.0, CAP);
        assert_eq!(b, 0.0);
    }

    #[test]
    fn classes_are_symmetric() {
        let a = TrafficClass::new(0.002, 40.0);
        let b = TrafficClass::new(0.004, 55.0);
        let d1 = blocking_delay(a, b, 32.0, CAP);
        let d2 = blocking_delay(b, a, 32.0, CAP);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn single_class_reduces_to_pb_times_mg1() {
        let reg = TrafficClass::new(0.003, 48.0);
        let d = blocking_delay(reg, TrafficClass::none(), 32.0, CAP);
        let expected =
            (reg.rate * reg.service) * mg1::waiting_time(reg.rate, reg.service, 32.0).unwrap();
        assert!((d - expected).abs() < 1e-12);
    }

    #[test]
    fn weighted_service_interpolates() {
        let a = TrafficClass::new(1.0, 10.0);
        let b = TrafficClass::new(3.0, 50.0);
        let s = weighted_service(a, b);
        assert!((s - (10.0 + 3.0 * 50.0) / 4.0).abs() < 1e-12);
        assert!(s > 10.0 && s < 50.0);
    }

    #[test]
    fn blocking_grows_with_either_rate() {
        let lm = 32.0;
        let base = blocking_delay(
            TrafficClass::new(0.001, 40.0),
            TrafficClass::new(0.001, 40.0),
            lm,
            CAP,
        );
        let more_reg = blocking_delay(
            TrafficClass::new(0.002, 40.0),
            TrafficClass::new(0.001, 40.0),
            lm,
            CAP,
        );
        let more_hot = blocking_delay(
            TrafficClass::new(0.001, 40.0),
            TrafficClass::new(0.002, 40.0),
            lm,
            CAP,
        );
        assert!(more_reg > base);
        assert!(more_hot > base);
    }

    #[test]
    fn utilization_is_rate_service_dot_product() {
        let u = channel_utilization(TrafficClass::new(0.01, 30.0), TrafficClass::new(0.02, 10.0));
        assert!((u - (0.3 + 0.2)).abs() < 1e-12);
    }
}
