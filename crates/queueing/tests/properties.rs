//! Property-based tests for the queueing primitives.

use kncube_queueing::blocking::{
    blocking_delay, channel_utilization, weighted_service, TrafficClass,
};
use kncube_queueing::mg1;
use kncube_queueing::vc_multiplex::{multiplexing_factor, occupancy_distribution};
use proptest::prelude::*;

const CAP: f64 = 1.0 - 1e-9;

proptest! {
    #[test]
    fn mg1_wait_nonnegative_and_finite_below_saturation(
        lambda in 0.0f64..0.02,
        service in 1.0f64..45.0,
        lm in 1.0f64..40.0,
    ) {
        prop_assume!(lambda * service < 0.95);
        let w = mg1::waiting_time(lambda, service, lm).unwrap();
        prop_assert!(w.is_finite() && w >= 0.0);
        // Waiting can never beat the M/D/1 lower bound scaled to zero
        // variance: w >= λS²/(2(1-ρ)).
        let md1 = lambda * service * service / (2.0 * (1.0 - lambda * service));
        prop_assert!(w + 1e-12 >= md1);
    }

    #[test]
    fn mg1_wait_increases_with_rate(
        service in 1.0f64..40.0,
        lm in 1.0f64..40.0,
        l1 in 0.0f64..0.01,
        l2 in 0.0f64..0.01,
    ) {
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        prop_assume!(hi * service < 0.95);
        let w_lo = mg1::waiting_time(lo, service, lm).unwrap();
        let w_hi = mg1::waiting_time(hi, service, lm).unwrap();
        prop_assert!(w_hi >= w_lo - 1e-12);
    }

    #[test]
    fn clamped_wait_agrees_below_cap(
        lambda in 0.0f64..0.01,
        service in 1.0f64..40.0,
        lm in 1.0f64..40.0,
    ) {
        prop_assume!(lambda * service < 0.9);
        let exact = mg1::waiting_time(lambda, service, lm).unwrap();
        let clamped = mg1::waiting_time_clamped(lambda, service, lm, CAP);
        prop_assert!((exact - clamped).abs() < 1e-9 * (1.0 + exact));
    }

    #[test]
    fn blocking_is_symmetric(
        r1 in 0.0f64..0.01, s1 in 1.0f64..40.0,
        r2 in 0.0f64..0.01, s2 in 1.0f64..40.0,
        lm in 1.0f64..40.0,
    ) {
        let a = TrafficClass::new(r1, s1);
        let b = TrafficClass::new(r2, s2);
        prop_assume!(channel_utilization(a, b) < 0.9);
        let ab = blocking_delay(a, b, lm, CAP);
        let ba = blocking_delay(b, a, lm, CAP);
        prop_assert!((ab - ba).abs() < 1e-12, "not symmetric: {ab} vs {ba}");
    }

    #[test]
    fn blocking_superadditive_at_equal_service(
        r1 in 0.0f64..0.01,
        r2 in 0.0f64..0.01,
        s in 2.0f64..40.0,
        lm in 1.0f64..40.0,
    ) {
        // With equal service times — the model's situation, every class
        // presents the pipelined Lm+1 — extra traffic can only increase
        // the blocking delay.  (With *unequal* services the paper's
        // Pb·wc form is not monotone: a burst of much faster traffic
        // shrinks the rate-weighted S̄ quadratically inside wc faster
        // than Pb grows.  The model never exercises that regime; proptest
        // found the counterexample, which is preserved here as
        // documentation.)
        let a = TrafficClass::new(r1, s);
        let b = TrafficClass::new(r2, s);
        prop_assume!(channel_utilization(a, b) < 0.9);
        let solo = blocking_delay(a, TrafficClass::none(), lm, CAP);
        let both = blocking_delay(a, b, lm, CAP);
        prop_assert!(both + 1e-12 >= solo, "{both} < {solo}");
    }

    #[test]
    fn weighted_service_between_extremes(
        r1 in 1e-6f64..0.01, s1 in 1.0f64..40.0,
        r2 in 1e-6f64..0.01, s2 in 1.0f64..40.0,
    ) {
        let s = weighted_service(TrafficClass::new(r1, s1), TrafficClass::new(r2, s2));
        prop_assert!(s >= s1.min(s2) - 1e-12 && s <= s1.max(s2) + 1e-12);
    }

    #[test]
    fn occupancy_distribution_normalised(rho in 0.0f64..2.0, v in 1u32..8) {
        let p = occupancy_distribution(rho, v);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
    }

    #[test]
    fn multiplexing_bounded_and_monotone(v in 1u32..8, r1 in 0.0f64..1.0, r2 in 0.0f64..1.0) {
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let f_lo = multiplexing_factor(lo, v);
        let f_hi = multiplexing_factor(hi, v);
        prop_assert!(f_lo >= 1.0 - 1e-12 && f_hi <= v as f64 + 1e-12);
        prop_assert!(f_hi >= f_lo - 1e-9, "not monotone: {f_lo} -> {f_hi}");
    }

    #[test]
    fn fixed_point_solves_affine_contractions(
        a in -0.9f64..0.9,
        b in -10.0f64..10.0,
    ) {
        // x = a x + b has the unique fixed point b/(1-a).
        let report = kncube_queueing::fixed_point::solve(
            vec![0.0],
            kncube_queueing::fixed_point::FixedPointOptions::default(),
            |x, out| out[0] = a * x[0] + b,
        ).unwrap();
        prop_assert!((report.state[0] - b / (1.0 - a)).abs() < 1e-6);
    }

    #[test]
    fn anderson_agrees_with_picard_on_affine_contractions(
        a in -0.9f64..0.9,
        b in -10.0f64..10.0,
        depth in 1usize..6,
    ) {
        use kncube_queueing::fixed_point::{solve, Acceleration, FixedPointOptions};
        let f = |x: &[f64], out: &mut [f64]| out[0] = a * x[0] + b;
        let picard = solve(vec![0.0], FixedPointOptions::default(), f).unwrap();
        let aa = solve(
            vec![0.0],
            FixedPointOptions {
                acceleration: Acceleration::Anderson { depth },
                ..Default::default()
            },
            f,
        ).unwrap();
        let target = b / (1.0 - a);
        prop_assert!((aa.state[0] - target).abs() < 1e-6,
            "AA missed the fixed point: {} vs {target}", aa.state[0]);
        // Acceleration never needs more iterations than the window takes
        // to fill plus Picard's own count (and is usually far fewer).
        prop_assert!(aa.iterations <= picard.iterations + depth + 2,
            "AA {} vs Picard {}", aa.iterations, picard.iterations);
    }

    #[test]
    fn warm_start_at_the_fixed_point_converges_in_one_iteration(
        a in -0.9f64..0.9,
        b in -10.0f64..10.0,
    ) {
        use kncube_queueing::fixed_point::{solve, FixedPointOptions};
        let target = b / (1.0 - a);
        let report = solve(
            vec![target],
            FixedPointOptions::default(),
            |x, out| out[0] = a * x[0] + b,
        ).unwrap();
        prop_assert_eq!(report.iterations, 1);
    }
}
